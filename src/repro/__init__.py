"""repro: a reproduction of "Energy Efficient Object Detection in
Camera Sensor Networks" (EECS, ICDCS 2017).

The package implements the paper's coordination framework — GFK
domain-adaptation algorithm ranking, greedy camera-subset selection,
energy-aware algorithm downgrade, cross-camera re-identification and
Eq.-6 probability fusion — together with every substrate it needs:
a synthetic multi-camera pedestrian world, calibrated detector
simulations, from-scratch vision features (HOG / keypoints / BoW),
multi-view geometry, energy models fitted to the paper's smartphone
measurements, and a discrete-event sensor network.

Quickstart::

    from repro.datasets import make_dataset
    from repro.core import SimulationRunner

    runner = SimulationRunner(make_dataset(1))
    result = runner.run(mode="full", budget=2.0)
    print(result.humans_detected, result.energy_joules)
"""

from repro.core.config import EECSConfig
from repro.core.controller import EECSController, SelectionDecision
from repro.core.runner import RunResult, SimulationRunner
from repro.datasets.synthetic import SyntheticDataset, make_dataset

__version__ = "1.0.0"

__all__ = [
    "EECSConfig",
    "EECSController",
    "SelectionDecision",
    "RunResult",
    "SimulationRunner",
    "SyntheticDataset",
    "make_dataset",
    "__version__",
]

"""Cross-camera detection grouping.

For every detection the controller extracts the centre of the bottom
edge of its bounding box — assumed to touch the ground — and projects
it through the camera's offline ground-plane homography into world
coordinates.  Detections from different cameras whose projections land
within a gating radius are candidate matches; the match is accepted
only if their colour features also agree under the Mahalanobis metric
(Section IV-C: colour verification "reduces the false matches due to
imperfect homography matching").
"""

from __future__ import annotations

import numpy as np

from repro.detection.base import Detection
from repro.geometry.homography import Homography
from repro.reid.fusion import ObjectGroup
from repro.reid.mahalanobis import MahalanobisMetric

DEFAULT_GROUND_RADIUS_M = 0.9
DEFAULT_COLOR_THRESHOLD = 3.5


class CrossCameraMatcher:
    """Groups one frame's multi-camera detections into objects."""

    def __init__(
        self,
        image_to_ground: dict[str, Homography],
        ground_radius: float = DEFAULT_GROUND_RADIUS_M,
        color_metric: MahalanobisMetric | None = None,
        color_threshold: float = DEFAULT_COLOR_THRESHOLD,
        use_color: bool = True,
    ) -> None:
        """
        Args:
            image_to_ground: Per-camera homography mapping image pixels
                to world ground-plane coordinates (built offline from
                landmarks; see :mod:`repro.geometry.ransac`).
            ground_radius: Gating distance (metres) on the ground plane.
            color_metric: Fitted Mahalanobis metric over colour
                features; required when ``use_color`` is True.
            color_threshold: Maximum colour distance for a match.
            use_color: Disable to measure the homography-only ablation.
        """
        if not image_to_ground:
            raise ValueError("need at least one camera homography")
        if ground_radius <= 0:
            raise ValueError("ground_radius must be positive")
        if use_color and color_metric is not None and not color_metric.is_fitted:
            raise ValueError("color_metric must be fitted before use")
        self.image_to_ground = dict(image_to_ground)
        self.ground_radius = ground_radius
        self.color_metric = color_metric
        self.color_threshold = color_threshold
        self.use_color = use_color and color_metric is not None

    def ground_point(self, detection: Detection) -> np.ndarray:
        """Project a detection's bottom-centre to world coordinates."""
        try:
            homography = self.image_to_ground[detection.camera_id]
        except KeyError:
            raise KeyError(
                f"no ground homography for camera {detection.camera_id!r}"
            ) from None
        return homography.apply(np.array(detection.bbox.bottom_center))

    def _color_compatible(
        self, detection: Detection, group: ObjectGroup
    ) -> bool:
        if not self.use_color:
            return True
        for member in group.detections:
            dist = self.color_metric.distance(
                detection.color_feature, member.color_feature
            )
            if dist > self.color_threshold:
                return False
        return True

    def group(self, detections: list[Detection]) -> list[ObjectGroup]:
        """Cluster one frame's detections across cameras.

        Highest-confidence detections seed groups first; a detection
        joins the nearest group within the gating radius whose members
        come from other cameras and whose colours agree, otherwise it
        starts a new group.
        """
        groups: list[ObjectGroup] = []
        centroids: list[np.ndarray] = []
        for det in sorted(detections, key=lambda d: -d.score):
            point = self.ground_point(det)
            best_group = None
            best_dist = self.ground_radius
            for idx, group in enumerate(groups):
                if det.camera_id in group.camera_ids:
                    continue
                dist = float(np.linalg.norm(point - centroids[idx]))
                if dist < best_dist and self._color_compatible(det, group):
                    best_dist = dist
                    best_group = idx
            if best_group is None:
                groups.append(
                    ObjectGroup(
                        detections=[det],
                        ground_point=(float(point[0]), float(point[1])),
                    )
                )
                centroids.append(point)
            else:
                group = groups[best_group]
                count = len(group)
                group.add(det)
                # Running mean keeps the centroid stable as members join.
                centroids[best_group] = (
                    centroids[best_group] * count + point
                ) / (count + 1)
                group.ground_point = (
                    float(centroids[best_group][0]),
                    float(centroids[best_group][1]),
                )
        return groups

    def reid_precision(
        self, groups: list[ObjectGroup]
    ) -> float:
        """Evaluation helper: fraction of multi-member groups whose
        members all share the same ground-truth identity (the paper
        reports >90% re-identification precision)."""
        multi = [g for g in groups if len(g) > 1]
        if not multi:
            return 1.0
        pure = sum(
            1
            for g in multi
            if g.is_true_object
            and len({d.truth_id for d in g.detections}) == 1
        )
        return pure / len(multi)

"""Cross-camera detection grouping.

For every detection the controller extracts the centre of the bottom
edge of its bounding box — assumed to touch the ground — and projects
it through the camera's offline ground-plane homography into world
coordinates.  Detections from different cameras whose projections land
within a gating radius are candidate matches; the match is accepted
only if their colour features also agree under the Mahalanobis metric
(Section IV-C: colour verification "reduces the false matches due to
imperfect homography matching").
"""

from __future__ import annotations

import math

import numpy as np

from repro.detection.base import Detection
from repro.geometry.homography import Homography
from repro.reid.fusion import ObjectGroup
from repro.reid.mahalanobis import MahalanobisMetric

DEFAULT_GROUND_RADIUS_M = 0.9
DEFAULT_COLOR_THRESHOLD = 3.5


class CrossCameraMatcher:
    """Groups one frame's multi-camera detections into objects."""

    def __init__(
        self,
        image_to_ground: dict[str, Homography],
        ground_radius: float = DEFAULT_GROUND_RADIUS_M,
        color_metric: MahalanobisMetric | None = None,
        color_threshold: float = DEFAULT_COLOR_THRESHOLD,
        use_color: bool = True,
    ) -> None:
        """
        Args:
            image_to_ground: Per-camera homography mapping image pixels
                to world ground-plane coordinates (built offline from
                landmarks; see :mod:`repro.geometry.ransac`).
            ground_radius: Gating distance (metres) on the ground plane.
            color_metric: Fitted Mahalanobis metric over colour
                features; required when ``use_color`` is True.
            color_threshold: Maximum colour distance for a match.
            use_color: Disable to measure the homography-only ablation.
        """
        if not image_to_ground:
            raise ValueError("need at least one camera homography")
        if ground_radius <= 0:
            raise ValueError("ground_radius must be positive")
        if use_color and color_metric is not None and not color_metric.is_fitted:
            raise ValueError("color_metric must be fitted before use")
        self.image_to_ground = dict(image_to_ground)
        self.ground_radius = ground_radius
        self.color_metric = color_metric
        self.color_threshold = color_threshold
        self.use_color = use_color and color_metric is not None
        # Selection re-groups the same assessment detections under many
        # candidate assignments, so the per-detection projection and
        # per-pair colour distance are memoised.  The cached values are
        # the unmemoised scalars, computed once — grouping stays
        # bit-identical.  Values keep a strong reference to their
        # detections so the id() keys cannot be recycled.
        self._point_cache: dict[int, tuple[Detection, np.ndarray]] = {}
        self._color_cache: dict[
            tuple[int, int], tuple[Detection, Detection, float]
        ] = {}
        self._reduced_cache: dict[int, tuple[Detection, np.ndarray]] = {}
        self._cache_limit = 200_000

    def clear_caches(self) -> None:
        """Drop memoised projections and colour distances."""
        self._point_cache.clear()
        self._color_cache.clear()
        self._reduced_cache.clear()

    def _cached_point(self, detection: Detection) -> np.ndarray:
        key = id(detection)
        hit = self._point_cache.get(key)
        if hit is not None:
            return hit[1]
        if len(self._point_cache) >= self._cache_limit:
            self._point_cache.clear()
        # Single-point fast path: the 3-vector product computes the
        # same values as ground_point()'s apply_homography call without
        # its batching scaffolding (verified bit-identical).
        try:
            homography = self.image_to_ground[detection.camera_id]
        except KeyError:
            raise KeyError(
                f"no ground homography for camera {detection.camera_id!r}"
            ) from None
        x, y = detection.bbox.bottom_center
        projected = homography.matrix @ np.array([x, y, 1.0])
        point = projected[:2] / projected[2]
        self._point_cache[key] = (detection, point)
        return point

    def _reduced_feature(self, detection: Detection) -> np.ndarray:
        """The detection's PCA-reduced colour feature, memoised.

        ``MahalanobisMetric.distance`` re-reduces both endpoints on
        every call; caching the reduction per detection leaves exactly
        the per-pair ``sqrt(diff @ P @ diff)`` — the same operations
        on the same values, computed once per detection instead of
        once per pair.
        """
        key = id(detection)
        hit = self._reduced_cache.get(key)
        if hit is not None:
            return hit[1]
        if len(self._reduced_cache) >= self._cache_limit:
            self._reduced_cache.clear()
        reduced = self.color_metric._reduce(detection.color_feature)
        self._reduced_cache[key] = (detection, reduced)
        return reduced

    def _color_distance(self, a: Detection, b: Detection) -> float:
        """`MahalanobisMetric.distance` with the reductions memoised;
        the remaining arithmetic is the metric's own, verbatim."""
        diff = self._reduced_feature(a) - self._reduced_feature(b)
        value = float(diff @ self.color_metric._precision @ diff)
        return float(np.sqrt(max(0.0, value)))

    def _cached_color_distance(self, a: Detection, b: Detection) -> float:
        key = (id(a), id(b)) if id(a) <= id(b) else (id(b), id(a))
        hit = self._color_cache.get(key)
        if hit is not None:
            return hit[2]
        if len(self._color_cache) >= self._cache_limit:
            self._color_cache.clear()
        dist = self._color_distance(a, b)
        self._color_cache[key] = (a, b, dist)
        return dist

    def _color_compatible_cached(
        self, detection: Detection, members: list[Detection]
    ) -> bool:
        """`_color_compatible` with the cache lookups inlined — the
        grouping scan calls this tens of thousands of times per
        selection, so attribute and call overhead matter."""
        cache = self._color_cache
        threshold = self.color_threshold
        det_id = id(detection)
        for member in members:
            member_id = id(member)
            key = (
                (det_id, member_id)
                if det_id <= member_id
                else (member_id, det_id)
            )
            hit = cache.get(key)
            if hit is None:
                if len(cache) >= self._cache_limit:
                    cache.clear()
                dist = self._color_distance(detection, member)
                cache[key] = (detection, member, dist)
            else:
                dist = hit[2]
            if dist > threshold:
                return False
        return True

    def ground_point(self, detection: Detection) -> np.ndarray:
        """Project a detection's bottom-centre to world coordinates."""
        try:
            homography = self.image_to_ground[detection.camera_id]
        except KeyError:
            raise KeyError(
                f"no ground homography for camera {detection.camera_id!r}"
            ) from None
        return homography.apply(np.array(detection.bbox.bottom_center))

    def _color_compatible(
        self, detection: Detection, group: ObjectGroup
    ) -> bool:
        if not self.use_color:
            return True
        for member in group.detections:
            dist = self._cached_color_distance(detection, member)
            if dist > self.color_threshold:
                return False
        return True

    def group(self, detections: list[Detection]) -> list[ObjectGroup]:
        """Cluster one frame's detections across cameras.

        Highest-confidence detections seed groups first; a detection
        joins the nearest group within the gating radius whose members
        come from other cameras and whose colours agree, otherwise it
        starts a new group.

        This is a scalar restatement of :meth:`group_reference` with
        the numpy overhead stripped from the inner scan: distances and
        centroid updates run on plain Python floats, which execute the
        same IEEE-double operations as the reference's elementwise
        numpy expressions.  The one numerical difference is the gating
        distance itself — ``math.sqrt(dx*dx + dy*dy)`` instead of the
        reference's BLAS-backed ``np.linalg.norm`` — so membership can
        differ from the reference only when a distance sits within one
        ulp of the radius or of a competing group's distance.
        """
        groups: list[ObjectGroup] = []
        group_cameras: list[set[str]] = []
        centroids: list[tuple[float, float]] = []
        counts: list[int] = []
        radius = self.ground_radius
        use_color = self.use_color
        for det in sorted(detections, key=lambda d: -d.score):
            point = self._cached_point(det)
            px, py = float(point[0]), float(point[1])
            camera = det.camera_id
            # The reference scan accepts strictly-improving distances,
            # so colour-rejected groups never update the best: the
            # winner is the colour-compatible eligible group of
            # minimal (distance, index).  Sorting the gated candidates
            # and taking the first colour pass computes the same
            # winner with the fewest colour checks.
            candidates: list[tuple[float, int]] = []
            for idx in range(len(groups)):
                if camera in group_cameras[idx]:
                    continue
                cx, cy = centroids[idx]
                dx = px - cx
                dy = py - cy
                dist = math.sqrt(dx * dx + dy * dy)
                if dist < radius:
                    candidates.append((dist, idx))
            candidates.sort()
            best_group = None
            for _, idx in candidates:
                if not use_color or self._color_compatible_cached(
                    det, groups[idx].detections
                ):
                    best_group = idx
                    break
            if best_group is None:
                groups.append(
                    ObjectGroup(detections=[det], ground_point=(px, py))
                )
                group_cameras.append({camera})
                centroids.append((px, py))
                counts.append(1)
            else:
                group = groups[best_group]
                count = counts[best_group]
                group.add(det)
                group_cameras[best_group].add(camera)
                cx, cy = centroids[best_group]
                # Running mean keeps the centroid stable as members join.
                centroid = (
                    (cx * count + px) / (count + 1),
                    (cy * count + py) / (count + 1),
                )
                centroids[best_group] = centroid
                counts[best_group] = count + 1
                group.ground_point = centroid
        return groups

    def group_reference(
        self, detections: list[Detection]
    ) -> list[ObjectGroup]:
        """The unmemoised clustering loop, kept verbatim as the pinned
        oracle for equivalence tests and as the honest per-call
        baseline for the scale benchmarks."""
        groups: list[ObjectGroup] = []
        centroids: list[np.ndarray] = []
        for det in sorted(detections, key=lambda d: -d.score):
            point = self.ground_point(det)
            best_group = None
            best_dist = self.ground_radius
            for idx, group in enumerate(groups):
                if det.camera_id in group.camera_ids:
                    continue
                dist = float(np.linalg.norm(point - centroids[idx]))
                if dist < best_dist and self._reference_color_compatible(
                    det, group
                ):
                    best_dist = dist
                    best_group = idx
            if best_group is None:
                groups.append(
                    ObjectGroup(
                        detections=[det],
                        ground_point=(float(point[0]), float(point[1])),
                    )
                )
                centroids.append(point)
            else:
                group = groups[best_group]
                count = len(group)
                group.add(det)
                centroids[best_group] = (
                    centroids[best_group] * count + point
                ) / (count + 1)
                group.ground_point = (
                    float(centroids[best_group][0]),
                    float(centroids[best_group][1]),
                )
        return groups

    def _reference_color_compatible(
        self, detection: Detection, group: ObjectGroup
    ) -> bool:
        if not self.use_color:
            return True
        for member in group.detections:
            dist = self.color_metric.distance(
                detection.color_feature, member.color_feature
            )
            if dist > self.color_threshold:
                return False
        return True

    def reid_precision(
        self, groups: list[ObjectGroup]
    ) -> float:
        """Evaluation helper: fraction of multi-member groups whose
        members all share the same ground-truth identity (the paper
        reports >90% re-identification precision)."""
        multi = [g for g in groups if len(g) > 1]
        if not multi:
            return 1.0
        pure = sum(
            1
            for g in multi
            if g.is_true_object
            and len({d.truth_id for d in g.detections}) == 1
        )
        return pure / len(multi)

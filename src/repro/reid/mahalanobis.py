"""Mahalanobis distance over PCA-reduced colour features.

EECS reduces each detected area's Mean Color feature with PCA and
compares candidate matches under a Mahalanobis distance learned from
training data [27]; pairs within a threshold are declared the same
object.  The metric here fits the feature covariance (with shrinkage
towards the identity to stay invertible on small samples) and an
optional PCA reduction.
"""

from __future__ import annotations

import numpy as np

from repro.domain_adaptation.pca import PCA


class MahalanobisMetric:
    """Shrinkage-regularised Mahalanobis distance with PCA reduction."""

    def __init__(
        self, n_components: int | None = None, shrinkage: float = 0.1
    ) -> None:
        if not 0.0 <= shrinkage <= 1.0:
            raise ValueError(f"shrinkage must be in [0, 1], got {shrinkage}")
        self.n_components = n_components
        self.shrinkage = shrinkage
        self._pca: PCA | None = None
        self._precision: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._precision is not None

    def fit(self, features: np.ndarray) -> "MahalanobisMetric":
        """Fit covariance (and PCA, if configured) on ``(n, d)`` samples."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or len(features) < 2:
            raise ValueError(
                f"need at least two (n, d) samples, got {features.shape}"
            )
        if self.n_components is not None:
            self._pca = PCA(self.n_components).fit(features)
            features = self._pca.transform(features)
        cov = np.cov(features, rowvar=False)
        cov = np.atleast_2d(cov)
        d = cov.shape[0]
        trace_mean = np.trace(cov) / d
        if trace_mean <= 1e-12:
            trace_mean = 1e-12
        shrunk = (1 - self.shrinkage) * cov + self.shrinkage * trace_mean * np.eye(d)
        self._precision = np.linalg.inv(shrunk)
        return self

    def _reduce(self, feature: np.ndarray) -> np.ndarray:
        feature = np.asarray(feature, dtype=float).ravel()
        if self._pca is not None:
            return self._pca.transform(feature[None, :])[0]
        return feature

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Mahalanobis distance between two raw feature vectors."""
        if self._precision is None:
            raise RuntimeError("MahalanobisMetric used before fit")
        diff = self._reduce(a) - self._reduce(b)
        value = float(diff @ self._precision @ diff)
        return float(np.sqrt(max(0.0, value)))

    def pairwise(self, features: np.ndarray) -> np.ndarray:
        """Symmetric ``(n, n)`` distance matrix."""
        features = np.asarray(features, dtype=float)
        reduced = np.stack([self._reduce(f) for f in features])
        n = len(reduced)
        out = np.zeros((n, n))
        for i in range(n):
            diff = reduced[i + 1 :] - reduced[i]
            vals = np.einsum("ij,jk,ik->i", diff, self._precision, diff)
            dists = np.sqrt(np.maximum(0.0, vals))
            out[i, i + 1 :] = dists
            out[i + 1 :, i] = dists
        return out

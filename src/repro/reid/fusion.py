"""Multi-view detection fusion (Eq. 6).

Once detections from different cameras are grouped as one physical
object, their per-camera detection probabilities ``P_ij`` are combined
into a single true-positive probability: the complement of all views
being false positives,  ``P_i = 1 - prod_j (1 - P_ij)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.base import Detection


def fuse_probabilities(probabilities: list[float]) -> float:
    """Eq. (6): combined true-positive probability of one object.

    Args:
        probabilities: Per-camera detection probabilities in [0, 1].

    Returns:
        ``1 - prod(1 - p)``; 0.0 for an empty list.
    """
    if not probabilities:
        return 0.0
    probs = np.asarray(probabilities, dtype=float)
    if np.any((probs < 0) | (probs > 1)):
        raise ValueError(f"probabilities must lie in [0, 1]: {probabilities}")
    return float(1.0 - np.prod(1.0 - probs))


@dataclass
class ObjectGroup:
    """Detections from multiple cameras re-identified as one object."""

    detections: list[Detection] = field(default_factory=list)
    ground_point: tuple[float, float] | None = None

    @property
    def camera_ids(self) -> list[str]:
        return [d.camera_id for d in self.detections]

    @property
    def fused_probability(self) -> float:
        """Eq. (6) over the group's calibrated probabilities; raw
        detections without a calibrated probability contribute their
        clamped score as a fallback."""
        probs = []
        for det in self.detections:
            p = det.probability
            if np.isnan(p):
                p = float(np.clip(det.score, 0.0, 1.0))
            probs.append(float(np.clip(p, 0.0, 1.0)))
        return fuse_probabilities(probs)

    @property
    def truth_ids(self) -> set[int]:
        """Ground-truth ids present in the group (evaluation only)."""
        return {
            d.truth_id for d in self.detections if d.truth_id is not None
        }

    @property
    def is_true_object(self) -> bool:
        """Evaluation-only: does any member detection hit a real person?"""
        return len(self.truth_ids) > 0

    @property
    def majority_truth_id(self) -> int | None:
        """Most common ground-truth id among members (evaluation only)."""
        ids = [d.truth_id for d in self.detections if d.truth_id is not None]
        if not ids:
            return None
        values, counts = np.unique(ids, return_counts=True)
        return int(values[np.argmax(counts)])

    def add(self, detection: Detection) -> None:
        self.detections.append(detection)

    def __len__(self) -> int:
        return len(self.detections)

"""Multi-view detection fusion (Eq. 6).

Once detections from different cameras are grouped as one physical
object, their per-camera detection probabilities ``P_ij`` are combined
into a single true-positive probability: the complement of all views
being false positives,  ``P_i = 1 - prod_j (1 - P_ij)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.base import Detection


def fuse_probabilities(probabilities: list[float]) -> float:
    """Eq. (6): combined true-positive probability of one object.

    Args:
        probabilities: Per-camera detection probabilities in [0, 1].

    Returns:
        ``1 - prod(1 - p)``; 0.0 for an empty list.
    """
    if not probabilities:
        return 0.0
    probs = np.asarray(probabilities, dtype=float)
    if np.any((probs < 0) | (probs > 1)):
        raise ValueError(f"probabilities must lie in [0, 1]: {probabilities}")
    return float(1.0 - np.prod(1.0 - probs))


@dataclass
class ObjectGroup:
    """Detections from multiple cameras re-identified as one object."""

    detections: list[Detection] = field(default_factory=list)
    ground_point: tuple[float, float] | None = None

    @property
    def camera_ids(self) -> list[str]:
        return [d.camera_id for d in self.detections]

    @property
    def fused_probability(self) -> float:
        """Eq. (6) over the group's calibrated probabilities; raw
        detections without a calibrated probability contribute their
        clamped score as a fallback."""
        if not self.detections:
            return 0.0
        # Inline Eq. (6): the clamped probabilities cannot fail
        # fuse_probabilities' range check, and a sequential product
        # over Python floats computes np.prod's result bit for bit.
        remainder = 1.0
        for det in self.detections:
            p = det.probability
            if p != p:  # NaN check without an isnan ufunc call
                p = min(1.0, max(0.0, det.score))
            remainder *= 1.0 - min(1.0, max(0.0, p))
        return 1.0 - remainder

    @property
    def truth_ids(self) -> set[int]:
        """Ground-truth ids present in the group (evaluation only)."""
        return {
            d.truth_id for d in self.detections if d.truth_id is not None
        }

    @property
    def is_true_object(self) -> bool:
        """Evaluation-only: does any member detection hit a real person?"""
        return len(self.truth_ids) > 0

    @property
    def majority_truth_id(self) -> int | None:
        """Most common ground-truth id among members (evaluation only).

        Ties break towards the smallest id — the same winner
        ``np.unique`` (sorted values) + ``argmax`` (first maximum)
        picked before this was scalarised off the per-frame path.
        """
        counts: dict[int, int] = {}
        for det in self.detections:
            if det.truth_id is not None:
                counts[det.truth_id] = counts.get(det.truth_id, 0) + 1
        if not counts:
            return None
        best_id = -1
        best_count = 0
        for truth_id in sorted(counts):
            if counts[truth_id] > best_count:
                best_id = truth_id
                best_count = counts[truth_id]
        return int(best_id)

    def add(self, detection: Detection) -> None:
        self.detections.append(detection)

    def __len__(self) -> int:
        return len(self.detections)

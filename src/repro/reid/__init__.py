"""Cross-camera object re-identification (Section IV-C).

The controller must recognise when two detections from different
views are the same physical object; otherwise one person would be
counted once per camera and the global accuracy estimate would be
wrong.  The paper's recipe, implemented here: project each detection's
ground-contact point (bottom-centre of its box) through the offline
ground-plane homographies, pre-match detections whose projections
land close together, then verify matches with PCA-reduced Mean Color
features under a Mahalanobis distance, and finally fuse the matched
detections' probabilities with Eq. (6).
"""

from repro.reid.fusion import ObjectGroup, fuse_probabilities
from repro.reid.mahalanobis import MahalanobisMetric
from repro.reid.matcher import CrossCameraMatcher

__all__ = [
    "ObjectGroup",
    "fuse_probabilities",
    "MahalanobisMetric",
    "CrossCameraMatcher",
]

"""Fault injection and fault-tolerance support.

The paper's deployment is battery-operated cameras on wireless links;
this package supplies the failure model: declarative seeded
:class:`FaultPlan` schedules (packet loss, latency spikes, partitions,
crashes, battery exhaustion), the :class:`FaultInjector` that compiles
them onto the event simulator, and the structured
:class:`FaultEvent`/:class:`RecoveryEvent` records every layer appends
to.  Reliable delivery and controller-side liveness live with the
network nodes (:mod:`repro.network.reliability`,
:mod:`repro.network.node`); the chaos experiment that sweeps loss rate
against crash count is :mod:`repro.experiments.faults`.
"""

from repro.faults.events import FaultEvent, FaultLog, RecoveryEvent
from repro.faults.injector import FaultInjector, SendVerdict
from repro.faults.plan import (
    BatteryFault,
    CalibrationDrift,
    ClockSkew,
    Crash,
    FaultPlan,
    LinkFault,
    MessageCorruption,
    Partition,
    SensorFault,
)

__all__ = [
    "BatteryFault",
    "CalibrationDrift",
    "ClockSkew",
    "Crash",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "LinkFault",
    "MessageCorruption",
    "Partition",
    "RecoveryEvent",
    "SendVerdict",
    "SensorFault",
]

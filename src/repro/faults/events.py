"""Structured fault and recovery records.

Everything the fault subsystem does — injected crashes, drained
batteries, severed links, dropped packets that exhausted their retry
budget, liveness declarations and controller re-selections — is
recorded as a typed event with a simulated timestamp, so a chaos run's
report can show *what* failed, *when*, and *how the system reacted*
instead of a bare accuracy number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union


@dataclass(frozen=True)
class FaultEvent:
    """Something broke (or was broken on purpose).

    Attributes:
        time_s: Simulated time of the fault.
        kind: Machine-readable category, e.g. ``"node_crash"``,
            ``"battery_exhausted"``, ``"link_partition"``,
            ``"delivery_gave_up"``, ``"camera_marked_dead"``.
        subject: The node or ``"a<->b"`` link pair affected.
        detail: Free-form context (message kind, residual energy, ...).
    """

    time_s: float
    kind: str
    subject: str
    detail: str = ""


@dataclass(frozen=True)
class RecoveryEvent:
    """The system healed or compensated.

    Attributes:
        time_s: Simulated time of the recovery action.
        kind: Machine-readable category, e.g. ``"node_reboot"``,
            ``"link_restored"``, ``"camera_marked_alive"``,
            ``"reselected"``.
        subject: The node or link pair involved.
        detail: Free-form context (the new assignment, ...).
    """

    time_s: float
    kind: str
    subject: str
    detail: str = ""


@dataclass
class FaultLog:
    """An append-only, time-ordered log shared by injector and nodes.

    An optional ``sink`` callback sees every recorded event as it is
    appended — the telemetry subsystem attaches one to mirror faults
    and recoveries into its unified event stream without this module
    depending on telemetry.
    """

    faults: list[FaultEvent] = field(default_factory=list)
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    sink: Union[
        Callable[[Union[FaultEvent, RecoveryEvent]], None], None
    ] = None

    def fault(
        self, time_s: float, kind: str, subject: str, detail: str = ""
    ) -> FaultEvent:
        event = FaultEvent(time_s, kind, subject, detail)
        self.faults.append(event)
        if self.sink is not None:
            self.sink(event)
        return event

    def recovery(
        self, time_s: float, kind: str, subject: str, detail: str = ""
    ) -> RecoveryEvent:
        event = RecoveryEvent(time_s, kind, subject, detail)
        self.recoveries.append(event)
        if self.sink is not None:
            self.sink(event)
        return event

    def kinds(self) -> list[str]:
        """All fault kinds seen, in order of first occurrence."""
        seen: list[str] = []
        for event in self.faults:
            if event.kind not in seen:
                seen.append(event.kind)
        return seen

    def __len__(self) -> int:
        return len(self.faults) + len(self.recoveries)

"""Compiles a :class:`FaultPlan` onto a running event simulator.

The injector owns the *only* random stream of the fault subsystem
(seeded from the plan), so two runs with the same plan, topology and
workload see bit-identical faults.  It plugs into
:class:`~repro.network.simulator.EventSimulator` through two seams:

* scheduled events — crashes, reboots, battery exhaustion and link
  partitions are pushed into the simulator's queue when the injector
  is attached;
* the per-transmission hook :meth:`on_send` — the simulator consults
  it for every message to decide stochastic drop and extra latency.

An injector built from an empty plan never touches the rng and never
drops or delays anything, which is what keeps zero-fault runs
bit-identical to a simulator without an injector at all.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.faults.events import FaultLog
from repro.faults.plan import FaultPlan, SensorFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.detection.base import Detection
    from repro.network.messages import Message
    from repro.network.simulator import EventSimulator


@dataclass(frozen=True)
class SendVerdict:
    """The injector's ruling on one transmission.

    ``corrupt`` means the message is delivered but arrives garbled:
    the receiver's integrity check fails and it must discard the
    payload without acknowledging it.
    """

    drop: bool = False
    extra_latency_s: float = 0.0
    corrupt: bool = False


_CLEAN = SendVerdict()


class FaultInjector:
    """Injects a :class:`FaultPlan` into an :class:`EventSimulator`."""

    def __init__(self, plan: FaultPlan, seed: int | None = None) -> None:
        self.plan = plan
        self.rng = np.random.default_rng(
            plan.seed if seed is None else seed
        )
        self.log = FaultLog()
        self.messages_lost = 0
        self.messages_corrupted = 0
        self.detections_suppressed = 0
        self.detections_fabricated = 0
        self._sim: "EventSimulator | None" = None
        #: Lazily created per-node data-plane rng streams.  Sensor
        #: perturbation must not share the link-loss stream: a plan
        #: that adds a sensor fault would otherwise shift every loss
        #: draw and change which *packets* drop.
        self._data_rngs: dict[str, np.random.Generator] = {}

    def _data_rng(self, node_id: str) -> np.random.Generator:
        rng = self._data_rngs.get(node_id)
        if rng is None:
            rng = np.random.default_rng(
                (self.plan.seed, 0x5E2502, zlib.crc32(node_id.encode()))
            )
            self._data_rngs[node_id] = rng
        return rng

    # ------------------------------------------------------------------
    # Attachment: schedule the deterministic part of the plan
    # ------------------------------------------------------------------
    def attach(self, sim: "EventSimulator") -> None:
        """Register with ``sim`` and schedule all planned faults.

        Times in the plan are absolute simulated times; attaching after
        ``sim.now`` has advanced past a fault time raises.
        """
        if self._sim is not None:
            raise RuntimeError("injector is already attached")
        self._sim = sim
        sim.fault_injector = self
        for crash in self.plan.crashes:
            sim.schedule(
                crash.at_s - sim.now, lambda c=crash: self._crash(c)
            )
            if crash.reboot_s is not None:
                sim.schedule(
                    crash.reboot_s - sim.now, lambda c=crash: self._reboot(c)
                )
        for fault in self.plan.battery_faults:
            sim.schedule(
                fault.at_s - sim.now, lambda f=fault: self._drain(f)
            )
        for part in self.plan.partitions:
            sim.schedule(
                part.start_s - sim.now, lambda p=part: self._sever(p)
            )
            if part.end_s != float("inf"):
                sim.schedule(
                    part.end_s - sim.now, lambda p=part: self._heal(p)
                )
        # Data-plane faults act through per-call hooks rather than
        # scheduled state changes, but their window edges still belong
        # in the event log so a chaos report shows when they ruled.
        for window, kind, subject, detail in self._data_plane_windows():
            start_s, end_s = window
            sim.schedule(
                start_s - sim.now,
                lambda k=kind, s=subject, d=detail: self.log.fault(
                    self._require_sim().now, k, s, d
                ),
            )
            if end_s != float("inf"):
                sim.schedule(
                    end_s - sim.now,
                    lambda k=kind, s=subject: self.log.recovery(
                        self._require_sim().now, f"{k}_cleared", s
                    ),
                )

    def _data_plane_windows(self):
        for fault in self.plan.sensor_faults:
            effects = []
            if fault.stuck:
                effects.append("stuck")
            if fault.noise:
                effects.append(f"noise={fault.noise:g}")
            if fault.false_positive_rate:
                effects.append(f"fp_rate={fault.false_positive_rate:g}")
            yield (
                (fault.start_s, fault.end_s),
                "sensor_fault",
                fault.node_id,
                ", ".join(effects),
            )
        for drift in self.plan.calibration_drifts:
            yield (
                (drift.start_s, drift.end_s),
                "calibration_drift",
                drift.node_id,
                f"score {drift.score_drift_per_s:g}/s, "
                f"position {drift.position_drift_per_s:g}/s",
            )
        for skew in self.plan.clock_skews:
            yield (
                (skew.start_s, skew.end_s),
                "clock_skew",
                skew.node_id,
                f"rate error {skew.skew:+g}",
            )
        for corr in self.plan.message_corruptions:
            yield (
                (corr.start_s, corr.end_s),
                "message_corruption",
                f"{corr.node_a}<->{corr.node_b}",
                f"rate {corr.rate:g}",
            )

    # ------------------------------------------------------------------
    # Scheduled fault callbacks
    # ------------------------------------------------------------------
    def _crash(self, crash) -> None:
        sim = self._require_sim()
        sim.set_node_down(crash.node_id)
        node = sim.node(crash.node_id)
        if hasattr(node, "crash"):
            node.crash()
        self.log.fault(sim.now, "node_crash", crash.node_id)

    def _reboot(self, crash) -> None:
        sim = self._require_sim()
        sim.set_node_up(crash.node_id)
        node = sim.node(crash.node_id)
        if hasattr(node, "reboot"):
            node.reboot()
        self.log.recovery(sim.now, "node_reboot", crash.node_id)

    def _drain(self, fault) -> None:
        sim = self._require_sim()
        node = sim.node(fault.node_id)
        battery = getattr(node, "battery", None)
        if battery is None:
            raise TypeError(
                f"node {fault.node_id!r} has no battery to drain"
            )
        drained = battery.draw(battery.residual * fault.fraction)
        kind = (
            "battery_exhausted" if battery.is_depleted else "battery_drained"
        )
        self.log.fault(
            sim.now, kind, fault.node_id, f"drained {drained:.1f} J"
        )

    def _sever(self, part) -> None:
        sim = self._require_sim()
        sim.disconnect(part.node_a, part.node_b)
        self.log.fault(
            sim.now, "link_partition", f"{part.node_a}<->{part.node_b}"
        )

    def _heal(self, part) -> None:
        sim = self._require_sim()
        sim.reconnect(part.node_a, part.node_b)
        self.log.recovery(
            sim.now, "link_restored", f"{part.node_a}<->{part.node_b}"
        )

    # ------------------------------------------------------------------
    # Per-transmission hook
    # ------------------------------------------------------------------
    def on_send(self, message: "Message") -> SendVerdict:
        """Rule on one transmission at the current simulated time.

        Consumes one rng draw per *matching* link fault with a nonzero
        loss rate (plus one per matching corruption fault) — an empty
        or non-matching plan leaves the stream untouched.
        """
        sim = self._require_sim()
        active = [
            f
            for f in self.plan.link_faults
            if f.matches(message.sender, message.recipient, sim.now)
        ]
        corrupting = [
            c
            for c in self.plan.message_corruptions
            if c.matches(message.sender, message.recipient, sim.now)
        ]
        if not active and not corrupting:
            return _CLEAN
        drop = False
        extra = 0.0
        for fault in active:
            extra += fault.extra_latency_s
            if fault.loss_rate > 0.0 and not drop:
                drop = bool(self.rng.random() < fault.loss_rate)
        corrupt = False
        if not drop:
            for fault in corrupting:
                if not corrupt:
                    corrupt = bool(self.rng.random() < fault.rate)
        if drop:
            self.messages_lost += 1
        if corrupt:
            self.messages_corrupted += 1
        return SendVerdict(
            drop=drop, extra_latency_s=extra, corrupt=corrupt
        )

    # ------------------------------------------------------------------
    # Data-plane hooks (consulted by CameraSensorNode)
    # ------------------------------------------------------------------
    def sensor_fault_at(
        self, node_id: str, time_s: float
    ) -> SensorFault | None:
        """The active sensor fault for a node, if any (no rng)."""
        for fault in self.plan.sensor_faults:
            if fault.active(node_id, time_s):
                return fault
        return None

    def stuck_active(self, node_id: str, time_s: float) -> bool:
        fault = self.sensor_fault_at(node_id, time_s)
        return fault is not None and fault.stuck

    def clock_scale(self, node_id: str, time_s: float) -> float:
        """Multiplier for locally scheduled intervals (1.0 = healthy)."""
        scale = 1.0
        for skew in self.plan.clock_skews:
            if skew.active(node_id, time_s):
                scale *= 1.0 + skew.skew
        return scale

    def perturb_detections(
        self,
        node_id: str,
        time_s: float,
        detections: "list[Detection]",
        threshold: float | None,
    ) -> "list[Detection]":
        """Apply active sensor noise and calibration drift to one
        frame's detections.

        Returns the input list *unchanged and undrawn-from* when no
        data-plane fault matches, which is what keeps clean cameras
        (and whole clean runs) bit-identical.  Perturbation draws come
        from a per-node stream separate from the link-loss rng.
        """
        fault = self.sensor_fault_at(node_id, time_s)
        drifts = [
            d
            for d in self.plan.calibration_drifts
            if d.active(node_id, time_s)
        ]
        if fault is None and not drifts:
            return detections

        # Imported here, not at module top: the injector is imported by
        # layers that never touch the detection stack.
        from repro.detection.base import BoundingBox

        out: "list[Detection]" = []
        rng = self._data_rng(node_id)
        cut = threshold if threshold is not None else -np.inf
        score_offset = sum(d.score_offset(time_s) for d in drifts)
        position_offset = sum(d.position_offset(time_s) for d in drifts)
        for det in detections:
            if (
                fault is not None
                and fault.noise > 0.0
                and rng.random() < fault.noise
            ):
                self.detections_suppressed += 1
                continue  # the corrupted frame missed this object
            score = det.score + score_offset
            if drifts and score < cut:
                self.detections_suppressed += 1
                continue  # drifted below the detector's own cut-off
            if score_offset or position_offset:
                bbox = det.bbox
                if position_offset:
                    bbox = BoundingBox(
                        bbox.x + position_offset, bbox.y, bbox.w, bbox.h
                    )
                det = replace(det, score=score, bbox=bbox)
            out.append(det)

        if fault is not None and fault.false_positive_rate > 0.0 and out:
            count = int(rng.poisson(fault.false_positive_rate))
            anchors = rng.integers(0, len(out), size=count)
            for anchor_index in anchors:
                anchor = out[int(anchor_index)]
                bbox = anchor.bbox
                jitter = rng.normal(0.0, 0.35 * max(bbox.w, 1.0), size=2)
                fp_box = BoundingBox(
                    bbox.x + float(jitter[0]),
                    max(0.0, bbox.y + float(jitter[1])),
                    bbox.w,
                    bbox.h,
                )
                # Fabricated junk masquerades as a confident hit: the
                # score rides well above the anchor's, so it seeds
                # cross-camera groups and inflates the camera's
                # apparent assessment quality.
                fp_score = anchor.score + 2.0 + float(rng.exponential(2.0))
                out.append(
                    replace(
                        anchor,
                        bbox=fp_box,
                        score=fp_score,
                        probability=float("nan"),
                        truth_id=None,
                    )
                )
                self.detections_fabricated += 1
        return out

    def _require_sim(self) -> "EventSimulator":
        if self._sim is None:
            raise RuntimeError("injector is not attached to a simulator")
        return self._sim

    def position(self) -> dict[str, int]:
        """How far through the plan's stochastic stream and event log
        this injector has advanced — the progress marker a checkpoint
        records and a seeded replay must reproduce exactly."""
        return {
            "messages_lost": self.messages_lost,
            "messages_corrupted": self.messages_corrupted,
            "detections_suppressed": self.detections_suppressed,
            "detections_fabricated": self.detections_fabricated,
            "faults_logged": len(self.log.faults),
            "recoveries_logged": len(self.log.recoveries),
        }

"""Compiles a :class:`FaultPlan` onto a running event simulator.

The injector owns the *only* random stream of the fault subsystem
(seeded from the plan), so two runs with the same plan, topology and
workload see bit-identical faults.  It plugs into
:class:`~repro.network.simulator.EventSimulator` through two seams:

* scheduled events — crashes, reboots, battery exhaustion and link
  partitions are pushed into the simulator's queue when the injector
  is attached;
* the per-transmission hook :meth:`on_send` — the simulator consults
  it for every message to decide stochastic drop and extra latency.

An injector built from an empty plan never touches the rng and never
drops or delays anything, which is what keeps zero-fault runs
bit-identical to a simulator without an injector at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.faults.events import FaultLog
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.messages import Message
    from repro.network.simulator import EventSimulator


@dataclass(frozen=True)
class SendVerdict:
    """The injector's ruling on one transmission."""

    drop: bool = False
    extra_latency_s: float = 0.0


_CLEAN = SendVerdict()


class FaultInjector:
    """Injects a :class:`FaultPlan` into an :class:`EventSimulator`."""

    def __init__(self, plan: FaultPlan, seed: int | None = None) -> None:
        self.plan = plan
        self.rng = np.random.default_rng(
            plan.seed if seed is None else seed
        )
        self.log = FaultLog()
        self.messages_lost = 0
        self._sim: "EventSimulator | None" = None

    # ------------------------------------------------------------------
    # Attachment: schedule the deterministic part of the plan
    # ------------------------------------------------------------------
    def attach(self, sim: "EventSimulator") -> None:
        """Register with ``sim`` and schedule all planned faults.

        Times in the plan are absolute simulated times; attaching after
        ``sim.now`` has advanced past a fault time raises.
        """
        if self._sim is not None:
            raise RuntimeError("injector is already attached")
        self._sim = sim
        sim.fault_injector = self
        for crash in self.plan.crashes:
            sim.schedule(
                crash.at_s - sim.now, lambda c=crash: self._crash(c)
            )
            if crash.reboot_s is not None:
                sim.schedule(
                    crash.reboot_s - sim.now, lambda c=crash: self._reboot(c)
                )
        for fault in self.plan.battery_faults:
            sim.schedule(
                fault.at_s - sim.now, lambda f=fault: self._drain(f)
            )
        for part in self.plan.partitions:
            sim.schedule(
                part.start_s - sim.now, lambda p=part: self._sever(p)
            )
            if part.end_s != float("inf"):
                sim.schedule(
                    part.end_s - sim.now, lambda p=part: self._heal(p)
                )

    # ------------------------------------------------------------------
    # Scheduled fault callbacks
    # ------------------------------------------------------------------
    def _crash(self, crash) -> None:
        sim = self._require_sim()
        sim.set_node_down(crash.node_id)
        node = sim.node(crash.node_id)
        if hasattr(node, "crash"):
            node.crash()
        self.log.fault(sim.now, "node_crash", crash.node_id)

    def _reboot(self, crash) -> None:
        sim = self._require_sim()
        sim.set_node_up(crash.node_id)
        node = sim.node(crash.node_id)
        if hasattr(node, "reboot"):
            node.reboot()
        self.log.recovery(sim.now, "node_reboot", crash.node_id)

    def _drain(self, fault) -> None:
        sim = self._require_sim()
        node = sim.node(fault.node_id)
        battery = getattr(node, "battery", None)
        if battery is None:
            raise TypeError(
                f"node {fault.node_id!r} has no battery to drain"
            )
        drained = battery.draw(battery.residual * fault.fraction)
        kind = (
            "battery_exhausted" if battery.is_depleted else "battery_drained"
        )
        self.log.fault(
            sim.now, kind, fault.node_id, f"drained {drained:.1f} J"
        )

    def _sever(self, part) -> None:
        sim = self._require_sim()
        sim.disconnect(part.node_a, part.node_b)
        self.log.fault(
            sim.now, "link_partition", f"{part.node_a}<->{part.node_b}"
        )

    def _heal(self, part) -> None:
        sim = self._require_sim()
        sim.reconnect(part.node_a, part.node_b)
        self.log.recovery(
            sim.now, "link_restored", f"{part.node_a}<->{part.node_b}"
        )

    # ------------------------------------------------------------------
    # Per-transmission hook
    # ------------------------------------------------------------------
    def on_send(self, message: "Message") -> SendVerdict:
        """Rule on one transmission at the current simulated time.

        Consumes one rng draw per *matching* link fault with a nonzero
        loss rate — an empty or non-matching plan leaves the stream
        untouched.
        """
        sim = self._require_sim()
        active = [
            f
            for f in self.plan.link_faults
            if f.matches(message.sender, message.recipient, sim.now)
        ]
        if not active:
            return _CLEAN
        drop = False
        extra = 0.0
        for fault in active:
            extra += fault.extra_latency_s
            if fault.loss_rate > 0.0 and not drop:
                drop = bool(self.rng.random() < fault.loss_rate)
        if drop:
            self.messages_lost += 1
        return SendVerdict(drop=drop, extra_latency_s=extra)

    def _require_sim(self) -> "EventSimulator":
        if self._sim is None:
            raise RuntimeError("injector is not attached to a simulator")
        return self._sim

    def position(self) -> dict[str, int]:
        """How far through the plan's stochastic stream and event log
        this injector has advanced — the progress marker a checkpoint
        records and a seeded replay must reproduce exactly."""
        return {
            "messages_lost": self.messages_lost,
            "faults_logged": len(self.log.faults),
            "recoveries_logged": len(self.log.recoveries),
        }

"""Declarative, seeded fault schedules.

A :class:`FaultPlan` is a pure description — *which* links lose
packets, *when* nodes crash or batteries die — with no behaviour of
its own; the :class:`~repro.faults.injector.FaultInjector` compiles it
onto an :class:`~repro.network.simulator.EventSimulator`.  Plans are
frozen, JSON round-trippable (the CLI's ``--fault-plan`` flag loads
one from disk) and carry their own seed, so a chaos run is fully
reproducible from the plan file alone.

The wildcard node id ``"*"`` in a :class:`LinkFault` matches any
endpoint, which is how a uniform loss rate across every link is
written.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.ioutils import atomic_write_json

#: Matches any node id in a LinkFault endpoint.
WILDCARD = "*"


@dataclass(frozen=True)
class LinkFault:
    """Degrade a link: random loss and/or a latency spike.

    Active on transmissions whose (sender, recipient) pair matches
    ``node_a``/``node_b`` in either direction and whose send time lies
    in ``[start_s, end_s)``.
    """

    node_a: str = WILDCARD
    node_b: str = WILDCARD
    loss_rate: float = 0.0
    extra_latency_s: float = 0.0
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        if self.extra_latency_s < 0:
            raise ValueError("extra_latency_s cannot be negative")
        if self.end_s < self.start_s:
            raise ValueError("end_s must be >= start_s")

    def matches(self, sender: str, recipient: str, time_s: float) -> bool:
        if not self.start_s <= time_s < self.end_s:
            return False
        pair = {self.node_a, self.node_b}
        if WILDCARD in pair:
            named = pair - {WILDCARD}
            return not named or bool(named & {sender, recipient})
        return pair == {sender, recipient}


@dataclass(frozen=True)
class Partition:
    """Sever a link completely for a time window."""

    node_a: str
    node_b: str
    start_s: float
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError("partition must have positive duration")


@dataclass(frozen=True)
class Crash:
    """Take a node down at ``at_s``; optionally reboot it later."""

    node_id: str
    at_s: float
    reboot_s: float | None = None

    def __post_init__(self) -> None:
        if self.reboot_s is not None and self.reboot_s <= self.at_s:
            raise ValueError("reboot_s must be after at_s")


@dataclass(frozen=True)
class BatteryFault:
    """Drain a fraction of a node's residual battery at ``at_s``.

    ``fraction=1.0`` is premature exhaustion: the node keeps running
    its CPU-free logic but can no longer process or transmit.
    """

    node_id: str
    at_s: float
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded chaos schedule."""

    seed: int = 0
    link_faults: tuple[LinkFault, ...] = ()
    partitions: tuple[Partition, ...] = ()
    crashes: tuple[Crash, ...] = ()
    battery_faults: tuple[BatteryFault, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (
            self.link_faults
            or self.partitions
            or self.crashes
            or self.battery_faults
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def uniform_loss(cls, loss_rate: float, seed: int = 0) -> "FaultPlan":
        """Every link drops packets independently at ``loss_rate``."""
        if loss_rate <= 0.0:
            return cls(seed=seed)
        return cls(seed=seed, link_faults=(LinkFault(loss_rate=loss_rate),))

    def with_crashes(self, *crashes: Crash) -> "FaultPlan":
        return FaultPlan(
            seed=self.seed,
            link_faults=self.link_faults,
            partitions=self.partitions,
            crashes=self.crashes + tuple(crashes),
            battery_faults=self.battery_faults,
        )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        def scrub(items):
            out = []
            for item in items:
                d = asdict(item)
                for key, value in list(d.items()):
                    if value == math.inf:
                        d[key] = None
                out.append(d)
            return out

        return {
            "seed": self.seed,
            "link_faults": scrub(self.link_faults),
            "partitions": scrub(self.partitions),
            "crashes": [asdict(c) for c in self.crashes],
            "battery_faults": [asdict(b) for b in self.battery_faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        def revive(klass, items, inf_keys=()):
            out = []
            for d in items or ():
                d = dict(d)
                for key in inf_keys:
                    if d.get(key) is None:
                        d.pop(key, None)
                out.append(klass(**d))
            return tuple(out)

        return cls(
            seed=int(data.get("seed", 0)),
            link_faults=revive(LinkFault, data.get("link_faults"), ("end_s",)),
            partitions=revive(Partition, data.get("partitions"), ("end_s",)),
            crashes=revive(Crash, data.get("crashes")),
            battery_faults=revive(BatteryFault, data.get("battery_faults")),
        )

    def save(self, path: str | Path) -> None:
        atomic_write_json(Path(path), self.to_dict(), indent=2)

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

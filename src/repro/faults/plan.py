"""Declarative, seeded fault schedules.

A :class:`FaultPlan` is a pure description — *which* links lose
packets, *when* nodes crash or batteries die — with no behaviour of
its own; the :class:`~repro.faults.injector.FaultInjector` compiles it
onto an :class:`~repro.network.simulator.EventSimulator`.  Plans are
frozen, JSON round-trippable (the CLI's ``--fault-plan`` flag loads
one from disk) and carry their own seed, so a chaos run is fully
reproducible from the plan file alone.

The wildcard node id ``"*"`` in a :class:`LinkFault` matches any
endpoint, which is how a uniform loss rate across every link is
written.
"""

from __future__ import annotations

import json
import math
from dataclasses import MISSING, asdict, dataclass, replace
from dataclasses import fields as dataclass_fields
from pathlib import Path

from repro.ioutils import atomic_write_json

#: Matches any node id in a LinkFault endpoint.
WILDCARD = "*"


def _window_active(start_s: float, end_s: float, time_s: float) -> bool:
    return start_s <= time_s < end_s


def _pair_matches(
    node_a: str, node_b: str, sender: str, recipient: str
) -> bool:
    pair = {node_a, node_b}
    if WILDCARD in pair:
        named = pair - {WILDCARD}
        return not named or bool(named & {sender, recipient})
    return pair == {sender, recipient}


@dataclass(frozen=True)
class LinkFault:
    """Degrade a link: random loss and/or a latency spike.

    Active on transmissions whose (sender, recipient) pair matches
    ``node_a``/``node_b`` in either direction and whose send time lies
    in ``[start_s, end_s)``.
    """

    node_a: str = WILDCARD
    node_b: str = WILDCARD
    loss_rate: float = 0.0
    extra_latency_s: float = 0.0
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        if self.extra_latency_s < 0:
            raise ValueError("extra_latency_s cannot be negative")
        if self.end_s < self.start_s:
            raise ValueError("end_s must be >= start_s")

    def matches(self, sender: str, recipient: str, time_s: float) -> bool:
        if not self.start_s <= time_s < self.end_s:
            return False
        pair = {self.node_a, self.node_b}
        if WILDCARD in pair:
            named = pair - {WILDCARD}
            return not named or bool(named & {sender, recipient})
        return pair == {sender, recipient}


@dataclass(frozen=True)
class Partition:
    """Sever a link completely for a time window."""

    node_a: str
    node_b: str
    start_s: float
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError("partition must have positive duration")


@dataclass(frozen=True)
class Crash:
    """Take a node down at ``at_s``; optionally reboot it later."""

    node_id: str
    at_s: float
    reboot_s: float | None = None

    def __post_init__(self) -> None:
        if self.reboot_s is not None and self.reboot_s <= self.at_s:
            raise ValueError("reboot_s must be after at_s")


@dataclass(frozen=True)
class BatteryFault:
    """Drain a fraction of a node's residual battery at ``at_s``.

    ``fraction=1.0`` is premature exhaustion: the node keeps running
    its CPU-free logic but can no longer process or transmit.
    """

    node_id: str
    at_s: float
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")


@dataclass(frozen=True)
class SensorFault:
    """Degrade a camera's *data plane* for a time window.

    Unlike a :class:`Crash` the node stays up, keeps heartbeating and
    keeps paying processing energy — it just produces bad detections:

    * ``noise`` — each true detection is independently suppressed with
      this probability (a corrupted frame misses real objects);
    * ``false_positive_rate`` — expected count of fabricated
      high-confidence junk detections injected per processed frame;
    * ``stuck`` — the sensor freezes on its last healthy frame and
      replays that frame's detections every tick.
    """

    node_id: str
    start_s: float = 0.0
    end_s: float = math.inf
    noise: float = 0.0
    false_positive_rate: float = 0.0
    stuck: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.noise <= 1.0:
            raise ValueError("noise must be in [0, 1]")
        if self.false_positive_rate < 0:
            raise ValueError("false_positive_rate cannot be negative")
        if self.end_s <= self.start_s:
            raise ValueError("sensor fault must have positive duration")
        if not (self.noise or self.false_positive_rate or self.stuck):
            raise ValueError(
                "sensor fault has no effect: set noise, "
                "false_positive_rate and/or stuck"
            )

    def active(self, node_id: str, time_s: float) -> bool:
        return self.node_id == node_id and _window_active(
            self.start_s, self.end_s, time_s
        )


@dataclass(frozen=True)
class CalibrationDrift:
    """Gradual score/extrinsics skew accruing over a time window.

    ``score_drift_per_s`` shifts every detection score by
    ``rate * (t - start_s)`` Joule-free; negative rates sink real
    detections below their threshold (missed objects), positive rates
    inflate the camera's apparent confidence.  ``position_drift_per_s``
    skews the reported bounding boxes horizontally (pixels per second),
    modelling extrinsics creep that breaks cross-camera grouping.
    """

    node_id: str
    start_s: float = 0.0
    end_s: float = math.inf
    score_drift_per_s: float = 0.0
    position_drift_per_s: float = 0.0

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError("drift must have positive duration")
        if not (self.score_drift_per_s or self.position_drift_per_s):
            raise ValueError(
                "drift has no effect: set score_drift_per_s and/or "
                "position_drift_per_s"
            )

    def active(self, node_id: str, time_s: float) -> bool:
        return self.node_id == node_id and _window_active(
            self.start_s, self.end_s, time_s
        )

    def score_offset(self, time_s: float) -> float:
        return self.score_drift_per_s * (time_s - self.start_s)

    def position_offset(self, time_s: float) -> float:
        return self.position_drift_per_s * (time_s - self.start_s)


@dataclass(frozen=True)
class ClockSkew:
    """A node's local clock runs at the wrong rate for a window.

    ``skew`` is the fractional rate error: ``0.5`` stretches every
    locally scheduled interval (heartbeats, operational ticks) by
    1.5x, so the node beacons late and falls behind the frame stream.
    """

    node_id: str
    skew: float
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if self.skew <= -0.9:
            raise ValueError("skew must be > -0.9 (clock cannot stop)")
        if self.skew == 0.0:
            raise ValueError("skew of 0 has no effect")
        if self.end_s <= self.start_s:
            raise ValueError("clock skew must have positive duration")

    def active(self, node_id: str, time_s: float) -> bool:
        return self.node_id == node_id and _window_active(
            self.start_s, self.end_s, time_s
        )


@dataclass(frozen=True)
class MessageCorruption:
    """Garble a fraction of matching transmissions in a window.

    A corrupted message still consumes radio energy and arrives, but
    its payload fails the receiver's integrity check: the receiver
    discards it without acking, so reliable senders retransmit exactly
    as they would after a loss — the difference is that the *receiver*
    observes the corruption, which is what health scoring feeds on.
    """

    node_a: str = WILDCARD
    node_b: str = WILDCARD
    rate: float = 0.0
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        if self.end_s <= self.start_s:
            raise ValueError("corruption must have positive duration")

    def matches(self, sender: str, recipient: str, time_s: float) -> bool:
        if not _window_active(self.start_s, self.end_s, time_s):
            return False
        return _pair_matches(self.node_a, self.node_b, sender, recipient)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded chaos schedule."""

    seed: int = 0
    link_faults: tuple[LinkFault, ...] = ()
    partitions: tuple[Partition, ...] = ()
    crashes: tuple[Crash, ...] = ()
    battery_faults: tuple[BatteryFault, ...] = ()
    sensor_faults: tuple[SensorFault, ...] = ()
    calibration_drifts: tuple[CalibrationDrift, ...] = ()
    clock_skews: tuple[ClockSkew, ...] = ()
    message_corruptions: tuple[MessageCorruption, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (
            self.link_faults
            or self.partitions
            or self.crashes
            or self.battery_faults
            or self.sensor_faults
            or self.calibration_drifts
            or self.clock_skews
            or self.message_corruptions
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def uniform_loss(cls, loss_rate: float, seed: int = 0) -> "FaultPlan":
        """Every link drops packets independently at ``loss_rate``."""
        if loss_rate <= 0.0:
            return cls(seed=seed)
        return cls(seed=seed, link_faults=(LinkFault(loss_rate=loss_rate),))

    def with_crashes(self, *crashes: Crash) -> "FaultPlan":
        return replace(self, crashes=self.crashes + tuple(crashes))

    def with_data_faults(
        self,
        *faults: "SensorFault | CalibrationDrift | ClockSkew | MessageCorruption",
    ) -> "FaultPlan":
        """A copy with data-plane faults appended, dispatched by type."""
        buckets: dict[str, list] = {
            "sensor_faults": [],
            "calibration_drifts": [],
            "clock_skews": [],
            "message_corruptions": [],
        }
        by_type = {
            SensorFault: "sensor_faults",
            CalibrationDrift: "calibration_drifts",
            ClockSkew: "clock_skews",
            MessageCorruption: "message_corruptions",
        }
        for fault in faults:
            key = by_type.get(type(fault))
            if key is None:
                raise TypeError(
                    f"with_data_faults accepts "
                    f"{sorted(t.__name__ for t in by_type)}, "
                    f"got {type(fault).__name__}"
                )
            buckets[key].append(fault)
        return replace(
            self,
            **{
                key: getattr(self, key) + tuple(extra)
                for key, extra in buckets.items()
                if extra
            },
        )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        def scrub(items):
            out = []
            for item in items:
                d = asdict(item)
                for key, value in list(d.items()):
                    if value == math.inf:
                        d[key] = None
                out.append(d)
            return out

        return {"seed": self.seed} | {
            key: scrub(getattr(self, key)) for key in _FAULT_KINDS
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Revive a plan, rejecting anything it does not understand.

        A fault plan is an executable promise — silently dropping an
        unknown fault kind or a misspelled field would run a *different*
        chaos schedule than the one on disk.  Malformed input raises
        :class:`ValueError` naming the offending kind/field, which is
        also what a plan written by a future schema version hits.
        """
        if not isinstance(data, dict):
            raise ValueError(
                "fault plan must be a JSON object, got "
                f"{type(data).__name__}"
            )
        unknown = sorted(set(data) - set(_FAULT_KINDS) - {"seed"})
        if unknown:
            raise ValueError(
                f"unknown fault plan field(s) {unknown}; known kinds: "
                f"{sorted(_FAULT_KINDS)} (plus 'seed')"
            )
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError(
                f"fault plan field 'seed' must be an integer, got "
                f"{seed!r}"
            )

        def revive(kind: str) -> tuple:
            klass, inf_keys = _FAULT_KINDS[kind]
            items = data.get(kind)
            if items is None:
                return ()
            if not isinstance(items, list):
                raise ValueError(
                    f"fault plan field {kind!r} must be a list, got "
                    f"{type(items).__name__}"
                )
            known = {f.name for f in dataclass_fields(klass)}
            required = {
                f.name
                for f in dataclass_fields(klass)
                if f.default is MISSING and f.default_factory is MISSING
            }
            out = []
            for index, item in enumerate(items):
                where = f"{kind}[{index}]"
                if not isinstance(item, dict):
                    raise ValueError(
                        f"{where} must be an object, got "
                        f"{type(item).__name__}"
                    )
                item = dict(item)
                for key in inf_keys:
                    if item.get(key) is None:
                        item.pop(key, None)
                extra = sorted(set(item) - known)
                if extra:
                    raise ValueError(
                        f"{where}: unexpected field(s) {extra} for "
                        f"{klass.__name__}; known fields: {sorted(known)}"
                    )
                missing = sorted(required - set(item))
                if missing:
                    raise ValueError(
                        f"{where}: missing required field(s) {missing} "
                        f"for {klass.__name__}"
                    )
                try:
                    out.append(klass(**item))
                except (TypeError, ValueError) as exc:
                    raise ValueError(f"{where}: {exc}") from exc
            return tuple(out)

        return cls(
            seed=seed, **{kind: revive(kind) for kind in _FAULT_KINDS}
        )

    def save(self, path: str | Path) -> None:
        atomic_write_json(Path(path), self.to_dict(), indent=2)

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Load and validate a plan file; malformed input (truncated
        JSON, unknown kinds, bad fields) raises :class:`ValueError`."""
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"fault plan {path} is not valid JSON "
                f"(truncated or corrupt?): {exc}"
            ) from exc
        return cls.from_dict(data)


#: plan field -> (fault dataclass, keys where JSON null means +inf).
_FAULT_KINDS: dict[str, tuple[type, tuple[str, ...]]] = {
    "link_faults": (LinkFault, ("end_s",)),
    "partitions": (Partition, ("end_s",)),
    "crashes": (Crash, ()),
    "battery_faults": (BatteryFault, ()),
    "sensor_faults": (SensorFault, ("end_s",)),
    "calibration_drifts": (CalibrationDrift, ("end_s",)),
    "clock_skews": (ClockSkew, ("end_s",)),
    "message_corruptions": (MessageCorruption, ("end_s",)),
}

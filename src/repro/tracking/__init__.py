"""Ground-plane multi-object tracking.

Section VII of the paper argues that objects missed in some frames
"are likely to be detected at other frames (e.g., when the objects
move to different locations)".  This package makes that concrete: a
constant-velocity Kalman filter per object on the ground plane, greedy
gated association of fused detections to tracks, and track lifecycle
management.  Tracks bridge detection gaps, so a deployment's *track
level* recall exceeds its frame-level recall — quantified in the
tracking example and benchmark.
"""

from repro.tracking.kalman import KalmanFilter2D
from repro.tracking.tracker import GroundPlaneTracker, Track

__all__ = ["KalmanFilter2D", "GroundPlaneTracker", "Track"]

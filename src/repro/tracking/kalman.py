"""A constant-velocity Kalman filter on the ground plane.

State is ``[x, y, vx, vy]``; measurements are ground-plane positions
``[x, y]`` produced by the cross-camera matcher.  Standard predict /
update equations with configurable process and measurement noise.
"""

from __future__ import annotations

import numpy as np


class KalmanFilter2D:
    """Constant-velocity tracker for one object."""

    def __init__(
        self,
        initial_position: np.ndarray,
        dt: float = 1.0,
        process_noise: float = 0.05,
        measurement_noise: float = 0.15,
        initial_velocity_std: float = 1.0,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = dt
        position = np.asarray(initial_position, dtype=float).ravel()
        if position.shape != (2,):
            raise ValueError("initial_position must be length-2")
        self.state = np.array([position[0], position[1], 0.0, 0.0])
        self.covariance = np.diag([
            measurement_noise**2,
            measurement_noise**2,
            initial_velocity_std**2,
            initial_velocity_std**2,
        ])
        self._F = np.array([
            [1, 0, dt, 0],
            [0, 1, 0, dt],
            [0, 0, 1, 0],
            [0, 0, 0, 1],
        ], dtype=float)
        self._H = np.array([
            [1, 0, 0, 0],
            [0, 1, 0, 0],
        ], dtype=float)
        # Discrete white-noise acceleration model.
        q = process_noise**2
        dt2, dt3, dt4 = dt**2, dt**3, dt**4
        self._Q = q * np.array([
            [dt4 / 4, 0, dt3 / 2, 0],
            [0, dt4 / 4, 0, dt3 / 2],
            [dt3 / 2, 0, dt2, 0],
            [0, dt3 / 2, 0, dt2],
        ])
        self._R = measurement_noise**2 * np.eye(2)

    @property
    def position(self) -> np.ndarray:
        return np.array(self.state[:2])

    @property
    def velocity(self) -> np.ndarray:
        return np.array(self.state[2:])

    def predict(self) -> np.ndarray:
        """Advance one time step; returns the predicted position."""
        self.state = self._F @ self.state
        self.covariance = self._F @ self.covariance @ self._F.T + self._Q
        return self.position

    def update(self, measurement: np.ndarray) -> None:
        """Fuse one position measurement."""
        z = np.asarray(measurement, dtype=float).ravel()
        if z.shape != (2,):
            raise ValueError("measurement must be length-2")
        innovation = z - self._H @ self.state
        s = self._H @ self.covariance @ self._H.T + self._R
        gain = self.covariance @ self._H.T @ np.linalg.inv(s)
        self.state = self.state + gain @ innovation
        identity = np.eye(4)
        self.covariance = (identity - gain @ self._H) @ self.covariance

    def position_uncertainty(self) -> float:
        """Root-mean of the positional covariance diagonal (metres)."""
        return float(np.sqrt(np.trace(self.covariance[:2, :2]) / 2.0))

    def gating_distance(self, measurement: np.ndarray) -> float:
        """Mahalanobis distance of a measurement to the prediction."""
        z = np.asarray(measurement, dtype=float).ravel()
        innovation = z - self._H @ self.state
        s = self._H @ self.covariance @ self._H.T + self._R
        value = float(innovation @ np.linalg.inv(s) @ innovation)
        return float(np.sqrt(max(0.0, value)))

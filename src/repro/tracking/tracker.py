"""Multi-object tracking over fused detections.

Each confirmed track holds one Kalman filter on the ground plane.  Per
frame the tracker predicts all tracks, greedily associates the frame's
re-identified object groups (nearest gating distance first), updates
matched tracks, spawns tentative tracks for unmatched groups, and
retires tracks that miss too many consecutive frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.reid.fusion import ObjectGroup
from repro.tracking.kalman import KalmanFilter2D


@dataclass
class Track:
    """One tracked object.

    Attributes:
        track_id: Stable identifier assigned at spawn.
        filter: The ground-plane Kalman filter.
        hits: Number of frames with an associated detection.
        misses: Consecutive frames without one.
        confirmed: Whether the track has enough hits to count.
        truth_ids: Ground-truth ids of associated groups (evaluation
            only).
    """

    track_id: int
    filter: KalmanFilter2D
    hits: int = 1
    misses: int = 0
    confirmed: bool = False
    truth_ids: list[int] = field(default_factory=list)

    @property
    def position(self) -> np.ndarray:
        return self.filter.position

    @property
    def majority_truth_id(self) -> int | None:
        """Most frequent associated ground-truth id (evaluation only)."""
        if not self.truth_ids:
            return None
        values, counts = np.unique(self.truth_ids, return_counts=True)
        return int(values[np.argmax(counts)])


class GroundPlaneTracker:
    """Tracks re-identified objects across frames."""

    def __init__(
        self,
        dt: float = 1.0,
        gate: float = 3.5,
        confirm_hits: int = 2,
        max_misses: int = 3,
        process_noise: float = 0.08,
        measurement_noise: float = 0.2,
    ) -> None:
        if confirm_hits < 1:
            raise ValueError("confirm_hits must be >= 1")
        if max_misses < 0:
            raise ValueError("max_misses cannot be negative")
        self.dt = dt
        self.gate = gate
        self.confirm_hits = confirm_hits
        self.max_misses = max_misses
        self.process_noise = process_noise
        self.measurement_noise = measurement_noise
        self.tracks: list[Track] = []
        self.retired: list[Track] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def _spawn(self, position: np.ndarray, truth_id: int | None) -> Track:
        track = Track(
            track_id=self._next_id,
            filter=KalmanFilter2D(
                position,
                dt=self.dt,
                process_noise=self.process_noise,
                measurement_noise=self.measurement_noise,
            ),
        )
        if truth_id is not None:
            track.truth_ids.append(truth_id)
        if self.confirm_hits <= 1:
            track.confirmed = True
        self._next_id += 1
        self.tracks.append(track)
        return track

    def step(self, groups: list[ObjectGroup]) -> list[Track]:
        """Advance one frame with that frame's fused object groups.

        Returns the currently confirmed tracks.
        """
        for track in self.tracks:
            track.filter.predict()

        measurements = []
        for group in groups:
            if group.ground_point is None:
                continue
            measurements.append(
                (np.array(group.ground_point), group.majority_truth_id)
            )

        # Greedy gated assignment: smallest gating distance first.
        candidates = []
        for t_idx, track in enumerate(self.tracks):
            for m_idx, (position, _) in enumerate(measurements):
                distance = track.filter.gating_distance(position)
                if distance <= self.gate:
                    candidates.append((distance, t_idx, m_idx))
        candidates.sort()
        assigned_tracks: set[int] = set()
        assigned_measurements: set[int] = set()
        for distance, t_idx, m_idx in candidates:
            if t_idx in assigned_tracks or m_idx in assigned_measurements:
                continue
            assigned_tracks.add(t_idx)
            assigned_measurements.add(m_idx)
            track = self.tracks[t_idx]
            position, truth_id = measurements[m_idx]
            track.filter.update(position)
            track.hits += 1
            track.misses = 0
            if truth_id is not None:
                track.truth_ids.append(truth_id)
            if track.hits >= self.confirm_hits:
                track.confirmed = True

        # Unmatched tracks accumulate misses; retire the stale ones.
        survivors = []
        for t_idx, track in enumerate(self.tracks):
            if t_idx not in assigned_tracks:
                track.misses += 1
            if track.misses > self.max_misses:
                self.retired.append(track)
            else:
                survivors.append(track)
        self.tracks = survivors

        # Unmatched measurements spawn tentative tracks.
        for m_idx, (position, truth_id) in enumerate(measurements):
            if m_idx not in assigned_measurements:
                self._spawn(position, truth_id)

        return self.confirmed_tracks

    @property
    def confirmed_tracks(self) -> list[Track]:
        return [t for t in self.tracks if t.confirmed]

    @property
    def all_tracks_ever(self) -> list[Track]:
        return self.tracks + self.retired

    def tracked_truth_ids(self) -> set[int]:
        """Ground-truth ids covered by confirmed tracks (evaluation)."""
        ids = set()
        for track in self.confirmed_tracks:
            majority = track.majority_truth_id
            if majority is not None:
                ids.add(majority)
        return ids

"""Threshold alert rules over the live metrics registry.

A rule is one comparison over a counter or gauge, written the way an
operator would say it::

    battery_fraction_remaining < 0.25
    network_retransmissions_total > 100
    fault_events_total{kind=breaker_open} > 3

The optional ``{label=value, ...}`` selector restricts which series
the rule watches; without one, every series of the metric is checked
independently.  Rules are evaluated at each telemetry flush (a round
boundary), and transitions — not states — become ``repro.event.v1``
records: ``alert`` when a series first violates its rule,
``alert_cleared`` when it stops.  That keeps the event stream quiet
under a persistent condition while still surfacing every incident in
the same place the resilience layer reports breaker trips and
quarantines.

Histograms are deliberately outside the expression language: a
threshold over a distribution needs a quantile estimator, and the
fixed-bucket series here would make that silently approximate.
Rules naming a histogram raise at their first evaluation instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.telemetry.metrics import Histogram, MetricsRegistry

_RULE_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"\s*(?:\{(?P<labels>[^}]*)\})?"
    r"\s*(?P<op><=|>=|<|>)"
    r"\s*(?P<threshold>[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*$"
)

_OPS = {
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
}


class AlertRuleError(ValueError):
    """An alert expression does not parse or names a histogram."""


@dataclass(frozen=True)
class AlertRule:
    """One parsed threshold expression."""

    metric: str
    op: str
    threshold: float
    labels: tuple[tuple[str, str], ...] = ()
    expression: str = ""

    @classmethod
    def parse(cls, expression: str) -> "AlertRule":
        match = _RULE_RE.match(expression)
        if match is None:
            raise AlertRuleError(
                f"cannot parse alert rule {expression!r}; expected "
                "'metric_name[{label=value,...}] <op> threshold' with "
                "op one of < <= > >="
            )
        labels: list[tuple[str, str]] = []
        selector = match.group("labels")
        if selector:
            for pair in selector.split(","):
                if "=" not in pair:
                    raise AlertRuleError(
                        f"bad label selector {pair!r} in {expression!r}"
                    )
                key, value = pair.split("=", 1)
                labels.append((key.strip(), value.strip().strip('"')))
        return cls(
            metric=match.group("name"),
            op=match.group("op"),
            threshold=float(match.group("threshold")),
            labels=tuple(sorted(labels)),
            expression=expression.strip(),
        )

    def matches(self, series_labels: dict[str, str]) -> bool:
        return all(
            series_labels.get(key) == value for key, value in self.labels
        )

    def violated(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


@dataclass
class AlertState:
    """Firing/cleared bookkeeping for one (rule, series) pair."""

    rule: AlertRule
    series_labels: dict[str, str]
    value: float
    firing: bool = True

    def to_detail(self) -> dict:
        return {
            "rule": self.rule.expression,
            "metric": self.rule.metric,
            "labels": dict(self.series_labels),
            "value": self.value,
            "threshold": self.rule.threshold,
            "op": self.rule.op,
        }


@dataclass
class AlertEngine:
    """Evaluates a rule set against a registry, tracking transitions."""

    rules: list[AlertRule] = field(default_factory=list)
    _firing: dict[tuple[str, tuple[str, ...]], AlertState] = field(
        default_factory=dict
    )

    def add(self, rule: "AlertRule | str") -> AlertRule:
        if isinstance(rule, str):
            rule = AlertRule.parse(rule)
        self.rules.append(rule)
        return rule

    def _series_of(self, registry: MetricsRegistry, rule: AlertRule):
        instrument = registry.get(rule.metric)
        if instrument is None:
            return
        if isinstance(instrument, Histogram):
            raise AlertRuleError(
                f"alert rule {rule.expression!r} targets histogram "
                f"{rule.metric!r}; rules only cover counters and gauges"
            )
        for key, value in instrument._values.items():
            labels = dict(zip(instrument.label_names, key))
            if rule.matches(labels):
                yield key, labels, value

    def evaluate(
        self, registry: MetricsRegistry
    ) -> tuple[list[AlertState], list[AlertState]]:
        """One evaluation pass.

        Returns ``(fired, cleared)``: states that newly violated their
        rule this pass, and previously firing states that no longer do
        (including series that disappeared from the registry).
        """
        fired: list[AlertState] = []
        cleared: list[AlertState] = []
        seen: set[tuple[str, tuple[str, ...]]] = set()
        for rule in self.rules:
            for key, labels, value in self._series_of(registry, rule):
                state_key = (rule.expression, key)
                seen.add(state_key)
                if rule.violated(value):
                    if state_key not in self._firing:
                        state = AlertState(rule, labels, value)
                        self._firing[state_key] = state
                        fired.append(state)
                    else:
                        self._firing[state_key].value = value
                elif state_key in self._firing:
                    state = self._firing.pop(state_key)
                    state.value = value
                    state.firing = False
                    cleared.append(state)
        for state_key in [
            k for k in self._firing if k not in seen
        ]:
            state = self._firing.pop(state_key)
            state.firing = False
            cleared.append(state)
        return fired, cleared

    @property
    def active(self) -> list[AlertState]:
        """Currently firing states, in a stable order."""
        return [self._firing[key] for key in sorted(self._firing)]

    # ------------------------------------------------------------------
    # Checkpoint interop
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able firing state (rules travel in the run config)."""
        return {
            "firing": [
                {
                    "rule": state.rule.expression,
                    "key": list(key[1]),
                    "labels": dict(state.series_labels),
                    "value": state.value,
                }
                for key, state in sorted(self._firing.items())
            ]
        }

    def restore(self, data: dict) -> None:
        """Adopt a :meth:`snapshot`, so a resumed run does not re-fire
        alerts that were already active when the checkpoint was cut."""
        by_expression = {rule.expression: rule for rule in self.rules}
        self._firing = {}
        for entry in data.get("firing", ()):
            rule = by_expression.get(entry["rule"])
            if rule is None:
                continue  # the resumed run dropped this rule
            key = (rule.expression, tuple(entry["key"]))
            self._firing[key] = AlertState(
                rule, dict(entry["labels"]), float(entry["value"])
            )

"""The structured event log: one stream for everything that happened.

:class:`TelemetryEvent` generalises what ``repro.faults.events``
started: faults and recoveries, controller decisions (rank / select /
downgrade with the chosen algorithms), reliability give-ups and
battery threshold crossings all become uniform records carrying the
run id, the *simulated* time, and the node involved — so one
time-sorted stream reconstructs a run end to end.

Fault-log interop: :func:`fault_log_sink` adapts an
:class:`~repro.faults.events.FaultLog` (which accepts an optional
``sink`` callback) so every fault/recovery it records is mirrored
here without the fault subsystem importing telemetry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.ioutils import atomic_write_text


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured occurrence in a run.

    Attributes:
        time_s: Simulated time (frame cadence or event-simulator
            clock, depending on the producing layer).
        kind: Machine-readable category, e.g.
            ``"controller_decision"``, ``"battery_threshold"``,
            ``"node_crash"``, ``"delivery_gave_up"``.
        node_id: The node concerned (empty for network-wide events).
        run_id: Identifier of the producing run.
        detail: Free-form JSON-able context.
    """

    time_s: float
    kind: str
    node_id: str = ""
    run_id: str = ""
    detail: dict = field(default_factory=dict)

    def to_record(self) -> dict:
        return {
            "schema": "repro.event.v1",
            "run_id": self.run_id,
            "time_s": self.time_s,
            "kind": self.kind,
            "node_id": self.node_id,
            "detail": dict(self.detail),
        }


class EventLog:
    """Append-only sink for :class:`TelemetryEvent` records."""

    def __init__(self, run_id: str = "") -> None:
        self.run_id = run_id
        self.events: list[TelemetryEvent] = []

    def emit(
        self,
        kind: str,
        time_s: float = 0.0,
        node_id: str = "",
        **detail: object,
    ) -> TelemetryEvent:
        event = TelemetryEvent(
            time_s=time_s,
            kind=kind,
            node_id=node_id,
            run_id=self.run_id,
            detail=dict(detail),
        )
        self.events.append(event)
        return event

    def kinds(self) -> list[str]:
        """Distinct kinds in first-occurrence order."""
        seen: list[str] = []
        for event in self.events:
            if event.kind not in seen:
                seen.append(event.kind)
        return seen

    def by_kind(self, kind: str) -> list[TelemetryEvent]:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def iter_records(self) -> Iterator[dict]:
        for event in self.events:
            yield event.to_record()

    def write_jsonl(self, path: str | Path) -> int:
        records = list(self.iter_records())
        atomic_write_text(
            path,
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records),
        )
        return len(records)


def fault_log_sink(log: EventLog) -> Callable[[object], None]:
    """A ``FaultLog(sink=...)`` callback mirroring into ``log``.

    Works on anything shaped like
    :class:`~repro.faults.events.FaultEvent` /
    :class:`~repro.faults.events.RecoveryEvent` (``time_s``, ``kind``,
    ``subject``, ``detail`` attributes).
    """

    def sink(event: object) -> None:
        log.emit(
            kind=getattr(event, "kind", "fault"),
            time_s=float(getattr(event, "time_s", 0.0)),
            node_id=str(getattr(event, "subject", "")),
            note=str(getattr(event, "detail", "")),
        )

    return sink

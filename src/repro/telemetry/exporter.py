"""Live Prometheus text exporter over stdlib ``http.server``.

``--metrics-port`` starts one of these beside a run: a daemon-thread
:class:`~http.server.ThreadingHTTPServer` serving

* ``/metrics`` — the registry's Prometheus text exposition, scraped
  straight from the live instruments (no dump file in between), and
* ``/status`` — a JSON run-status page (``repro.status.v1``): run id,
  rounds completed, simulated time, active alerts, series/event
  counts — what a fleet dashboard polls between scrapes.

The exporter only ever *reads* telemetry state and holds the owning
:class:`~repro.telemetry.core.Telemetry`'s flush lock while
rendering, so a scrape races neither a flush nor itself.  Hot-loop
increments deliberately skip that lock (they must stay cheap), so a
render can observe a dict resized mid-iteration; the handler retries
the render a few times rather than taxing every sample with a lock.

Port 0 asks the OS for a free port; :attr:`MetricsExporter.port`
reports the bound one (how the tests and the obs-smoke CI job find
it).
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.core import Telemetry

logger = logging.getLogger(__name__)

STATUS_SCHEMA = "repro.status.v1"

#: Prometheus text exposition content type.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_RENDER_RETRIES = 5


class _Handler(BaseHTTPRequestHandler):
    exporter: "MetricsExporter"  # assigned by the server factory

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("exporter: " + format, *args)

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = self.exporter.render_metrics().encode("utf-8")
                self._respond(200, METRICS_CONTENT_TYPE, body)
            elif path == "/status":
                body = (
                    json.dumps(
                        self.exporter.status(), indent=1, sort_keys=True
                    )
                    + "\n"
                ).encode("utf-8")
                self._respond(200, "application/json", body)
            else:
                self._respond(
                    404, "text/plain; charset=utf-8",
                    b"repro exporter: try /metrics or /status\n",
                )
        except BrokenPipeError:  # pragma: no cover - client went away
            pass


class MetricsExporter:
    """Serves a :class:`Telemetry`'s live state over HTTP."""

    def __init__(
        self,
        telemetry: "Telemetry",
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.telemetry = telemetry
        handler = type("_BoundHandler", (_Handler,), {"exporter": self})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    def start(self) -> "MetricsExporter":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-exporter",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket.  Idempotent: the CLI's
        ``finally`` teardown and an error path may both close the same
        exporter, and ``server_close`` on an already-closed socket is
        not guaranteed harmless across platforms."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._server.server_close()

    # ------------------------------------------------------------------
    # Rendering (called from handler threads)
    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        last_error: RuntimeError | None = None
        for _ in range(_RENDER_RETRIES):
            try:
                with self.telemetry.lock:
                    return self.telemetry.registry.render_text()
            except RuntimeError as exc:
                # An unlocked hot-loop increment resized a series dict
                # mid-iteration; the next pass sees a consistent view.
                last_error = exc
        raise last_error  # pragma: no cover - needs a pathological race

    def status(self) -> dict:
        with self.telemetry.lock:
            return self.telemetry.status_snapshot()

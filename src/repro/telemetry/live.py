"""Streaming telemetry: per-round flush records and pluggable sinks.

PR 3's metrics/trace/event layer is snapshot-at-exit: a long fleet run
is a black box until it finishes.  This module makes the same
registry/event state consumable *during* a run: at every round
boundary the engine calls :meth:`~repro.telemetry.core.Telemetry.flush_round`,
which folds the live state into one ``repro.stream.v1`` record — the
cumulative metrics snapshot, the events emitted since the previous
flush, and any alert transitions — and hands it to every attached
:class:`TelemetrySink`.

Two sinks cover the deployment shapes the roadmap needs:

* :class:`JsonlStreamSink` appends one record per flush to a JSONL
  file.  Each append is a single ``os.write`` of one complete line on
  an ``O_APPEND`` descriptor — all-or-nothing with respect to process
  death, so a SIGTERM/SIGKILL mid-run never tears a line.  ``fsync``
  lands at rotation boundaries and on close (per-record fsync would
  dominate the flush budget); only an OS crash or power loss can tear
  the final line, and :meth:`JsonlStreamSink.on_resume` repairs
  exactly that case.  Rotation goes through ``os.replace`` (the same
  atomic primitive as :func:`repro.ioutils.atomic_write_text`), so a
  crash during rotation leaves either the old layout or the new one,
  never a torn file.
* :class:`SubscriberSink` delivers records to an in-process callback
  — the hook the planned ``serve`` daemon and the RF wake-up policy
  (which must learn from streamed per-camera telemetry) consume.

Checkpoint/resume stitching: a resumed run replays no completed
round, but the killed process may have flushed rounds *past* the
checkpoint it resumes from (flushes land before the checkpoint
cadence decides to persist).  ``on_resume(first_round)`` drops every
record for rounds the resumed run will flush again, so the final file
is one coherent stream — monotone round indices, no duplicates, no
gaps — indistinguishable from an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Iterable

from repro.ioutils import atomic_write_text

STREAM_SCHEMA = "repro.stream.v1"


def build_stream_record(
    run_id: str,
    seq: int,
    round_index: int,
    time_s: float,
    metrics: dict,
    events: list[dict],
    alerts: list[dict],
) -> dict:
    """One ``repro.stream.v1`` record (see ``repro.telemetry.schema``)."""
    return {
        "schema": STREAM_SCHEMA,
        "run_id": run_id,
        "seq": seq,
        "round": round_index,
        "time_s": time_s,
        "metrics": metrics,
        "events": events,
        "alerts": alerts,
    }


class TelemetrySink:
    """Receives one record per flush; subclasses define delivery."""

    def emit(self, record: dict) -> None:
        raise NotImplementedError

    def on_resume(self, first_round: int) -> None:
        """A resumed run will re-flush rounds >= ``first_round``."""

    def close(self) -> None:
        """Release any resources; further emits are undefined."""


class SubscriberSink(TelemetrySink):
    """In-process delivery to a callback, with an optional ring buffer.

    ``keep_last`` bounds the retained records so a subscriber that
    only polls (the exporter's ``/status`` page, a test) can read the
    tail without the sink growing with the run.
    """

    def __init__(
        self,
        callback: Callable[[dict], None] | None = None,
        keep_last: int = 16,
    ) -> None:
        self.callback = callback
        self.keep_last = keep_last
        self.records: list[dict] = []
        self.emitted = 0

    def emit(self, record: dict) -> None:
        self.emitted += 1
        self.records.append(record)
        if len(self.records) > self.keep_last:
            del self.records[: len(self.records) - self.keep_last]
        if self.callback is not None:
            self.callback(record)

    @property
    def last(self) -> dict | None:
        return self.records[-1] if self.records else None


def _rotated_parts(path: Path) -> list[Path]:
    """Existing rotation parts of ``path``, newest first.

    Rotation follows the logrotate convention: ``<name>.1`` is the
    most recently rotated chunk, higher indices are older.
    """
    parts = []
    index = 1
    while True:
        part = path.with_name(f"{path.name}.{index}")
        if not part.exists():
            break
        parts.append(part)
        index += 1
    return parts


def _parse_lines(text: str, torn_ok: bool) -> list[dict]:
    """Parse JSONL content; a torn *final* line is dropped, anything
    else malformed raises."""
    records: list[dict] = []
    lines = text.split("\n")
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if torn_ok and i == len(lines) - 1:
                break  # torn trailing line from a mid-write kill
            raise
    return records


def read_stream_records(path: str | Path) -> list[dict]:
    """Every record of a (possibly rotated) stream, in emit order.

    Rotated parts come before the live file, oldest (highest index)
    first.  A torn trailing line — the only corruption the append
    discipline permits — is silently dropped.
    """
    path = Path(path)
    records: list[dict] = []
    for part in reversed(_rotated_parts(path)):
        # Only the newest bytes on disk can be torn; rotated parts
        # were complete files when they were renamed.
        records.extend(
            _parse_lines(part.read_text(encoding="utf-8"), torn_ok=False)
        )
    if path.exists():
        records.extend(
            _parse_lines(path.read_text(encoding="utf-8"), torn_ok=True)
        )
    return records


class JsonlStreamSink(TelemetrySink):
    """Append-only JSONL stream with atomic rotation and fsync.

    Attributes:
        path: The live stream file; rotation shifts it onto the
            ``<name>.1``, ``<name>.2``, ... chain (logrotate
            convention: ``.1`` newest) and starts a fresh file.
        rotate_bytes: Rotate before an append would push the live file
            past this size (``None`` = never rotate).
        resume: ``True`` keeps whatever stream is already at ``path``
            (a resumed run stitches onto it via :meth:`on_resume`);
            the default truncates stale content so a fresh run never
            appends onto a previous run's stream.
    """

    def __init__(
        self,
        path: str | Path,
        rotate_bytes: int | None = None,
        resume: bool = False,
    ) -> None:
        if rotate_bytes is not None and rotate_bytes < 1:
            raise ValueError(
                f"rotate_bytes must be >= 1, got {rotate_bytes}"
            )
        self.path = Path(path)
        self.rotate_bytes = rotate_bytes
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd: int | None = None
        if not resume:
            for part in _rotated_parts(self.path):
                part.unlink()
            self.path.unlink(missing_ok=True)
        self._size = self.path.stat().st_size if self.path.exists() else 0
        self._closed = False
        # Open eagerly: the descriptor exists for the sink's whole
        # lifetime, so an unwritable path fails at attach time (not at
        # the first round flush) and every construction must be paired
        # with close() — the leak the CLI error paths are tested for.
        self._open()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the descriptor."""
        return self._closed

    def _open(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def _close_fd(self) -> None:
        if self._fd is not None:
            os.fsync(self._fd)
            os.close(self._fd)
            self._fd = None

    def _rotate(self) -> None:
        """Shift the live file onto the rotation chain atomically."""
        self._close_fd()  # fsyncs: the rotated part is durable
        # Renames run newest-part-first so every intermediate state is
        # a valid chain; os.replace is atomic per step.
        parts = _rotated_parts(self.path)
        for part in reversed(parts):
            index = int(part.name.rsplit(".", 1)[1])
            os.replace(
                part, self.path.with_name(f"{self.path.name}.{index + 1}")
            )
        os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._size = 0

    def emit(self, record: dict) -> None:
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        if (
            self.rotate_bytes is not None
            and self._size > 0
            and self._size + len(data) > self.rotate_bytes
        ):
            self._rotate()
        fd = self._open()
        # One write of one complete line: atomic w.r.t. process death.
        # fsync waits for rotation/close — per-record it would cost
        # more than the whole flush budget — so only power loss can
        # tear the final line, which read_stream_records/on_resume
        # repair.
        os.write(fd, data)
        self._size += len(data)

    def on_resume(self, first_round: int) -> None:
        """Stitch the stream for a resume starting at ``first_round``.

        Keeps every record for rounds the resumed run will *not*
        flush again (``round < first_round``), drops the rest (the
        resumed run re-emits them), repairs any torn trailing line,
        and rewrites the kept records as one atomic file so the
        stitched stream has no rotation seam from the dead process.
        """
        self._close_fd()
        kept = [
            record
            for record in read_stream_records(self.path)
            if record.get("round", 0) < first_round
        ]
        for part in _rotated_parts(self.path):
            part.unlink()
        atomic_write_text(
            self.path,
            "".join(
                json.dumps(r, sort_keys=True) + "\n" for r in kept
            ),
        )
        self._size = self.path.stat().st_size

    def close(self) -> None:
        self._close_fd()
        self._closed = True


def stream_round_indices(records: Iterable[dict]) -> list[int]:
    """The ``round`` sequence of a stream, in file order."""
    return [int(record["round"]) for record in records]


def check_stream_contiguous(records: list[dict]) -> None:
    """Raise ``ValueError`` unless rounds are 0..N-1 with no gaps or
    duplicates — the stitched-stream invariant the tests and the
    obs-smoke CI job assert."""
    rounds = stream_round_indices(records)
    expected = list(range(len(rounds)))
    if rounds != expected:
        raise ValueError(
            f"stream rounds are not contiguous: got {rounds}"
        )
    seqs = [int(record["seq"]) for record in records]
    if seqs != sorted(seqs):
        raise ValueError(f"stream seq not monotone: {seqs}")

"""The :class:`Telemetry` facade and shared instrument helpers.

One ``Telemetry`` object bundles the three sinks a run needs — a
:class:`~repro.telemetry.metrics.MetricsRegistry`, a
:class:`~repro.telemetry.trace.Tracer` and an
:class:`~repro.telemetry.events.EventLog` — under one run id, and is
what gets threaded through the deployment loop.  Everything is opt-in:
instrumented code takes ``telemetry: Telemetry | None`` and skips all
recording when it is ``None``, so un-instrumented behaviour (and
bit-identical simulation output) is the default.

The module also centralises the metric names and label schemas used
across layers, so producers, the report renderer and the tests agree
on one vocabulary.
"""

from __future__ import annotations

import threading
import uuid
from pathlib import Path
from typing import TYPE_CHECKING

from repro.ioutils import atomic_write_text
from repro.telemetry.alerts import AlertEngine, AlertRule
from repro.telemetry.events import EventLog, fault_log_sink
from repro.telemetry.live import TelemetrySink, build_stream_record
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer, TracingTimingReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.detection.base import Detection
    from repro.faults.events import FaultLog

#: Detection-score histogram bounds: raw detector confidences span
#: roughly [-2, 5] across the suite's algorithms.
SCORE_BUCKETS = (
    -2.0, -1.0, -0.5, 0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0
)

#: Ack round-trip latencies in simulated seconds (stop-and-wait with
#: 0.25 s initial timeout and exponential backoff).
ACK_LATENCY_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0)

#: Battery fractions whose downward crossing emits an event.
BATTERY_THRESHOLDS = (0.75, 0.5, 0.25, 0.1)


class Telemetry:
    """Metrics + trace + events for one run, under one run id."""

    def __init__(
        self,
        run_id: str | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or Tracer(run_id=self.run_id)
        self.tracer.run_id = self.run_id
        self.events = events or EventLog(run_id=self.run_id)
        self.events.run_id = self.run_id
        # Hot-loop instruments, resolved through the registry once and
        # then handed back without the get-or-create lookup.
        self._energy_counter = None
        self._battery_gauge = None
        self._detection_frames = None
        self._detection_objects = None
        self._detection_scores = None
        # Live streaming state: sinks/rules attach after construction,
        # and everything below is untouched until they do, so a run
        # without live observability pays nothing at flush points.
        #: Serialises flushes against exporter scrapes.
        self.lock = threading.Lock()
        self._sinks: list[TelemetrySink] = []
        self.alerts = AlertEngine()
        self._flush_seq = 0
        self._events_cursor = 0
        self._status: dict = {}

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def event(
        self,
        kind: str,
        time_s: float = 0.0,
        node_id: str = "",
        **detail: object,
    ) -> None:
        self.events.emit(kind, time_s=time_s, node_id=node_id, **detail)

    def timing_adapter(self) -> TracingTimingReport:
        """A ``TimingReport`` whose sections also emit spans here."""
        return TracingTimingReport(self.tracer)

    def fault_sink(self):
        """A ``FaultLog(sink=...)`` callback: mirrors fault/recovery
        events into the event log and counts them by kind."""
        mirror = fault_log_sink(self.events)
        counter = self.registry.counter(
            "fault_events_total",
            "Fault and recovery events recorded, by kind.",
            labels=("kind",),
        )

        def sink(event: object) -> None:
            mirror(event)
            counter.inc(kind=getattr(event, "kind", "fault"))

        return sink

    def attach_fault_log(self, log: "FaultLog") -> None:
        """Mirror an existing fault log's future events here."""
        log.sink = self.fault_sink()

    # ------------------------------------------------------------------
    # Shared instruments (get-or-create; cheap to call in hot loops)
    # ------------------------------------------------------------------
    def energy_counter(self):
        if self._energy_counter is None:
            self._energy_counter = self.registry.counter(
                "energy_joules_total",
                "Energy drawn, by node and category "
                "(processing/communication/retransmission).",
                labels=("node", "category"),
            )
        return self._energy_counter

    def battery_gauge(self):
        if self._battery_gauge is None:
            self._battery_gauge = self.registry.gauge(
                "battery_fraction_remaining",
                "Residual battery fraction per node.",
                labels=("node",),
            )
        return self._battery_gauge

    def detection_frames_counter(self):
        if self._detection_frames is None:
            self._detection_frames = self.registry.counter(
                "detection_frames_total",
                "Frames processed, by node and algorithm.",
                labels=("node", "algorithm"),
            )
        return self._detection_frames

    def detection_objects_counter(self):
        if self._detection_objects is None:
            self._detection_objects = self.registry.counter(
                "detection_objects_total",
                "Objects detected, by node and algorithm.",
                labels=("node", "algorithm"),
            )
        return self._detection_objects

    def detection_score_histogram(self):
        if self._detection_scores is None:
            self._detection_scores = self.registry.histogram(
                "detection_score",
                "Raw detector confidence distribution, by algorithm.",
                labels=("algorithm",),
                buckets=SCORE_BUCKETS,
            )
        return self._detection_scores

    def observe_detections(
        self, node_id: str, algorithm: str, detections: "list[Detection]"
    ) -> None:
        """Record one detection op's frame count, object count and
        score distribution."""
        self.detection_frames_counter().inc(
            node=node_id, algorithm=algorithm
        )
        if detections:
            self.detection_objects_counter().inc(
                len(detections), node=node_id, algorithm=algorithm
            )
            score_hist = self.detection_score_histogram()
            for det in detections:
                score_hist.observe(det.score, algorithm=algorithm)

    # ------------------------------------------------------------------
    # Live streaming (see repro.telemetry.live)
    # ------------------------------------------------------------------
    def attach_sink(self, sink: TelemetrySink) -> TelemetrySink:
        """Register a streaming sink; flushes start reaching it."""
        self._sinks.append(sink)
        return sink

    def add_alert_rule(self, rule: "AlertRule | str") -> AlertRule:
        """Register a threshold rule evaluated at every flush."""
        return self.alerts.add(rule)

    @property
    def live_enabled(self) -> bool:
        """Whether a flush does any work beyond the status update."""
        return bool(self._sinks or self.alerts.rules)

    def flush_round(self, round_index: int, time_s: float) -> dict | None:
        """Fold the live state into one stream record at a round
        boundary: evaluate alert rules, emit their transitions as
        events, and hand the record to every sink.

        Called by the engine after every completed round; with no
        sinks and no rules only the (cheap) status page data is
        refreshed, so always-on instrumentation stays within the
        pinned overhead budget.  Returns the record, or ``None`` when
        live streaming is off.
        """
        with self.lock:
            self._status = {
                "rounds_completed": round_index + 1,
                "sim_time_s": time_s,
            }
            if not self.live_enabled:
                return None
            if self.alerts.rules:
                fired, cleared = self.alerts.evaluate(self.registry)
                for state in fired:
                    self.events.emit(
                        "alert", time_s=time_s, **state.to_detail()
                    )
                for state in cleared:
                    self.events.emit(
                        "alert_cleared", time_s=time_s, **state.to_detail()
                    )
            new_events = [
                event.to_record()
                for event in self.events.events[self._events_cursor:]
            ]
            self._events_cursor = len(self.events.events)
            record = build_stream_record(
                run_id=self.run_id,
                seq=self._flush_seq,
                round_index=round_index,
                time_s=time_s,
                metrics=self.registry.snapshot(),
                events=new_events,
                alerts=[s.to_detail() for s in self.alerts.active],
            )
            self._flush_seq += 1
        for sink in self._sinks:
            sink.emit(record)
        return record

    def prepare_resume(self, first_round: int) -> None:
        """Stitch live state for a run resuming at ``first_round``.

        Sinks drop the rounds the resumed run will flush again, and
        the event cursor skips everything already in the log (restored
        context, not new occurrences).
        """
        self._events_cursor = len(self.events.events)
        for sink in self._sinks:
            sink.on_resume(first_round)

    def close_sinks(self) -> None:
        """Close every attached sink (idempotent)."""
        for sink in self._sinks:
            sink.close()

    def status_snapshot(self) -> dict:
        """The ``/status`` page payload (caller holds :attr:`lock`)."""
        active = self.alerts.active
        return {
            "schema": "repro.status.v1",
            "run_id": self.run_id,
            "rounds_completed": self._status.get("rounds_completed", 0),
            "sim_time_s": self._status.get("sim_time_s", 0.0),
            "flushes": self._flush_seq,
            "metric_series": self.registry.series_count(),
            "events_total": len(self.events),
            "alerts_active": [state.to_detail() for state in active],
            "alert_rules": [rule.expression for rule in self.alerts.rules],
        }

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def write_metrics(self, path: str | Path) -> None:
        """Write the metrics snapshot; ``.prom``/``.txt`` suffixes get
        the text exposition format, everything else JSON."""
        path = Path(path)
        if path.suffix in (".prom", ".txt"):
            atomic_write_text(path, self.registry.render_text())
        else:
            atomic_write_text(path, self.registry.to_json(indent=2) + "\n")

    def write_trace(self, path: str | Path) -> int:
        self.tracer.finish()
        return self.tracer.write_jsonl(path)

    def write_events(self, path: str | Path) -> int:
        return self.events.write_jsonl(path)

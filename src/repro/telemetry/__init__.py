"""Telemetry: always-on metrics, run traces and structured events.

The observability substrate of the reproduction.  One
:class:`~repro.telemetry.core.Telemetry` object bundles:

* a :class:`~repro.telemetry.metrics.MetricsRegistry` of
  Prometheus-style ``Counter`` / ``Gauge`` / ``Histogram`` instruments
  (labels, fixed-bucket histograms, snapshot + merge, JSON and text
  exposition) cheap enough to stay on in the hot loops;
* a :class:`~repro.telemetry.trace.Tracer` of hierarchical spans
  (run → round → phase → per-camera op) that subsumes
  :class:`repro.perf.timing.TimingReport` and exports JSONL;
* an :class:`~repro.telemetry.events.EventLog` of
  :class:`~repro.telemetry.events.TelemetryEvent` records — controller
  decisions, battery threshold crossings, reliability give-ups, and
  every fault/recovery the fault subsystem logs.

On top of the snapshot-at-exit dumps, the *live* layer streams the
same state during a run: per-round flush records
(``repro.stream.v1``) to pluggable sinks
(:class:`~repro.telemetry.live.JsonlStreamSink`,
:class:`~repro.telemetry.live.SubscriberSink`), threshold alert rules
(:class:`~repro.telemetry.alerts.AlertEngine`) whose transitions land
in the event log, and an HTTP ``/metrics`` + ``/status`` endpoint
(:class:`~repro.telemetry.exporter.MetricsExporter`).

All instrumentation is opt-in (``telemetry=None`` everywhere) and
never touches a random stream, so telemetry-enabled and -disabled
runs produce bit-identical simulation output.
"""

from repro.telemetry.alerts import AlertEngine, AlertRule, AlertRuleError
from repro.telemetry.core import (
    ACK_LATENCY_BUCKETS,
    BATTERY_THRESHOLDS,
    SCORE_BUCKETS,
    Telemetry,
)
from repro.telemetry.events import EventLog, TelemetryEvent, fault_log_sink
from repro.telemetry.exporter import MetricsExporter
from repro.telemetry.live import (
    STREAM_SCHEMA,
    JsonlStreamSink,
    SubscriberSink,
    TelemetrySink,
    check_stream_contiguous,
    read_stream_records,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.telemetry.trace import Span, Tracer, TracingTimingReport

__all__ = [
    "ACK_LATENCY_BUCKETS",
    "AlertEngine",
    "AlertRule",
    "AlertRuleError",
    "BATTERY_THRESHOLDS",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "JsonlStreamSink",
    "MetricError",
    "MetricsExporter",
    "MetricsRegistry",
    "SCORE_BUCKETS",
    "STREAM_SCHEMA",
    "Span",
    "SubscriberSink",
    "Telemetry",
    "TelemetryEvent",
    "TelemetrySink",
    "Tracer",
    "TracingTimingReport",
    "check_stream_contiguous",
    "fault_log_sink",
    "read_stream_records",
]

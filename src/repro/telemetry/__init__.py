"""Telemetry: always-on metrics, run traces and structured events.

The observability substrate of the reproduction.  One
:class:`~repro.telemetry.core.Telemetry` object bundles:

* a :class:`~repro.telemetry.metrics.MetricsRegistry` of
  Prometheus-style ``Counter`` / ``Gauge`` / ``Histogram`` instruments
  (labels, fixed-bucket histograms, snapshot + merge, JSON and text
  exposition) cheap enough to stay on in the hot loops;
* a :class:`~repro.telemetry.trace.Tracer` of hierarchical spans
  (run → round → phase → per-camera op) that subsumes
  :class:`repro.perf.timing.TimingReport` and exports JSONL;
* an :class:`~repro.telemetry.events.EventLog` of
  :class:`~repro.telemetry.events.TelemetryEvent` records — controller
  decisions, battery threshold crossings, reliability give-ups, and
  every fault/recovery the fault subsystem logs.

All instrumentation is opt-in (``telemetry=None`` everywhere) and
never touches a random stream, so telemetry-enabled and -disabled
runs produce bit-identical simulation output.
"""

from repro.telemetry.core import (
    ACK_LATENCY_BUCKETS,
    BATTERY_THRESHOLDS,
    SCORE_BUCKETS,
    Telemetry,
)
from repro.telemetry.events import EventLog, TelemetryEvent, fault_log_sink
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.telemetry.trace import Span, Tracer, TracingTimingReport

__all__ = [
    "ACK_LATENCY_BUCKETS",
    "BATTERY_THRESHOLDS",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "SCORE_BUCKETS",
    "Span",
    "Telemetry",
    "TelemetryEvent",
    "Tracer",
    "TracingTimingReport",
    "fault_log_sink",
]

"""Human-readable rendering of telemetry dumps.

Backs the ``python -m repro telemetry-report`` CLI: load the files a
run emitted (``--metrics-out`` JSON, ``--trace-out`` span JSONL,
``--events-out`` event JSONL), validate them against the documented
schemas, and print summary tables an operator can actually read —
metric series grouped by instrument, the span tree aggregated by
position (so a thousand ``camera_op`` spans render as one line with a
count), and an event timeline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.schema import (
    validate_event_record,
    validate_metrics_payload,
    validate_span_record,
)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_metrics_report(payload: dict) -> str:
    """Summary table of every metric series in a snapshot payload."""
    validate_metrics_payload(payload)
    lines: list[str] = []
    total_series = 0
    for entry in payload["metrics"]:
        series = entry["series"]
        total_series += len(series)
        lines.append(
            f"{entry['name']}  [{entry['type']}]"
            + (f"  — {entry['help']}" if entry["help"] else "")
        )
        for s in series:
            labels = ", ".join(
                f"{k}={v}" for k, v in sorted(s["labels"].items())
            )
            labels = f"{{{labels}}}" if labels else ""
            if entry["type"] == "histogram":
                count = s["count"]
                mean = s["sum"] / count if count else 0.0
                lines.append(
                    f"  {labels:<40} count={count}  "
                    f"sum={_format_value(s['sum'])}  mean={mean:.4g}"
                )
            else:
                lines.append(
                    f"  {labels:<40} {_format_value(s['value'])}"
                )
        lines.append("")
    header = (
        f"METRICS — {len(payload['metrics'])} instruments, "
        f"{total_series} series"
    )
    return "\n".join([header, "=" * len(header), ""] + lines).rstrip() + "\n"


def _span_tree_lines(records: list[dict]) -> list[str]:
    """Aggregate spans by (tree position, name) and render indented.

    Sibling spans sharing a name collapse into one line carrying their
    count and total duration; children aggregate across the whole
    sibling group, so the tree stays readable however many rounds or
    per-camera ops a run produced.
    """
    children: dict[int | None, list[dict]] = {}
    for record in records:
        children.setdefault(record["parent_id"], []).append(record)

    lines: list[str] = []

    def group_by_name(group: list[dict]) -> dict[str, list[dict]]:
        out: dict[str, list[dict]] = {}
        for record in group:
            out.setdefault(record["name"], []).append(record)
        return out

    def render_group(name: str, group: list[dict], depth: int) -> None:
        total = sum(r["duration_s"] for r in group)
        lines.append(
            f"{'  ' * depth}{name:<{max(1, 28 - 2 * depth)}} "
            f"{len(group):>5}x  {total:>9.3f}s"
        )
        grand: list[dict] = []
        for record in group:
            grand.extend(children.get(record["span_id"], ()))
        for sub_name, sub_group in group_by_name(grand).items():
            render_group(sub_name, sub_group, depth + 1)

    for name, group in group_by_name(children.get(None, [])).items():
        render_group(name, group, 0)
    return lines


def render_trace_report(records: list[dict]) -> str:
    """Aggregated span tree of a trace dump."""
    for i, record in enumerate(records):
        validate_span_record(record, where=f"trace[{i}]")
    header = f"TRACE — {len(records)} spans"
    lines = [header, "=" * len(header)]
    if records:
        lines.append(f"{'span':<29} {'calls':>6}  {'total':>10}")
        lines.extend(_span_tree_lines(records))
    return "\n".join(lines) + "\n"


def render_events_report(records: list[dict], limit: int = 40) -> str:
    """Per-kind counts plus a bounded timeline.

    The timeline shows the first ``limit`` events by time; truncation
    is always announced with a trailing ``(+N more events)`` line so a
    quiet tail is never mistaken for the end of the log.
    """
    for i, record in enumerate(records):
        validate_event_record(record, where=f"events[{i}]")
    header = f"EVENTS — {len(records)} records"
    lines = [header, "=" * len(header)]
    by_kind: dict[str, int] = {}
    for record in records:
        by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
    for kind, count in sorted(by_kind.items()):
        lines.append(f"  {kind:<32} {count:>6}")
    if records:
        truncated = max(0, len(records) - limit)
        lines.append("")
        lines.append("timeline" + (f" (first {limit})" if truncated else ""))
        for record in sorted(records, key=lambda r: r["time_s"])[:limit]:
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(record["detail"].items())
            )
            lines.append(
                f"  t={record['time_s']:8.2f}s  {record['kind']:<24} "
                f"{record['node_id']:<10} {detail}"
            )
        if truncated:
            lines.append(f"  (+{truncated} more events)")
    return "\n".join(lines) + "\n"


def render_files(
    metrics_path: str | Path | None = None,
    trace_path: str | Path | None = None,
    events_path: str | Path | None = None,
    events_limit: int = 40,
) -> str:
    """Load and render whichever dump files were provided."""
    from repro.telemetry.schema import _load_jsonl

    parts: list[str] = []
    if metrics_path is not None:
        payload = json.loads(Path(metrics_path).read_text(encoding="utf-8"))
        parts.append(render_metrics_report(payload))
    if trace_path is not None:
        parts.append(render_trace_report(_load_jsonl(trace_path)))
    if events_path is not None:
        parts.append(
            render_events_report(_load_jsonl(events_path), limit=events_limit)
        )
    if not parts:
        raise ValueError(
            "nothing to render: pass at least one of "
            "--metrics/--trace/--events"
        )
    return "\n".join(parts)

"""Documented schemas for the telemetry dump formats, plus validators.

Three artefacts leave a run:

``--metrics-out`` (JSON, ``repro.metrics.v1``)::

    {"schema": "repro.metrics.v1",
     "metrics": [{"name": str, "type": "counter"|"gauge"|"histogram",
                  "help": str, "labels": [str, ...],
                  ("buckets": [float, ...],)      # histograms only
                  "series": [{"labels": {str: str},
                              "value": float}     # counter/gauge
                             |{"labels": {str: str},
                               "bucket_counts": [int, ...],
                               "count": int, "sum": float}]}]}

``--trace-out`` (JSONL, one ``repro.span.v1`` record per line)::

    {"schema": "repro.span.v1", "run_id": str, "span_id": int,
     "parent_id": int|null, "name": str, "start_s": float,
     "duration_s": float, "attributes": {...}}

``--events-out`` (JSONL, one ``repro.event.v1`` record per line)::

    {"schema": "repro.event.v1", "run_id": str, "time_s": float,
     "kind": str, "node_id": str, "detail": {...}}

The ``kind`` vocabulary is open-ended; the graceful-degradation layer
added these kinds (all ordinary ``repro.event.v1`` records — the
record shape is unchanged):

* data-plane fault injections: ``sensor_fault``,
  ``calibration_drift``, ``clock_skew``, ``message_corruption``, each
  with a matching ``*_cleared`` recovery when its window closes;
* ``message_corrupted`` — a receiver discarded a garbled payload
  (the sender's retransmission timer redelivers it);
* ``transport_give_up`` — reliable delivery exhausted its retries;
  ``detail`` names the message kind, sequence number, recipient and
  attempt count;
* camera-link circuit breakers: ``breaker_open`` /
  ``breaker_half_open`` (faults) and ``breaker_closed`` (recovery);
* the staged ladder: ``camera_degraded`` / ``camera_quarantined``
  (faults) and ``quarantine_probe`` / ``camera_readmitted`` /
  ``camera_recalibrated`` (recoveries), with controller
  ``reselected`` events recording the substitutions they trigger.

The predictive wake-up policy audits every gate decision (one event
per camera per assessed round, ``node_id`` = the camera):

* ``camera_wake`` / ``camera_skip`` — the camera was assessed /
  slept through the round.  ``detail`` carries ``round`` (round
  index), ``predicted`` (the regressor's activity forecast, ``null``
  before the first observation), ``threshold`` (the configured wake
  threshold) and ``reason``: ``warmup`` (regressor not warmed up
  yet), ``probe`` (forced staleness-bounding wake), ``rationed``
  (wanted to sleep but lost the sleep-slot ration),
  ``predicted_active`` (forecast above threshold), ``quorum``
  (rescued so at least one camera stays awake) for wakes, and
  ``predicted_idle`` for skips;
* ``camera_low_energy`` — a woken selected camera predicted below
  ``low_energy_below`` was pinned to its cheapest affordable
  detector; ``detail`` carries ``predicted``, ``threshold``,
  ``previous`` (the selector's choice) and ``algorithm`` (the
  low-energy profile it was rewritten to).

``--stream-out`` (JSONL, one ``repro.stream.v1`` record per completed
round/tick, appended atomically *during* the run, fsynced at
rotation and close)::

    {"schema": "repro.stream.v1", "run_id": str,
     "seq": int,              # flush counter, monotone
     "round": int,            # completed round (run) / tick (chaos)
     "time_s": float,         # simulated clock at the flush
     "metrics": {...},        # cumulative repro.metrics.v1 snapshot
     "events": [{...}, ...],  # repro.event.v1 records since the
                              # previous flush
     "alerts": [{...}, ...]}  # currently firing alert rules:
                              # {"rule", "metric", "labels", "value",
                              #  "threshold", "op"}

A stitched stream (after any number of kill-and-resume cycles) has
``round`` exactly ``0..N-1`` in file order;
:func:`repro.telemetry.live.check_stream_contiguous` asserts that.
The live HTTP exporter additionally serves a ``repro.status.v1`` JSON
object on ``/status`` (same fields as
:meth:`repro.telemetry.core.Telemetry.status_snapshot`); it is a
point-in-time page, never written to disk.

Alert-rule transitions reuse ``repro.event.v1`` with kinds ``alert``
and ``alert_cleared``; ``detail`` carries the firing rule expression,
metric, series labels, observed value, threshold and operator.

A fifth versioned artefact, the crash-safe deployment checkpoint
(``--checkpoint-dir``, ``repro.checkpoint.v1``), is documented here
for completeness but owned by :mod:`repro.checkpoint.store` (telemetry
sits below checkpointing in the layer contract, so the validator —
``CheckpointStore.load`` — lives there)::

    {"schema": "repro.checkpoint.v1",
     "kind": "run"|"chaos",
     "fingerprint": {...},    # the run configuration that wrote it;
                              # load() refuses a mismatched resume
     "state": {...}}          # kind-specific payload: "run" carries
                              # restorable engine state, "chaos"
                              # carries replay-verification markers

The validators raise :class:`SchemaError` naming the offending field;
they are used by the local pytest suite and by the ``telemetry-smoke``
CI job, so the documented schema and the emitted bytes cannot drift
apart silently.
"""

from __future__ import annotations

import json
from pathlib import Path

METRICS_SCHEMA = "repro.metrics.v1"
SPAN_SCHEMA = "repro.span.v1"
EVENT_SCHEMA = "repro.event.v1"
STREAM_SCHEMA = "repro.stream.v1"


class SchemaError(ValueError):
    """A telemetry payload does not match its documented schema."""


def _require(record: dict, name: str, types, where: str):
    if name not in record:
        raise SchemaError(f"{where}: missing field {name!r}")
    value = record[name]
    if not isinstance(value, types):
        raise SchemaError(
            f"{where}: field {name!r} has type {type(value).__name__}, "
            f"expected {types}"
        )
    return value


def validate_span_record(record: dict, where: str = "span") -> None:
    if _require(record, "schema", str, where) != SPAN_SCHEMA:
        raise SchemaError(f"{where}: schema is not {SPAN_SCHEMA!r}")
    _require(record, "run_id", str, where)
    _require(record, "span_id", int, where)
    if record.get("parent_id") is not None:
        _require(record, "parent_id", int, where)
    name = _require(record, "name", str, where)
    if not name:
        raise SchemaError(f"{where}: empty span name")
    _require(record, "start_s", (int, float), where)
    duration = _require(record, "duration_s", (int, float), where)
    if duration < 0:
        raise SchemaError(f"{where}: negative duration")
    _require(record, "attributes", dict, where)


def validate_event_record(record: dict, where: str = "event") -> None:
    if _require(record, "schema", str, where) != EVENT_SCHEMA:
        raise SchemaError(f"{where}: schema is not {EVENT_SCHEMA!r}")
    _require(record, "run_id", str, where)
    _require(record, "time_s", (int, float), where)
    if not _require(record, "kind", str, where):
        raise SchemaError(f"{where}: empty event kind")
    _require(record, "node_id", str, where)
    _require(record, "detail", dict, where)


def validate_metrics_payload(payload: dict, where: str = "metrics") -> None:
    if _require(payload, "schema", str, where) != METRICS_SCHEMA:
        raise SchemaError(f"{where}: schema is not {METRICS_SCHEMA!r}")
    metrics = _require(payload, "metrics", list, where)
    for entry in metrics:
        if not isinstance(entry, dict):
            raise SchemaError(f"{where}: metric entry is not an object")
        name = _require(entry, "name", str, where)
        here = f"{where}.{name}"
        kind = _require(entry, "type", str, here)
        if kind not in ("counter", "gauge", "histogram"):
            raise SchemaError(f"{here}: unknown type {kind!r}")
        _require(entry, "help", str, here)
        labels = _require(entry, "labels", list, here)
        series = _require(entry, "series", list, here)
        if kind == "histogram":
            buckets = _require(entry, "buckets", list, here)
            if sorted(buckets) != buckets:
                raise SchemaError(f"{here}: buckets not sorted")
        for i, s in enumerate(series):
            swhere = f"{here}.series[{i}]"
            slabels = _require(s, "labels", dict, swhere)
            if set(slabels) != set(labels):
                raise SchemaError(
                    f"{swhere}: label keys {sorted(slabels)} do not "
                    f"match declared {sorted(labels)}"
                )
            if kind == "histogram":
                counts = _require(s, "bucket_counts", list, swhere)
                if len(counts) != len(entry["buckets"]) + 1:
                    raise SchemaError(
                        f"{swhere}: expected "
                        f"{len(entry['buckets']) + 1} bucket counts"
                    )
                count = _require(s, "count", int, swhere)
                if sum(counts) != count:
                    raise SchemaError(
                        f"{swhere}: bucket counts sum to {sum(counts)}, "
                        f"count says {count}"
                    )
                _require(s, "sum", (int, float), swhere)
            else:
                _require(s, "value", (int, float), swhere)


def validate_stream_record(record: dict, where: str = "stream") -> None:
    if _require(record, "schema", str, where) != STREAM_SCHEMA:
        raise SchemaError(f"{where}: schema is not {STREAM_SCHEMA!r}")
    _require(record, "run_id", str, where)
    seq = _require(record, "seq", int, where)
    if seq < 0:
        raise SchemaError(f"{where}: negative seq")
    round_index = _require(record, "round", int, where)
    if round_index < 0:
        raise SchemaError(f"{where}: negative round")
    _require(record, "time_s", (int, float), where)
    validate_metrics_payload(
        _require(record, "metrics", dict, where), where=f"{where}.metrics"
    )
    events = _require(record, "events", list, where)
    for i, event in enumerate(events):
        validate_event_record(event, where=f"{where}.events[{i}]")
    alerts = _require(record, "alerts", list, where)
    for i, alert in enumerate(alerts):
        awhere = f"{where}.alerts[{i}]"
        _require(alert, "rule", str, awhere)
        _require(alert, "metric", str, awhere)
        _require(alert, "labels", dict, awhere)
        _require(alert, "value", (int, float), awhere)
        _require(alert, "threshold", (int, float), awhere)
        _require(alert, "op", str, awhere)


def _load_jsonl(path: str | Path) -> list[dict]:
    records = []
    for lineno, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}:{lineno}: invalid JSON: {exc}")
    return records


def validate_trace_file(path: str | Path) -> int:
    """Validate a span JSONL dump; returns the span count."""
    records = _load_jsonl(path)
    ids = set()
    for i, record in enumerate(records):
        validate_span_record(record, where=f"{path}:{i + 1}")
        ids.add(record["span_id"])
    for i, record in enumerate(records):
        parent = record.get("parent_id")
        if parent is not None and parent not in ids:
            raise SchemaError(
                f"{path}:{i + 1}: parent_id {parent} references no span"
            )
    return len(records)


def validate_events_file(path: str | Path) -> int:
    """Validate an event JSONL dump; returns the event count."""
    records = _load_jsonl(path)
    for i, record in enumerate(records):
        validate_event_record(record, where=f"{path}:{i + 1}")
    return len(records)


def validate_stream_file(path: str | Path) -> int:
    """Validate a (possibly rotated) stream; returns the record count.

    Reads through :func:`repro.telemetry.live.read_stream_records`,
    so rotated parts are included and a torn trailing line — legal
    mid-run — is ignored rather than flagged.
    """
    from repro.telemetry.live import read_stream_records

    records = read_stream_records(path)
    for i, record in enumerate(records):
        validate_stream_record(record, where=f"{path}[{i}]")
    return len(records)


def validate_metrics_file(path: str | Path) -> int:
    """Validate a metrics JSON dump; returns the metric count."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: invalid JSON: {exc}")
    validate_metrics_payload(payload, where=str(path))
    return len(payload["metrics"])

"""Hierarchical run traces.

A :class:`Tracer` records *spans* — named, attributed, wall-clock
timed intervals arranged in a tree: run → round → phase → per-camera
op.  Spans come from the :meth:`Tracer.span` context manager in
straight-line code, or from the explicit :meth:`Tracer.begin` /
:meth:`Tracer.end` pair when the interval is driven by discrete
events (the chaos controller opens a round span when an assessment
starts and closes it when the next one begins).

The tracer subsumes :class:`repro.perf.timing.TimingReport`: the
section aggregates that back the ``--perf-report`` CLI flag are one
:meth:`Tracer.to_timing_report` away, and
:class:`TracingTimingReport` is a drop-in ``TimingReport`` whose
sections also emit spans, so existing callers keep their aggregate
view while gaining the tree.  Export is JSONL, one span per line
(see ``repro.telemetry.schema`` for the record layout).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.ioutils import atomic_write_text
from repro.perf.timing import TimingReport


@dataclass
class Span:
    """One timed interval in the run tree.

    Attributes:
        span_id: Unique within the tracer, assigned at begin time.
        parent_id: Enclosing span's id, ``None`` for roots.
        name: What the interval is (``"run"``, ``"round"``, ...).
        start_s: Wall-clock start, tracer-clock seconds.
        end_s: Wall-clock end; ``None`` while the span is open.
        attributes: Free-form context (mode, round index, camera id,
            simulated time, ...) — JSON-able values only.
    """

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float | None = None
    attributes: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_record(self, run_id: str = "") -> dict:
        """The span's JSONL record."""
        return {
            "schema": "repro.span.v1",
            "run_id": run_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """Collects a tree of spans for one process/run."""

    def __init__(
        self,
        run_id: str = "",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.run_id = run_id
        self._clock = clock
        self._next_id = 0
        self._stack: list[Span] = []
        self.spans: list[Span] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, name: str, **attributes: object) -> Span:
        """Open a span under the innermost open span."""
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start_s=self._clock(),
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._stack.append(span)
        self.spans.append(span)
        return span

    def end(self, span: Span, **attributes: object) -> Span:
        """Close a span (and any deeper spans left open inside it)."""
        end_s = self._clock()
        if span.end_s is not None:
            return span
        while self._stack:
            top = self._stack.pop()
            if top.end_s is None:
                top.end_s = end_s
            if top is span:
                break
        else:
            span.end_s = end_s
        span.attributes.update(attributes)
        return span

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Context-managed :meth:`begin`/:meth:`end` pair."""
        opened = self.begin(name, **attributes)
        try:
            yield opened
        finally:
            self.end(opened)

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def finish(self) -> None:
        """Close every span still open (end-of-run cleanup)."""
        while self._stack:
            self.end(self._stack[-1])

    # ------------------------------------------------------------------
    # TimingReport interop
    # ------------------------------------------------------------------
    def to_timing_report(self) -> TimingReport:
        """Aggregate closed spans by name into a ``TimingReport``."""
        report = TimingReport()
        for span in self.spans:
            if span.end_s is not None:
                report.record(span.name, span.duration_s)
        return report

    def absorb_timing(self, report: TimingReport) -> None:
        """Import a legacy ``TimingReport`` as flat aggregate spans.

        Uses the report's public :meth:`TimingReport.items` iteration
        API; each section becomes one root span whose attributes carry
        the call count and mean.
        """
        now = self._clock()
        for name, stats in report.items():
            span = Span(
                span_id=self._next_id,
                parent_id=None,
                name=name,
                start_s=now,
                end_s=now + stats.total_seconds,
                attributes={
                    "calls": stats.calls,
                    "mean_seconds": stats.mean_seconds,
                    "aggregate": True,
                },
            )
            self._next_id += 1
            self.spans.append(span)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def iter_records(self) -> Iterator[dict]:
        for span in self.spans:
            if span.end_s is not None:
                yield span.to_record(self.run_id)

    def write_jsonl(self, path: str | Path) -> int:
        """Write one JSON record per closed span (atomically); returns
        the count."""
        records = list(self.iter_records())
        atomic_write_text(
            path,
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records),
        )
        return len(records)


class TracingTimingReport(TimingReport):
    """A ``TimingReport`` whose sections also emit tracer spans.

    Drop-in for code that already wraps its phases in
    ``timing.section(...)``: the aggregate view (``format_report``,
    ``as_dict``) is unchanged, and every section entry additionally
    opens a span on the backing tracer, nesting under whatever span is
    currently open there.  ``record()`` calls without a live interval
    (merges, manual accounting) stay aggregate-only.
    """

    def __init__(self, tracer: Tracer) -> None:
        super().__init__()
        self.tracer = tracer

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        span = self.tracer.begin(name)
        try:
            yield
        finally:
            self.tracer.end(span)
            self.record(name, time.perf_counter() - start)

"""Prometheus-style metric instruments and their registry.

Three instrument types cover everything the deployment loop needs to
report: :class:`Counter` (monotone totals — Joules drawn, messages
sent), :class:`Gauge` (point-in-time values — battery fraction,
cameras selected) and :class:`Histogram` (fixed-bucket distributions —
detection scores, ack latencies).  Every instrument supports labels,
so one metric name fans out into one *series* per label combination,
exactly like the Prometheus data model.

The registry is deliberately cheap — recording a sample is a dict
lookup plus a float add — so instrumentation can stay always-on in
the hot loops.  :meth:`MetricsRegistry.snapshot` produces a plain
JSON-able payload that round-trips losslessly through
:meth:`MetricsRegistry.merge`, which is how per-run dumps from
parallel or sharded deployments fold into one fleet-wide view.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: Default histogram bucket upper bounds (seconds-ish scale); callers
#: with domain knowledge should pass their own.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class MetricError(ValueError):
    """Misuse of an instrument (bad labels, type clash, negative inc)."""


def _label_key(
    label_names: tuple[str, ...], labels: Mapping[str, object]
) -> tuple[str, ...]:
    # Hot path: a KeyError probe plus a length check detects every
    # mismatch without building throwaway sets per sample.
    try:
        key = tuple(str(labels[name]) for name in label_names)
    except KeyError:
        raise MetricError(
            f"expected labels {sorted(label_names)}, "
            f"got {sorted(labels)}"
        ) from None
    if len(labels) != len(label_names):
        raise MetricError(
            f"expected labels {sorted(label_names)}, "
            f"got {sorted(labels)}"
        )
    return key


@dataclass
class _HistogramSeries:
    """Cumulative state of one labelled histogram series."""

    bucket_counts: list[int]
    count: int = 0
    sum: float = 0.0


class _Instrument:
    """Shared name/help/label plumbing of all instrument types."""

    type: str = ""

    def __init__(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> None:
        if not name or not name.replace("_", "a").isidentifier():
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(labels)

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        # Unrolled for the 0/1/2-label shapes every hot-loop metric in
        # this codebase uses; the generic path handles the rest.
        names = self.label_names
        try:
            if len(labels) == len(names):
                if not names:
                    return ()
                if len(names) == 1:
                    return (str(labels[names[0]]),)
                if len(names) == 2:
                    return (str(labels[names[0]]), str(labels[names[1]]))
        except KeyError:
            pass
        return _label_key(names, labels)


class Counter(_Instrument):
    """A monotonically increasing total, one value per label set."""

    type = COUNTER

    def __init__(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise MetricError("counters only go up")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    @property
    def series_count(self) -> int:
        return len(self._values)


class Gauge(_Instrument):
    """A value that can go up and down, one per label set."""

    type = GAUGE

    def __init__(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    @property
    def series_count(self) -> int:
        return len(self._values)


class Histogram(_Instrument):
    """Fixed-bucket distribution with per-label-set series.

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the overflow, so ``observe`` never loses a sample.
    """

    type = HISTOGRAM

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b >= c for b, c in zip(bounds, bounds[1:])
        ):
            raise MetricError("buckets must be strictly increasing")
        self.buckets = bounds
        self._series: dict[tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(
                bucket_counts=[0] * (len(self.buckets) + 1)
            )
            self._series[key] = series
        # First bucket whose bound is >= value; past-the-end lands in
        # the implicit +Inf slot.
        idx = bisect_left(self.buckets, value)
        series.bucket_counts[idx] += 1
        series.count += 1
        series.sum += value

    def count(self, **labels: object) -> int:
        series = self._series.get(self._key(labels))
        return series.count if series else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(self._key(labels))
        return series.sum if series else 0.0

    @property
    def series_count(self) -> int:
        return len(self._series)


class MetricsRegistry:
    """Get-or-create home for every instrument of one process/run.

    Calling :meth:`counter`/:meth:`gauge`/:meth:`histogram` twice with
    the same name returns the same instrument; a type or label-schema
    clash raises instead of silently splitting a metric in two.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    # ------------------------------------------------------------------
    # Instrument factories
    # ------------------------------------------------------------------
    def _get_or_create(
        self, cls, name: str, help: str, labels: Iterable[str], **kwargs
    ):
        labels = tuple(labels)
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.type}, not {cls.type}"
                )
            if existing.label_names != labels:
                raise MetricError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.label_names}, not {labels}"
                )
            return existing
        instrument = cls(name, help, labels, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Iterable[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        instrument = self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )
        if instrument.buckets != tuple(float(b) for b in buckets):
            raise MetricError(
                f"histogram {name!r} already registered with buckets "
                f"{instrument.buckets}"
            )
        return instrument

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    @property
    def names(self) -> list[str]:
        return sorted(self._instruments)

    def series_count(self) -> int:
        """Total number of labelled series across all instruments."""
        return sum(i.series_count for i in self._instruments.values())

    # ------------------------------------------------------------------
    # Snapshot / merge / exposition
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain JSON-able copy of every instrument and series."""
        metrics = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            entry: dict = {
                "name": inst.name,
                "type": inst.type,
                "help": inst.help,
                "labels": list(inst.label_names),
            }
            if isinstance(inst, Histogram):
                entry["buckets"] = list(inst.buckets)
                entry["series"] = [
                    {
                        "labels": dict(zip(inst.label_names, key)),
                        "bucket_counts": list(series.bucket_counts),
                        "count": series.count,
                        "sum": series.sum,
                    }
                    for key, series in sorted(inst._series.items())
                ]
            else:
                entry["series"] = [
                    {
                        "labels": dict(zip(inst.label_names, key)),
                        "value": value,
                    }
                    for key, value in sorted(inst._values.items())
                ]
            metrics.append(entry)
        return {"schema": "repro.metrics.v1", "metrics": metrics}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` payload into this registry.

        Counters and histograms add; gauges take the snapshot's value
        (last writer wins), which matches their point-in-time meaning.
        """
        for entry in snapshot.get("metrics", ()):
            name = entry["name"]
            kind = entry["type"]
            labels = tuple(entry.get("labels", ()))
            if kind == COUNTER:
                counter = self.counter(name, entry.get("help", ""), labels)
                for series in entry["series"]:
                    counter.inc(series["value"], **series["labels"])
            elif kind == GAUGE:
                gauge = self.gauge(name, entry.get("help", ""), labels)
                for series in entry["series"]:
                    gauge.set(series["value"], **series["labels"])
            elif kind == HISTOGRAM:
                hist = self.histogram(
                    name, entry.get("help", ""), labels,
                    buckets=entry["buckets"],
                )
                for series in entry["series"]:
                    key = _label_key(hist.label_names, series["labels"])
                    mine = hist._series.get(key)
                    if mine is None:
                        mine = _HistogramSeries(
                            bucket_counts=[0] * (len(hist.buckets) + 1)
                        )
                        hist._series[key] = mine
                    counts = series["bucket_counts"]
                    if len(counts) != len(mine.bucket_counts):
                        raise MetricError(
                            f"histogram {name!r}: bucket count mismatch"
                        )
                    for i, c in enumerate(counts):
                        mine.bucket_counts[i] += c
                    mine.count += series["count"]
                    mine.sum += series["sum"]
            else:
                raise MetricError(f"unknown instrument type {kind!r}")

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "MetricsRegistry":
        return cls.from_snapshot(json.loads(payload))

    def render_text(self) -> str:
        """Prometheus text exposition format."""

        def fmt_labels(labels: Mapping[str, str], extra: str = "") -> str:
            parts = [f'{k}="{v}"' for k, v in labels.items()]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        lines: list[str] = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if inst.help:
                lines.append(f"# HELP {inst.name} {inst.help}")
            lines.append(f"# TYPE {inst.name} {inst.type}")
            if isinstance(inst, Histogram):
                for key, series in sorted(inst._series.items()):
                    labels = dict(zip(inst.label_names, key))
                    cumulative = 0
                    for bound, count in zip(
                        inst.buckets, series.bucket_counts
                    ):
                        cumulative += count
                        le = 'le="%g"' % bound
                        lines.append(
                            f"{inst.name}_bucket"
                            f"{fmt_labels(labels, le)} {cumulative}"
                        )
                    inf = 'le="+Inf"'
                    lines.append(
                        f"{inst.name}_bucket"
                        f"{fmt_labels(labels, inf)} {series.count}"
                    )
                    lines.append(
                        f"{inst.name}_sum{fmt_labels(labels)} "
                        f"{series.sum:g}"
                    )
                    lines.append(
                        f"{inst.name}_count{fmt_labels(labels)} "
                        f"{series.count}"
                    )
            else:
                for key, value in sorted(inst._values.items()):
                    labels = dict(zip(inst.label_names, key))
                    lines.append(
                        f"{inst.name}{fmt_labels(labels)} {value:g}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

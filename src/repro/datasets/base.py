"""Dataset frame records and video segments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.world.renderer import FrameObservation


@dataclass
class FrameRecord:
    """One time step across all cameras.

    Attributes:
        frame_index: Global frame number.
        observations: Per-camera frame observation, keyed by camera id.
        has_ground_truth: Whether this frame carries annotation (the
            datasets annotate every 10th or 25th frame).
    """

    frame_index: int
    observations: dict[str, FrameObservation]
    has_ground_truth: bool

    def observation(self, camera_id: str) -> FrameObservation:
        try:
            return self.observations[camera_id]
        except KeyError:
            raise KeyError(
                f"frame {self.frame_index} has no camera {camera_id!r}; "
                f"available: {sorted(self.observations)}"
            ) from None

    @property
    def camera_ids(self) -> list[str]:
        return list(self.observations)


@dataclass
class VideoSegment:
    """A contiguous span of frames of one dataset.

    Matches the paper's train/test protocol: the first 1000 frames of
    each feed are the training video, the remainder the test item.
    """

    name: str
    start_frame: int
    end_frame: int
    frames: list[FrameRecord]

    def __post_init__(self) -> None:
        if self.end_frame < self.start_frame:
            raise ValueError(
                f"segment {self.name!r} ends before it starts: "
                f"[{self.start_frame}, {self.end_frame}]"
            )

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def ground_truth_frames(self) -> list[FrameRecord]:
        return [f for f in self.frames if f.has_ground_truth]

    def camera_frames(self, camera_id: str) -> list[FrameObservation]:
        """This camera's observations across the segment."""
        return [f.observation(camera_id) for f in self.frames]

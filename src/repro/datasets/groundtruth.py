"""Ground-truth extraction helpers.

The datasets annotate 3-D person locations; converted through each
camera's homography they become per-view 2-D boxes.  Our synthetic
world short-circuits that conversion — the renderer's object views
*are* the projected annotations — but the evaluation semantics are
the paper's: a person counts as present in a view when their
projection falls in the image, and as present in the scene when any
camera sees them.
"""

from __future__ import annotations

from repro.detection.base import BoundingBox
from repro.world.renderer import FrameObservation

#: A person occluded beyond this fraction in a view is not expected to
#: be detectable there; they still count as present if another camera
#: sees them better.
VISIBILITY_OCCLUSION_CUTOFF = 0.95


def ground_truth_boxes(
    observation: FrameObservation,
    include_occluded: bool = True,
) -> list[BoundingBox]:
    """Annotation boxes for one camera's frame."""
    boxes = []
    for view in observation.objects:
        if not include_occluded and view.occlusion >= VISIBILITY_OCCLUSION_CUTOFF:
            continue
        boxes.append(BoundingBox.from_tuple(view.bbox))
    return boxes


def persons_in_view(
    observation: FrameObservation,
    occlusion_cutoff: float = VISIBILITY_OCCLUSION_CUTOFF,
) -> set[int]:
    """Ids of persons detectably present in one view."""
    return {
        view.person_id
        for view in observation.objects
        if view.occlusion < occlusion_cutoff
    }


def persons_in_any_view(
    observations: dict[str, FrameObservation],
    occlusion_cutoff: float = VISIBILITY_OCCLUSION_CUTOFF,
) -> set[int]:
    """Ids of persons present in the scene (visible to >= 1 camera)."""
    present: set[int] = set()
    for observation in observations.values():
        present |= persons_in_view(observation, occlusion_cutoff)
    return present

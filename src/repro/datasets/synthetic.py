"""Synthetic generators for the three evaluation datasets.

A :class:`SyntheticDataset` owns one scene, four cameras and their
renderers, and can materialise any frame range.  The scene is
deterministic for a given spec: regenerating the same frame range
yields identical observations, mirroring how the paper replays fixed
recorded videos.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import FrameRecord, VideoSegment
from repro.geometry.camera import PinholeCamera
from repro.geometry.homography import Homography
from repro.world.environment import CHAP, LAB, NIGHT, TERRACE, Environment
from repro.world.renderer import Renderer
from repro.world.scene import Scene, make_camera_ring


@dataclass(frozen=True)
class DatasetSpec:
    """Structural description of one dataset.

    Attributes mirror the paper's Section VI dataset table: camera
    count, person count, total length, ground-truth cadence, and the
    train/test boundary at frame 1000.
    """

    name: str
    environment: Environment
    num_people: int
    num_cameras: int = 4
    total_frames: int = 3000
    gt_every: int = 25
    train_end: int = 1000
    bounds: tuple[float, float, float, float] = (0.0, 0.0, 8.0, 8.0)

    def __post_init__(self) -> None:
        if self.gt_every < 1:
            raise ValueError("gt_every must be >= 1")
        if not 0 < self.train_end < self.total_frames:
            raise ValueError("train_end must split the video")


DATASET_SPECS: dict[int, DatasetSpec] = {
    1: DatasetSpec(name="lab", environment=LAB, num_people=6, gt_every=25),
    2: DatasetSpec(name="chap", environment=CHAP, num_people=5, gt_every=10),
    3: DatasetSpec(
        name="terrace",
        environment=TERRACE,
        num_people=8,
        gt_every=25,
        bounds=(0.0, 0.0, 10.0, 10.0),
    ),
    # Extension beyond the paper: the terrace after dark.
    4: DatasetSpec(
        name="night",
        environment=NIGHT,
        num_people=8,
        gt_every=25,
        bounds=(0.0, 0.0, 10.0, 10.0),
    ),
}


class SyntheticDataset:
    """One dataset: scene + cameras + renderers + frame generation."""

    def __init__(self, spec: DatasetSpec, cache_frames: bool = True) -> None:
        self.spec = spec
        self.cache_frames = cache_frames
        self.cameras: list[PinholeCamera] = make_camera_ring(
            spec.environment,
            num_cameras=spec.num_cameras,
            bounds=spec.bounds,
        )
        self._frame_cache: dict[int, FrameRecord] = {}
        self._reset_scene()

    def _reset_scene(self) -> None:
        self._scene = Scene(
            environment=self.spec.environment,
            num_people=self.spec.num_people,
            bounds=self.spec.bounds,
        )
        self._renderers = [
            Renderer(self._scene, camera) for camera in self.cameras
        ]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def environment(self) -> Environment:
        return self.spec.environment

    @property
    def camera_ids(self) -> list[str]:
        return [camera.camera_id for camera in self.cameras]

    def has_ground_truth(self, frame_index: int) -> bool:
        return frame_index % self.spec.gt_every == 0

    def ground_homographies(self) -> dict[str, Homography]:
        """Per-camera image->world-ground homographies (the calibration
        files the real datasets ship)."""
        return {
            camera.camera_id: Homography(camera.ground_homography()).inverse()
            for camera in self.cameras
        }

    def _materialise(self, frame_index: int) -> FrameRecord:
        if frame_index in self._frame_cache:
            return self._frame_cache[frame_index]
        if frame_index < self._scene.frame_index:
            # The scene is forward-only; replay deterministically.
            self._reset_scene()
        self._scene.run_to_frame(frame_index)
        observations = {
            renderer.camera.camera_id: renderer.render(frame_index)
            for renderer in self._renderers
        }
        record = FrameRecord(
            frame_index=frame_index,
            observations=observations,
            has_ground_truth=self.has_ground_truth(frame_index),
        )
        if self.cache_frames:
            self._frame_cache[frame_index] = record
        return record

    def frames(
        self,
        start: int,
        end: int,
        step: int = 1,
        only_ground_truth: bool = False,
    ) -> list[FrameRecord]:
        """Materialise frames ``start <= f < end`` (inclusive of start).

        Args:
            start: First frame index.
            end: One past the last frame index.
            step: Stride between sampled frames.
            only_ground_truth: Keep only annotated frames.
        """
        if start < 0 or end < start:
            raise ValueError(f"bad frame range [{start}, {end})")
        indices = range(start, end, step)
        if only_ground_truth:
            indices = [i for i in indices if self.has_ground_truth(i)]
        return [self._materialise(i) for i in indices]

    def segment(
        self,
        start: int,
        end: int,
        name: str | None = None,
        only_ground_truth: bool = False,
        step: int = 1,
    ) -> VideoSegment:
        """A named frame span, e.g. the training or test segment."""
        frames = self.frames(
            start, end, step=step, only_ground_truth=only_ground_truth
        )
        return VideoSegment(
            name=name or f"{self.name}[{start}:{end}]",
            start_frame=start,
            end_frame=end,
            frames=frames,
        )

    def training_segment(self, only_ground_truth: bool = True) -> VideoSegment:
        """Frames 0..train_end, the paper's training video item."""
        return self.segment(
            0,
            self.spec.train_end,
            name=f"{self.name}-train",
            only_ground_truth=only_ground_truth,
        )

    def test_segment(self, only_ground_truth: bool = True) -> VideoSegment:
        """Frames train_end..total, the paper's test item."""
        return self.segment(
            self.spec.train_end,
            self.spec.total_frames,
            name=f"{self.name}-test",
            only_ground_truth=only_ground_truth,
        )

    def clear_cache(self) -> None:
        self._frame_cache.clear()


def make_dataset(number: int) -> SyntheticDataset:
    """Build dataset #1, #2 or #3 by the paper's numbering."""
    try:
        spec = DATASET_SPECS[number]
    except KeyError:
        raise KeyError(
            f"unknown dataset #{number}; available: {sorted(DATASET_SPECS)}"
        ) from None
    return SyntheticDataset(spec)


def make_scaled_dataset(
    num_cameras: int, base_number: int = 1
) -> SyntheticDataset:
    """A fleet-scale variant of a standard dataset.

    Same environment, people and frame schedule as dataset
    ``base_number``, but with ``num_cameras`` cameras on the ring —
    the substrate for the throughput benchmarks at 16/64 cameras.
    The first cameras reproduce the base dataset's placements exactly
    (see :func:`~repro.world.scene.make_camera_ring`).
    """
    try:
        base = DATASET_SPECS[base_number]
    except KeyError:
        raise KeyError(
            f"unknown dataset #{base_number}; "
            f"available: {sorted(DATASET_SPECS)}"
        ) from None
    if num_cameras < 1:
        raise ValueError("need at least one camera")
    spec = DatasetSpec(
        name=f"{base.name}-{num_cameras}cam",
        environment=base.environment,
        num_people=base.num_people,
        num_cameras=num_cameras,
        total_frames=base.total_frames,
        gt_every=base.gt_every,
        train_end=base.train_end,
        bounds=base.bounds,
    )
    return SyntheticDataset(spec)

"""The three evaluation datasets, synthesised.

Section VI evaluates on three public four-camera pedestrian datasets:
the EPFL "lab sequences" (indoor, 6 people, 360x288), the Graz "chap"
dataset (indoor, 4-6 people, furniture clutter, 1024x768) and the EPFL
"terrace sequences" (outdoor, 8 people, 360x288).  Each is ~3000
frames per camera, split 1000 training / 2000 test, with ground truth
every 25 frames (#1, #3) or every 10 frames (#2).

This package generates synthetic equivalents with matching structure:
same camera count, resolutions, person counts, clutter levels,
train/test split and ground-truth cadence.
"""

from repro.datasets.base import FrameRecord, VideoSegment
from repro.datasets.groundtruth import (
    ground_truth_boxes,
    persons_in_any_view,
    persons_in_view,
)
from repro.datasets.synthetic import (
    DATASET_SPECS,
    DatasetSpec,
    SyntheticDataset,
    make_dataset,
)

__all__ = [
    "FrameRecord",
    "VideoSegment",
    "ground_truth_boxes",
    "persons_in_any_view",
    "persons_in_view",
    "DATASET_SPECS",
    "DatasetSpec",
    "SyntheticDataset",
    "make_dataset",
]

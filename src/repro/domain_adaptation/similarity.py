"""Video similarity via the geodesic flow kernel (Eqs. 3-5).

The kernel distance between frame ``m1`` of the training video and
frame ``m2`` of the incoming video is the squared Mahalanobis-like
form  ``(t - v)^T W (t - v)``; Eq. (3) expands it into the three
kernel products.  Eq. (4) averages over all frame pairs, and Eq. (5)
maps the mean distance to a similarity ``exp(-M_d)`` in [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.domain_adaptation.gfk import GeodesicFlowKernel, geodesic_flow_kernel
from repro.domain_adaptation.pca import uncentered_basis
from repro.perf.cache import ArrayCache

DEFAULT_SUBSPACE_DIM = 16

#: Gain applied to the total manifold distance before the exponential
#: of Eq. (5).  With unit-norm frame features the raw distances are
#: small; this scale maps them into the paper's similarity range
#: (diagonal ~0.7-0.8, cross-dataset ~0.4 in Table V).
DEFAULT_DISTANCE_SCALE = 0.4

#: Weight of the subspace-alignment term in the total distance: the
#: mean squared sine of the most-aligned half of the principal angles.
#: Section III's premise is that "a small distance between two
#: projected points in the manifold ... indicates a high level of
#: similarity"; the alignment term is that manifold distance.  The
#: kernel distance of Eq. (3) alone cannot play this role across
#: training items, because each pair is measured under its *own*
#: kernel W, which by construction discounts exactly the directions in
#: which misaligned domains differ.
DEFAULT_ANGLE_WEIGHT = 2.0


def _normalise_rows(features: np.ndarray) -> np.ndarray:
    """L2-normalise each frame feature so distances are scale-free."""
    features = np.atleast_2d(np.asarray(features, dtype=float))
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    norms[norms < 1e-12] = 1.0
    return features / norms


def kernel_distance_matrix(
    kernel: GeodesicFlowKernel,
    t: np.ndarray,
    v: np.ndarray,
    include_residual: bool = True,
) -> np.ndarray:
    """Eq. (3): the ``(k1, k2)`` matrix of pairwise kernel distances.

    ``K[m1, m2] = t_m1 W t_m1 + v_m2 W v_m2 - 2 t_m1 W v_m2``.
    Values are clipped at zero to absorb floating-point jitter (the
    form is non-negative because W is positive semi-definite).

    When ``include_residual`` is set (the default), the energy of the
    difference vector *outside* the union of the two subspaces is
    added at full weight.  The flow kernel is blind to that component,
    so without the residual a pair of badly misaligned videos can
    measure as *closer* than two clips of the same scene — distances
    computed under different kernels would not be comparable across
    training items, which Section IV-B.2 requires.
    """
    t = np.atleast_2d(np.asarray(t, dtype=float))
    v = np.atleast_2d(np.asarray(v, dtype=float))
    t_sq = kernel.quadratic(t)
    v_sq = kernel.quadratic(v)
    cross = kernel.apply(t, v)
    distances = t_sq[:, None] + v_sq[None, :] - 2.0 * cross
    if include_residual:
        # ||(I - M M^T)(t - v)||^2 = ||t - v||^2 - ||M^T (t - v)||^2,
        # expanded pairwise from norms and inner products.
        pt = t @ kernel.factor
        pv = v @ kernel.factor
        full_sq = (
            np.sum(t**2, axis=1)[:, None]
            + np.sum(v**2, axis=1)[None, :]
            - 2.0 * t @ v.T
        )
        span_sq = (
            np.sum(pt**2, axis=1)[:, None]
            + np.sum(pv**2, axis=1)[None, :]
            - 2.0 * pt @ pv.T
        )
        distances = distances + np.maximum(full_sq - span_sq, 0.0)
    return np.maximum(distances, 0.0)


def mean_manifold_distance(
    kernel: GeodesicFlowKernel, t: np.ndarray, v: np.ndarray
) -> float:
    """Eq. (4): mean of all pairwise kernel distances."""
    return float(kernel_distance_matrix(kernel, t, v).mean())


def video_similarity(
    t: np.ndarray,
    v: np.ndarray,
    subspace_dim: int = DEFAULT_SUBSPACE_DIM,
    normalise: bool = True,
    distance_scale: float = DEFAULT_DISTANCE_SCALE,
    angle_weight: float = DEFAULT_ANGLE_WEIGHT,
    cache: ArrayCache | None = None,
) -> float:
    """Eqs. (1)-(5) end to end: similarity of two feature stacks.

    The total manifold distance combines the mean kernel distance of
    Eqs. (3)-(4) with the Grassmann alignment of the two subspaces
    (mean squared sine of the most-aligned half of the principal
    angles) — see :data:`DEFAULT_ANGLE_WEIGHT` for why the alignment
    term is required when ranking across training items.

    Args:
        t: ``(k1, alpha)`` training-video frame features.
        v: ``(k2, alpha)`` incoming-video frame features.
        subspace_dim: PCA dimension ``beta``.
        normalise: L2-normalise frame features first (recommended; the
            exponential in Eq. (5) saturates otherwise).
        distance_scale: Gain on the total manifold distance.
        angle_weight: Weight of the subspace-alignment term.
        cache: Optional :class:`~repro.perf.cache.ArrayCache` memoising
            the per-stack PCA bases and the GFK factors under content
            hashes; repeated comparisons against unchanged stacks skip
            both SVDs.

    Returns:
        Similarity in ``(0, 1]``; higher means more alike.
    """
    t = np.atleast_2d(np.asarray(t, dtype=float))
    v = np.atleast_2d(np.asarray(v, dtype=float))
    if t.shape[1] != v.shape[1]:
        raise ValueError(
            f"feature dimensions differ: {t.shape[1]} vs {v.shape[1]}"
        )
    if normalise:
        t = _normalise_rows(t)
        v = _normalise_rows(v)
    x = uncentered_basis(t, subspace_dim, cache=cache)
    z = uncentered_basis(v, subspace_dim, cache=cache)
    # Rank may differ; truncate to the common dimension so the flow is
    # between subspaces of equal size, as Section III assumes.
    common = min(x.shape[1], z.shape[1])
    kernel = geodesic_flow_kernel(x[:, :common], z[:, :common], cache=cache)
    distance = mean_manifold_distance(kernel, t, v)
    aligned = np.sort(kernel.angles)[: max(1, common // 2)]
    alignment = float(np.mean(np.sin(aligned) ** 2))
    total = distance + angle_weight * alignment
    return float(np.exp(-distance_scale * total))


@dataclass
class VideoComparator:
    """Compares incoming videos against a library of training videos.

    This is the controller-side component of Section IV-B.2: it holds
    the features of every training item and, given an uploaded feature
    stack, returns per-item similarities and the best match.
    """

    subspace_dim: int = DEFAULT_SUBSPACE_DIM
    distance_scale: float = DEFAULT_DISTANCE_SCALE
    angle_weight: float = DEFAULT_ANGLE_WEIGHT
    #: Memoises training/incoming PCA bases and GFK factors across
    #: calibration passes; the training side never recomputes after
    #: the first pass, and a repeated incoming stack hits outright.
    cache: ArrayCache = field(default_factory=ArrayCache)
    _library: dict[str, np.ndarray] = field(default_factory=dict)

    def add_training_video(self, name: str, features: np.ndarray) -> None:
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if name in self._library:
            raise ValueError(f"training video {name!r} already registered")
        self._library[name] = _normalise_rows(features)

    @property
    def training_names(self) -> list[str]:
        return list(self._library)

    def similarities(self, features: np.ndarray) -> dict[str, float]:
        """Similarity of the incoming video to every training item."""
        if not self._library:
            raise RuntimeError("no training videos registered")
        incoming = _normalise_rows(features)
        return {
            name: video_similarity(
                stored,
                incoming,
                self.subspace_dim,
                normalise=False,
                distance_scale=self.distance_scale,
                angle_weight=self.angle_weight,
                cache=self.cache,
            )
            for name, stored in self._library.items()
        }

    def cache_stats(self) -> dict[str, int | float]:
        """Hit/miss counters of the calibration memo cache."""
        return self.cache.stats()

    def best_match(self, features: np.ndarray) -> tuple[str, float]:
        """Name and similarity of the closest training item."""
        sims = self.similarities(features)
        best = max(sims, key=sims.get)
        return best, sims[best]

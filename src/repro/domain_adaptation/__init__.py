"""Domain adaptation on the Grassmann manifold (Section III).

Implements the geodesic-flow-kernel video comparison the paper adopts
from Gong et al. (CVPR 2012): PCA subspaces of the two videos' frame
features are treated as points on the Grassmann manifold
``Gr(beta, R^alpha)``; the geodesic flow between them induces the
kernel ``W`` of Eq. (2); Eqs. (3)–(5) turn it into a kernel distance,
a mean manifold distance, and finally a similarity in ``[0, 1]``.
"""

from repro.domain_adaptation.gfk import geodesic_flow_kernel
from repro.domain_adaptation.manifold import principal_angles, subspace_distance
from repro.domain_adaptation.pca import PCA, pca_basis
from repro.domain_adaptation.similarity import (
    VideoComparator,
    kernel_distance_matrix,
    mean_manifold_distance,
    video_similarity,
)

__all__ = [
    "geodesic_flow_kernel",
    "principal_angles",
    "subspace_distance",
    "PCA",
    "pca_basis",
    "VideoComparator",
    "kernel_distance_matrix",
    "mean_manifold_distance",
    "video_similarity",
]

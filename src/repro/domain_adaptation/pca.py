"""Principal component analysis.

Section III projects each video's frame features onto a
``beta``-dimensional PCA subspace whose orthonormal basis is the point
on the Grassmann manifold the geodesic flow kernel compares.
"""

from __future__ import annotations

import numpy as np

from repro.perf.cache import ArrayCache, array_token


class PCA:
    """PCA via economy SVD of the centred data matrix."""

    def __init__(self, n_components: int) -> None:
        if n_components < 1:
            raise ValueError("n_components must be positive")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "PCA":
        """Fit on ``(n, d)`` data with ``n >= 2``."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"expected (n, d) data, got {data.shape}")
        n, d = data.shape
        if n < 2:
            raise ValueError("PCA needs at least two samples")
        k = min(self.n_components, n - 1, d)
        self.mean_ = data.mean(axis=0)
        centred = data - self.mean_
        # Economy SVD: centred = U S Vt, rows of Vt are components.
        _, s, vt = np.linalg.svd(centred, full_matrices=False)
        self.components_ = vt[:k]
        self.explained_variance_ = (s[:k] ** 2) / (n - 1)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("PCA.transform called before fit")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    @property
    def basis(self) -> np.ndarray:
        """Orthonormal ``(d, k)`` subspace basis (components transposed)."""
        if self.components_ is None:
            raise RuntimeError("PCA.basis accessed before fit")
        return self.components_.T


def pca_basis(data: np.ndarray, dim: int) -> np.ndarray:
    """Orthonormal ``(d, dim)`` PCA basis of ``(n, d)`` data.

    The returned basis may have fewer than ``dim`` columns when the
    data has lower rank (fewer samples than requested dimensions).
    """
    return PCA(dim).fit(data).basis


def uncentered_basis(
    data: np.ndarray, dim: int, cache: ArrayCache | None = None
) -> np.ndarray:
    """Orthonormal basis of the top singular directions, *without*
    mean-centering.

    For video comparison the static scene content (the background) is
    the discriminative part and it lives in the mean of the frame
    features; centering would project it away.  The uncentered SVD
    keeps the mean direction as the dominant basis vector, so two
    videos of the same scene yield strongly aligned subspaces.

    Args:
        data: Non-empty ``(n, d)`` feature stack.
        dim: Requested subspace dimension (capped by the data's rank).
        cache: Optional content-keyed memo cache; the SVD is skipped
            when the same (data, dim) pair was seen before.  Treat the
            returned basis as read-only when a cache is supplied.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2 or len(data) < 1:
        raise ValueError(f"expected non-empty (n, d) data, got {data.shape}")
    k = min(dim, *data.shape)
    if cache is None:
        return _uncentered_basis_svd(data, k)
    key = ("uncentered_basis", array_token(data), k)
    return cache.get_or_compute(key, lambda: _uncentered_basis_svd(data, k))


def _uncentered_basis_svd(data: np.ndarray, k: int) -> np.ndarray:
    _, _, vt = np.linalg.svd(data, full_matrices=False)
    return vt[:k].T

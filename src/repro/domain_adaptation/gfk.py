"""Geodesic flow kernel (Eq. 2 of the paper; Gong et al. CVPR 2012).

Given PCA subspace bases ``x`` (training video) and ``z`` (incoming
video), both ``(alpha, beta)`` with orthonormal columns, the geodesic
flow ``theta(y)`` interpolates between them on the Grassmann manifold.
Integrating projections along the flow (Eq. 1) yields a positive
semi-definite kernel

    W = [x U,  x_perp U2] [[L1, L2], [L2, L3]] [x U, x_perp U2]^T

whose blocks are closed-form functions of the principal angles.

``alpha`` is large (4180 for the paper's features), so this module
never materialises the ``alpha x alpha`` matrix: ``W = M B M^T`` with
``M`` of shape ``(alpha, 2*beta)``, and all kernel applications go
through the factor.  The orthogonal complement is likewise never
formed explicitly — the needed ``x_perp U2`` columns are recovered
from ``(I - x x^T) z V / sin(theta)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perf.cache import ArrayCache, array_token

_TINY_ANGLE = 1e-7


@dataclass(frozen=True)
class GeodesicFlowKernel:
    """Factorised GFK: ``W = factor @ core @ factor.T``.

    Attributes:
        factor: ``(alpha, 2*beta)`` matrix ``M = [x U, x_perp U2]``.
        core: ``(2*beta, 2*beta)`` symmetric PSD block matrix ``B``.
        angles: Principal angles between the two subspaces.
    """

    factor: np.ndarray
    core: np.ndarray
    angles: np.ndarray

    @property
    def ambient_dim(self) -> int:
        return self.factor.shape[0]

    def apply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Compute ``a @ W @ b.T`` for feature stacks ``a, b``.

        Args:
            a: ``(k1, alpha)`` features.
            b: ``(k2, alpha)`` features.

        Returns:
            ``(k1, k2)`` geodesic-flow inner products (Eq. 1).
        """
        a = np.atleast_2d(np.asarray(a, dtype=float))
        b = np.atleast_2d(np.asarray(b, dtype=float))
        if a.shape[1] != self.ambient_dim or b.shape[1] != self.ambient_dim:
            raise ValueError(
                f"features must have dim {self.ambient_dim}, got "
                f"{a.shape[1]} and {b.shape[1]}"
            )
        pa = a @ self.factor
        pb = b @ self.factor
        return pa @ self.core @ pb.T

    def quadratic(self, a: np.ndarray) -> np.ndarray:
        """Diagonal of ``a @ W @ a.T`` — per-row self inner products."""
        a = np.atleast_2d(np.asarray(a, dtype=float))
        pa = a @ self.factor
        return np.einsum("ij,jk,ik->i", pa, self.core, pa)

    def matrix(self) -> np.ndarray:
        """The explicit ``alpha x alpha`` kernel (small problems only)."""
        return self.factor @ self.core @ self.factor.T


def _flow_coefficients(
    angles: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Closed-form integrals L1, L2, L3 of the geodesic flow.

    With the flow written as ``Phi(y) = x U cos(Theta y) + Q2
    sin(Theta y)`` (where ``Q2`` is built so that ``Phi(1) = z V``),
    the integrals over ``y in [0, 1]`` are

        L1 = int cos^2   = (1 + sin(2t)/(2t)) / 2,
        L2 = int cos*sin = (1 - cos(2t)) / (4t),
        L3 = int sin^2   = (1 - sin(2t)/(2t)) / 2,

    with the ``t -> 0`` limits (1, 0, 0).
    """
    safe = np.where(angles < _TINY_ANGLE, 1.0, angles)
    sinc_term = np.sin(2 * safe) / (2 * safe)
    cos_term = (1.0 - np.cos(2 * safe)) / (2 * safe)
    l1 = 0.5 * (1.0 + sinc_term)
    l2 = 0.5 * cos_term
    l3 = 0.5 * (1.0 - sinc_term)
    tiny = angles < _TINY_ANGLE
    l1[tiny] = 1.0
    l2[tiny] = 0.0
    l3[tiny] = 0.0
    return l1, l2, l3


def geodesic_flow_kernel(
    x: np.ndarray, z: np.ndarray, cache: ArrayCache | None = None
) -> GeodesicFlowKernel:
    """Build the GFK between subspace bases ``x`` and ``z``.

    Args:
        x: ``(alpha, beta)`` orthonormal basis of the training video's
            PCA subspace.
        z: ``(alpha, beta)`` orthonormal basis of the incoming video's
            PCA subspace (the column counts may differ; the smaller
            one bounds the number of principal angles).
        cache: Optional content-keyed memo cache; the SVD and factor
            construction are skipped when the same (x, z) pair was
            seen before.  The cached :class:`GeodesicFlowKernel` is
            returned by reference — treat it as immutable.

    Returns:
        A factorised :class:`GeodesicFlowKernel`.
    """
    x = np.asarray(x, dtype=float)
    z = np.asarray(z, dtype=float)
    if x.ndim != 2 or z.ndim != 2:
        raise ValueError("bases must be 2-D (alpha, beta) arrays")
    if x.shape[0] != z.shape[0]:
        raise ValueError(
            f"bases live in different ambient spaces: {x.shape} vs {z.shape}"
        )
    if cache is not None:
        key = ("gfk", array_token(x), array_token(z))
        return cache.get_or_compute(key, lambda: _build_kernel(x, z))
    return _build_kernel(x, z)


def _build_kernel(x: np.ndarray, z: np.ndarray) -> GeodesicFlowKernel:
    alpha = x.shape[0]

    # SVD of x^T z gives U (rotation inside span(x)), the cosines, and V.
    u, cosines, vt = np.linalg.svd(x.T @ z)
    v = vt.T
    cosines = np.clip(cosines, -1.0, 1.0)
    angles = np.arccos(cosines)
    beta = len(angles)

    # Recover x_perp @ U2 without forming the (alpha, alpha-beta)
    # complement:  (I - x x^T) z V has orthogonal columns with norms
    # sin(theta_i); normalising yields exactly x_perp U2.  Columns with
    # sin(theta) ~ 0 contribute nothing (their L2/L3 coefficients
    # vanish), so they are zeroed rather than divided.
    residual = z @ v - x @ (x.T @ (z @ v))
    sines = np.sin(angles)
    q2 = np.zeros_like(residual)
    nonzero = sines > _TINY_ANGLE
    q2[:, nonzero] = residual[:, nonzero] / sines[nonzero]

    factor = np.hstack([x @ u[:, :beta], q2])

    l1, l2, l3 = _flow_coefficients(angles)
    core = np.zeros((2 * beta, 2 * beta))
    core[:beta, :beta] = np.diag(l1)
    core[:beta, beta:] = np.diag(l2)
    core[beta:, :beta] = np.diag(l2)
    core[beta:, beta:] = np.diag(l3)

    assert factor.shape == (alpha, 2 * beta)
    return GeodesicFlowKernel(factor=factor, core=core, angles=angles)

"""Grassmann manifold utilities.

Subspaces with orthonormal bases ``x`` and ``z`` (both ``(alpha,
beta)``) are points on ``Gr(beta, R^alpha)``; the principal angles
between them determine both the geodesic distance and the geodesic
flow kernel of Section III.
"""

from __future__ import annotations

import numpy as np


def orthonormalize(basis: np.ndarray) -> np.ndarray:
    """Return an orthonormal basis spanning the same columns (thin QR)."""
    basis = np.asarray(basis, dtype=float)
    q, r = np.linalg.qr(basis)
    # Flip signs so the decomposition is deterministic.
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return q * signs


def principal_angles(x: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Principal angles between two subspaces, ascending, in radians.

    Args:
        x: ``(alpha, b1)`` orthonormal basis.
        z: ``(alpha, b2)`` orthonormal basis.

    Returns:
        ``min(b1, b2)`` angles in ``[0, pi/2]``.
    """
    x = np.asarray(x, dtype=float)
    z = np.asarray(z, dtype=float)
    if x.shape[0] != z.shape[0]:
        raise ValueError(
            f"bases live in different ambient spaces: {x.shape} vs {z.shape}"
        )
    cosines = np.linalg.svd(x.T @ z, compute_uv=False)
    cosines = np.clip(cosines, -1.0, 1.0)
    return np.sort(np.arccos(cosines))


def subspace_distance(x: np.ndarray, z: np.ndarray) -> float:
    """Geodesic (arc-length) distance: sqrt(sum of squared angles)."""
    angles = principal_angles(x, z)
    return float(np.sqrt(np.sum(angles**2)))


def projection_frobenius_distance(x: np.ndarray, z: np.ndarray) -> float:
    """Chordal distance ``(1/sqrt(2)) * ||xx^T - zz^T||_F``."""
    angles = principal_angles(x, z)
    return float(np.sqrt(np.sum(np.sin(angles) ** 2)))

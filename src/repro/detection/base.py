"""Core detection types: bounding boxes, detections, the Detector ABC."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.world.renderer import FrameObservation


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned box ``(x, y, w, h)`` in pixel coordinates."""

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"box dimensions must be non-negative: {self}")

    @property
    def area(self) -> float:
        return self.w * self.h

    @property
    def x2(self) -> float:
        return self.x + self.w

    @property
    def y2(self) -> float:
        return self.y + self.h

    @property
    def bottom_center(self) -> tuple[float, float]:
        """Centre of the bottom edge — the paper's ground-contact point
        used for homography projection between views (Section IV-C)."""
        return (self.x + self.w / 2.0, self.y + self.h)

    def iou(self, other: "BoundingBox") -> float:
        """Intersection over union with another box."""
        ix = max(0.0, min(self.x2, other.x2) - max(self.x, other.x))
        iy = max(0.0, min(self.y2, other.y2) - max(self.y, other.y))
        inter = ix * iy
        union = self.area + other.area - inter
        if union <= 0:
            return 0.0
        return inter / union

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.x, self.y, self.w, self.h)

    @classmethod
    def from_tuple(
        cls, values: tuple[float, float, float, float]
    ) -> "BoundingBox":
        return cls(*values)


@dataclass
class Detection:
    """One scored detection emitted by a detector on one frame.

    Attributes:
        bbox: Detected area.
        score: Raw detector confidence (algorithm-specific scale).
        camera_id: Originating camera.
        frame_index: Frame the detection belongs to.
        algorithm: Name of the producing algorithm.
        color_feature: 40-dim appearance feature of the area (the
            paper's 160-byte per-object metadata payload).
        probability: Calibrated probability that the area is a true
            object; filled in by a :class:`ScoreCalibrator`.
        truth_id: Ground-truth person id for true positives, ``None``
            for false positives.  Used only by evaluation code — the
            controller never reads it.
    """

    bbox: BoundingBox
    score: float
    camera_id: str
    frame_index: int
    algorithm: str
    color_feature: np.ndarray = field(
        default_factory=lambda: np.zeros(40)
    )
    probability: float = float("nan")
    truth_id: int | None = None

    @property
    def is_true_positive(self) -> bool:
        """Ground-truth label (evaluation only)."""
        return self.truth_id is not None

    def metadata_bytes(self) -> int:
        """Size of the per-object metadata uploaded to the controller:
        8 B box + 4 B probability + 160 B colour feature (Section V-A)."""
        return 8 + 4 + 4 * len(self.color_feature)


class Detector(abc.ABC):
    """Abstract detection algorithm running on a camera sensor."""

    name: str = "abstract"

    @abc.abstractmethod
    def detect(
        self,
        observation: FrameObservation,
        rng: np.random.Generator,
        threshold: float | None = None,
    ) -> list[Detection]:
        """Detect objects in one frame observation.

        Args:
            observation: The rendered frame with its object views.
            rng: Randomness source for score noise.
            threshold: Optional score cut-off; when ``None`` all scored
                candidates are returned (callers sweep thresholds).
        """

    def detect_batch(self, tasks) -> list[list[Detection]]:
        """Run many self-seeded detection tasks; results in task order.

        ``tasks`` are :class:`~repro.detection.batch.DetectionTask`
        records (or anything with ``observation`` / ``entropy`` /
        ``threshold``).  The default seeds one generator per task and
        loops :meth:`detect`; batch-aware detectors override this to
        vectorise shared work across the group.  Either way the
        results are bit-identical — every task's generator depends
        only on its own entropy.
        """
        return [
            self.detect(
                task.observation,
                np.random.default_rng(list(task.entropy)),
                threshold=task.threshold,
            )
            for task in tasks
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"

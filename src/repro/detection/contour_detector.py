"""A C4-style contour-cue person detector.

C4 [Wu, Geyer, Rehg — ICRA 2011] detects humans in real time from
contour cues alone.  This reproduction uses the classic chamfer-
matching formulation of contour detection: an edge map of the frame
is turned into a distance transform, and a person-silhouette template
(an outline of head and body, in canonical window coordinates) is
slid over it — a window scores highly when every template point lies
close to some observed edge.  Scores are negated mean chamfer
distances, so higher is better like the other detectors.

No training is needed beyond the fixed silhouette, which matches C4's
spirit: contours generalise across appearance, which is why the paper
finds it strong on clean outdoor scenes and weaker amid furniture
clutter (any box-shaped edge cluster looks vaguely like a torso).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.detection.base import BoundingBox, Detection, Detector
from repro.vision.color import mean_color_feature
from repro.vision.image import image_gradients, resize_bilinear
from repro.vision.nms import non_max_suppression
from repro.world.renderer import FrameObservation

#: Canonical silhouette window in pixels (width, height).
WINDOW_PX = (16, 32)
#: Stride of window placements, in pixels of the scanned scale.
STRIDE = 2


def person_silhouette(num_points: int = 64) -> np.ndarray:
    """Template contour points ``(x, y)`` in the canonical window.

    The silhouette mirrors how people appear in this world's frames:
    an upright body outline (two long vertical contours plus top and
    bottom edges) with the head/shoulder boundary — the contour
    structure C4-style chamfer matching keys on.  A different domain
    (real video) would swap in its own silhouette; the matcher is
    template-agnostic.
    """
    w, h = WINDOW_PX
    left, right = w * 0.25, w * 0.75
    top, bottom = h * 0.05, h * 0.95
    head_line = h * 0.2
    points = []
    # Vertical body sides carry most of the points.
    for frac in np.linspace(top / h, bottom / h, num_points // 3):
        y = h * frac
        points.append((left, y))
        points.append((right, y))
    # Top of head, head/body boundary and feet line.
    for x in np.linspace(left, right, num_points // 9):
        points.append((x, top))
        points.append((x, head_line))
        points.append((x, bottom))
    pts = np.array(points)
    pts[:, 0] = np.clip(pts[:, 0], 0, w - 1)
    pts[:, 1] = np.clip(pts[:, 1], 0, h - 1)
    return pts


def edge_distance_transform(
    image: np.ndarray, edge_percentile: float = 80.0
) -> np.ndarray:
    """Distance (in pixels) from each pixel to the nearest edge."""
    image = np.asarray(image, dtype=float)
    gx, gy = image_gradients(image)
    magnitude = np.hypot(gx, gy)
    if magnitude.max() <= 1e-12:
        return np.full(image.shape, float(max(image.shape)))
    threshold = np.percentile(magnitude, edge_percentile)
    edges = magnitude >= max(threshold, 1e-9)
    if not edges.any():
        return np.full(image.shape, float(max(image.shape)))
    return ndimage.distance_transform_edt(~edges)


class ContourDetector(Detector):
    """Chamfer-matching silhouette detector."""

    name = "C4-window"

    def __init__(
        self,
        scales: tuple[float, ...] = (1.3, 1.0, 0.75, 0.55, 0.4),
        nms_iou: float = 0.4,
        max_chamfer: float = 4.0,
        num_template_points: int = 64,
    ) -> None:
        """
        Args:
            scales: Pyramid factors applied to the render canvas.
            nms_iou: Non-maximum-suppression overlap threshold.
            max_chamfer: Distances are clipped here before averaging
                (standard robust chamfer matching).
            num_template_points: Silhouette sampling density.
        """
        self.scales = scales
        self.nms_iou = nms_iou
        self.max_chamfer = max_chamfer
        self.template = person_silhouette(num_template_points)

    def _score_map(self, distance: np.ndarray) -> np.ndarray:
        """Negative mean clipped chamfer distance per window origin."""
        h, w = distance.shape
        win_w, win_h = WINDOW_PX
        out_h = (h - win_h) // STRIDE + 1
        out_w = (w - win_w) // STRIDE + 1
        if out_h <= 0 or out_w <= 0:
            return np.zeros((0, 0))
        clipped = np.minimum(distance, self.max_chamfer)
        acc = np.zeros((out_h, out_w))
        origins_y = np.arange(out_h) * STRIDE
        origins_x = np.arange(out_w) * STRIDE
        for px, py in self.template:
            rows = origins_y + int(round(py))
            cols = origins_x + int(round(px))
            acc += clipped[np.ix_(rows, cols)]
        mean_chamfer = acc / len(self.template)
        return -mean_chamfer

    def detect(
        self,
        observation: FrameObservation,
        rng: np.random.Generator,
        threshold: float | None = None,
    ) -> list[Detection]:
        cut = -2.0 if threshold is None else threshold
        image = observation.image
        canvas_boxes = []
        scores = []
        for scale in self.scales:
            scaled = (
                image
                if scale == 1.0
                else resize_bilinear(
                    image,
                    max(WINDOW_PX[0], int(image.shape[1] * scale)),
                    max(WINDOW_PX[1], int(image.shape[0] * scale)),
                )
            )
            distance = edge_distance_transform(scaled)
            score_map = self._score_map(distance)
            if score_map.size == 0:
                continue
            ys, xs = np.nonzero(score_map >= cut)
            win_w = WINDOW_PX[0] / scale
            win_h = WINDOW_PX[1] / scale
            for y, x in zip(ys, xs):
                canvas_boxes.append((
                    x * STRIDE / scale,
                    y * STRIDE / scale,
                    win_w,
                    win_h,
                ))
                scores.append(float(score_map[y, x]))
        if not canvas_boxes:
            return []
        keep = non_max_suppression(
            np.array(canvas_boxes), np.array(scores), self.nms_iou
        )
        detections = []
        inv_scale = 1.0 / observation.image_scale
        truth_boxes = [
            (view.person_id, view.bbox) for view in observation.objects
        ]
        for idx in keep:
            cx, cy, cw, ch = canvas_boxes[idx]
            nominal = BoundingBox(
                cx * inv_scale, cy * inv_scale,
                cw * inv_scale, ch * inv_scale,
            )
            truth_id = None
            best_iou = 0.3
            for person_id, bbox in truth_boxes:
                iou = nominal.iou(BoundingBox.from_tuple(bbox))
                if iou > best_iou:
                    best_iou = iou
                    truth_id = person_id
            detections.append(
                Detection(
                    bbox=nominal,
                    score=scores[idx],
                    camera_id=observation.camera_id,
                    frame_index=observation.frame_index,
                    algorithm=self.name,
                    color_feature=mean_color_feature(
                        observation.image, (cx, cy, cw, ch)
                    ),
                    truth_id=truth_id,
                )
            )
        detections.sort(key=lambda d: -d.score)
        return detections

"""An ACF-style aggregated-channel-features detector.

The second real pixel-level detector (next to the sliding-window HOG
of :mod:`repro.detection.window_detector`): per-pixel channels —
intensity, gradient magnitude, and orientation-binned gradient
magnitude — are sum-pooled into 4x4-pixel cells ("aggregated
channels"), and a boosted ensemble of decision stumps scores each
person-shaped window of the cell grid.  This is the architecture that
makes the paper's ACF an order of magnitude cheaper than HOG: no
per-window normalisation, and window scoring is a handful of table
lookups per stump.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.detection.base import BoundingBox, Detection, Detector
from repro.detection.boosting import AdaBoostStumps
from repro.detection.window_detector import _box_iou
from repro.vision.color import mean_color_feature
from repro.vision.image import crop, image_gradients, resize_bilinear
from repro.vision.nms import non_max_suppression
from repro.world.renderer import FrameObservation

#: Pixels per aggregation cell.
AGG_CELL = 4
#: Orientation channels (plus magnitude plus intensity).
NUM_ORIENTATIONS = 6
NUM_CHANNELS = NUM_ORIENTATIONS + 2
#: Person window in aggregation cells: 4 wide x 8 tall (16 x 32 px).
WINDOW_CELLS = (4, 8)
WINDOW_DIM = WINDOW_CELLS[0] * WINDOW_CELLS[1] * NUM_CHANNELS
WINDOW_PX = (WINDOW_CELLS[0] * AGG_CELL, WINDOW_CELLS[1] * AGG_CELL)


def compute_channels(image: np.ndarray) -> np.ndarray:
    """Per-pixel channel stack, shape ``(h, w, NUM_CHANNELS)``."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected 2-D image, got shape {image.shape}")
    gx, gy = image_gradients(image)
    magnitude = np.hypot(gx, gy)
    orientation = np.mod(np.arctan2(gy, gx), np.pi)
    bins = np.minimum(
        (orientation / np.pi * NUM_ORIENTATIONS).astype(int),
        NUM_ORIENTATIONS - 1,
    )
    channels = np.zeros(image.shape + (NUM_CHANNELS,))
    channels[..., 0] = image
    channels[..., 1] = magnitude
    for b in range(NUM_ORIENTATIONS):
        channels[..., 2 + b] = np.where(bins == b, magnitude, 0.0)
    return channels


def aggregate_channels(channels: np.ndarray) -> np.ndarray:
    """Sum-pool channels into ``AGG_CELL`` x ``AGG_CELL`` cells."""
    h, w, c = channels.shape
    cells_y, cells_x = h // AGG_CELL, w // AGG_CELL
    if cells_y == 0 or cells_x == 0:
        return np.zeros((0, 0, c))
    trimmed = channels[: cells_y * AGG_CELL, : cells_x * AGG_CELL]
    return trimmed.reshape(
        cells_y, AGG_CELL, cells_x, AGG_CELL, c
    ).sum(axis=(1, 3))


def window_descriptor(patch: np.ndarray) -> np.ndarray:
    """The flat window feature of a patch resized to the canonical
    16x32 person window."""
    canon = resize_bilinear(patch, WINDOW_PX[0], WINDOW_PX[1])
    aggregated = aggregate_channels(compute_channels(canon))
    return aggregated.reshape(-1)


class ChannelFeatureDetector(Detector):
    """Boosted aggregated-channel-features person detector."""

    name = "ACF-window"

    def __init__(
        self,
        classifier: AdaBoostStumps,
        scales: tuple[float, ...] = (1.3, 1.0, 0.75, 0.55, 0.4),
        nms_iou: float = 0.4,
    ) -> None:
        if not classifier.is_fitted:
            raise ValueError("classifier must be fitted")
        self.classifier = classifier
        self.scales = scales
        self.nms_iou = nms_iou

    @classmethod
    def train(
        cls,
        observations: list[FrameObservation],
        rng: np.random.Generator,
        n_stumps: int = 96,
        negatives_per_frame: int = 8,
    ) -> "ChannelFeatureDetector":
        """Train from rendered frames, like the HOG window detector."""
        positives = []
        negatives = []
        for obs in observations:
            scale = obs.image_scale
            h, w = obs.image.shape
            person_boxes = []
            for view in obs.objects:
                if view.occlusion > 0.3:
                    continue
                bx, by, bw, bh = view.bbox
                canvas_box = (bx * scale, by * scale, bw * scale, bh * scale)
                patch = crop(obs.image, canvas_box)
                if patch.shape[0] < 10 or patch.shape[1] < 5:
                    continue
                positives.append(window_descriptor(patch))
                person_boxes.append(canvas_box)
            for _ in range(negatives_per_frame):
                nh = rng.uniform(0.2, 0.6) * h
                nw = nh * 0.5
                nx = rng.uniform(0, max(1.0, w - nw))
                ny = rng.uniform(0, max(1.0, h - nh))
                candidate = (nx, ny, nw, nh)
                if any(
                    _box_iou(candidate, person) > 0.2
                    for person in person_boxes
                ):
                    continue
                patch = crop(obs.image, candidate)
                if patch.size:
                    negatives.append(window_descriptor(patch))
        if not positives or not negatives:
            raise ValueError(
                "not enough training crops; provide more observations"
            )
        features = np.vstack([positives, negatives])
        labels = np.concatenate([
            np.ones(len(positives)), -np.ones(len(negatives))
        ])
        classifier = AdaBoostStumps(n_stumps=n_stumps).fit(features, labels)
        return cls(classifier)

    def detect(
        self,
        observation: FrameObservation,
        rng: np.random.Generator,
        threshold: float | None = None,
    ) -> list[Detection]:
        cut = 0.0 if threshold is None else threshold
        image = observation.image
        canvas_boxes = []
        scores = []
        wx, wy = WINDOW_CELLS
        for scale in self.scales:
            scaled = (
                image
                if scale == 1.0
                else resize_bilinear(
                    image,
                    max(WINDOW_PX[0], int(image.shape[1] * scale)),
                    max(WINDOW_PX[1], int(image.shape[0] * scale)),
                )
            )
            grid = aggregate_channels(compute_channels(scaled))
            if grid.shape[0] < wy or grid.shape[1] < wx:
                continue
            view = sliding_window_view(grid, (wy, wx, NUM_CHANNELS))
            windows = view.reshape(view.shape[0], view.shape[1], WINDOW_DIM)
            score_map = self.classifier.score_tensor(windows)
            ys, xs = np.nonzero(score_map >= cut)
            win_w = WINDOW_PX[0] / scale
            win_h = WINDOW_PX[1] / scale
            for y, x in zip(ys, xs):
                canvas_boxes.append((
                    x * AGG_CELL / scale,
                    y * AGG_CELL / scale,
                    win_w,
                    win_h,
                ))
                scores.append(float(score_map[y, x]))
        if not canvas_boxes:
            return []
        keep = non_max_suppression(
            np.array(canvas_boxes), np.array(scores), self.nms_iou
        )
        detections = []
        inv_scale = 1.0 / observation.image_scale
        truth_boxes = [
            (view.person_id, view.bbox) for view in observation.objects
        ]
        for idx in keep:
            cx, cy, cw, ch = canvas_boxes[idx]
            nominal = BoundingBox(
                cx * inv_scale, cy * inv_scale,
                cw * inv_scale, ch * inv_scale,
            )
            truth_id = None
            best_iou = 0.3
            for person_id, bbox in truth_boxes:
                iou = nominal.iou(BoundingBox.from_tuple(bbox))
                if iou > best_iou:
                    best_iou = iou
                    truth_id = person_id
            detections.append(
                Detection(
                    bbox=nominal,
                    score=scores[idx],
                    camera_id=observation.camera_id,
                    frame_index=observation.frame_index,
                    algorithm=self.name,
                    color_feature=mean_color_feature(
                        observation.image, (cx, cy, cw, ch)
                    ),
                    truth_id=truth_id,
                )
            )
        detections.sort(key=lambda d: -d.score)
        return detections

"""An LSVM-style part-based person detector (mini-DPM).

The paper's most accurate (and most expensive) algorithm is the
deformable-parts model of Felzenszwalb et al.: a coarse root HOG
template plus part templates that may shift around their anchors.
This reproduction keeps the essential structure:

* a root filter over the full canonical window (ridge-trained, as in
  :mod:`repro.detection.window_detector`);
* two part filters — head region and legs region — trained on the
  corresponding sub-blocks of the window descriptor;
* at detection time each part's dense score map is max-pooled over a
  small displacement neighbourhood around its anchor (free
  deformation within the pool, the poor man's generalised distance
  transform), and added to the root score.

Scanning three templates plus pooling makes it the slowest of the
real detectors, mirroring LSVM's position in Tables II-III; occluded
people keep partial score through the unoccluded part, mirroring
DPM's robustness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view
from scipy import ndimage

from repro.detection.base import BoundingBox, Detection, Detector
from repro.detection.window_detector import (
    BLOCK_DIM,
    WINDOW_BLOCKS,
    _box_iou,
    block_grid,
)
from repro.vision.color import mean_color_feature
from repro.vision.hog import hog_descriptor
from repro.vision.image import crop, resize_bilinear
from repro.vision.nms import non_max_suppression
from repro.world.renderer import FrameObservation

#: Part definitions: (name, anchor_row, num_rows) in window blocks.
#: The window is 7 blocks wide x 15 tall; the head part covers the
#: top five rows, the legs part the bottom five.
PART_SPECS = (
    ("head", 0, 5),
    ("legs", 10, 5),
)
#: Part displacement tolerance (blocks) — the max-pool radius.
PART_SLACK = 1


def _ridge_fit(
    positives: np.ndarray, negatives: np.ndarray, l2: float
) -> tuple[np.ndarray, float]:
    """Dual ridge regression returning (weights, bias)."""
    x = np.vstack([positives, negatives])
    y = np.concatenate([np.ones(len(positives)), -np.ones(len(negatives))])
    mean = x.mean(axis=0)
    xc = x - mean
    gram = xc @ xc.T + l2 * np.eye(len(x))
    alpha = np.linalg.solve(gram, y)
    w = xc.T @ alpha
    return w, float(-w @ mean)


@dataclass
class PartFilter:
    """One part template over a sub-region of the window."""

    name: str
    anchor_row: int
    num_rows: int
    weights: np.ndarray  # (num_rows, window_width_blocks, BLOCK_DIM)
    bias: float

    def score_map(self, blocks: np.ndarray) -> np.ndarray:
        """Dense part scores over a block grid."""
        rows, cols = self.num_rows, WINDOW_BLOCKS[0]
        if blocks.shape[0] < rows or blocks.shape[1] < cols:
            return np.zeros((0, 0))
        view = sliding_window_view(blocks, (rows, cols, BLOCK_DIM))
        windows = view.reshape(
            view.shape[0], view.shape[1], rows, cols, BLOCK_DIM
        )
        return (
            np.einsum("yxabc,abc->yx", windows, self.weights) + self.bias
        )


class PartBasedDetector(Detector):
    """Root + parts detector in the DPM mould."""

    name = "LSVM-window"

    def __init__(
        self,
        root_weights: np.ndarray,
        root_bias: float,
        parts: list[PartFilter],
        scales: tuple[float, ...] = (4.5, 3.6, 2.8, 2.2, 1.7),
        nms_iou: float = 0.4,
        part_weight: float = 0.5,
    ) -> None:
        expected = (WINDOW_BLOCKS[1], WINDOW_BLOCKS[0], BLOCK_DIM)
        if root_weights.shape != expected:
            raise ValueError(
                f"root weights must be {expected}, got {root_weights.shape}"
            )
        self.root_weights = root_weights
        self.root_bias = root_bias
        self.parts = parts
        self.scales = scales
        self.nms_iou = nms_iou
        self.part_weight = part_weight

    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        observations: list[FrameObservation],
        rng: np.random.Generator,
        negatives_per_frame: int = 6,
        l2: float = 1.0,
    ) -> "PartBasedDetector":
        """Train the root and part filters from rendered frames."""
        positives = []
        negatives = []
        for obs in observations:
            scale = obs.image_scale
            h, w = obs.image.shape
            person_boxes = []
            for view in obs.objects:
                # Unlike the rigid template, keep partially occluded
                # examples: parts are the point.
                if view.occlusion > 0.55:
                    continue
                bx, by, bw, bh = view.bbox
                canvas_box = (bx * scale, by * scale, bw * scale, bh * scale)
                patch = crop(obs.image, canvas_box)
                if patch.shape[0] < 12 or patch.shape[1] < 6:
                    continue
                positives.append(hog_descriptor(patch))
                person_boxes.append(canvas_box)
            for _ in range(negatives_per_frame):
                nh = rng.uniform(0.25, 0.6) * h
                nw = nh * 0.5
                nx = rng.uniform(0, max(1.0, w - nw))
                ny = rng.uniform(0, max(1.0, h - nh))
                candidate = (nx, ny, nw, nh)
                if any(
                    _box_iou(candidate, person) for person in person_boxes
                ):
                    continue
                patch = crop(obs.image, candidate)
                if patch.size:
                    negatives.append(hog_descriptor(patch))
        if not positives or not negatives:
            raise ValueError(
                "not enough training crops; provide more observations"
            )
        pos = np.stack(positives)
        neg = np.stack(negatives)

        root_w, root_b = _ridge_fit(pos, neg, l2)
        root_weights = root_w.reshape(
            WINDOW_BLOCKS[1], WINDOW_BLOCKS[0], BLOCK_DIM
        )

        parts = []
        grid_shape = (WINDOW_BLOCKS[1], WINDOW_BLOCKS[0], BLOCK_DIM)
        pos_grid = pos.reshape(len(pos), *grid_shape)
        neg_grid = neg.reshape(len(neg), *grid_shape)
        for name, anchor, rows in PART_SPECS:
            pos_part = pos_grid[:, anchor : anchor + rows].reshape(
                len(pos), -1
            )
            neg_part = neg_grid[:, anchor : anchor + rows].reshape(
                len(neg), -1
            )
            w, b = _ridge_fit(pos_part, neg_part, l2)
            parts.append(
                PartFilter(
                    name=name,
                    anchor_row=anchor,
                    num_rows=rows,
                    weights=w.reshape(rows, WINDOW_BLOCKS[0], BLOCK_DIM),
                    bias=b,
                )
            )
        return cls(root_weights, root_b, parts)

    # ------------------------------------------------------------------
    def _combined_score_map(self, blocks: np.ndarray) -> np.ndarray:
        """Root scores plus max-pooled part scores at their anchors."""
        wy, wx = WINDOW_BLOCKS[1], WINDOW_BLOCKS[0]
        if blocks.shape[0] < wy or blocks.shape[1] < wx:
            return np.zeros((0, 0))
        view = sliding_window_view(blocks, (wy, wx, BLOCK_DIM))
        windows = view.reshape(
            view.shape[0], view.shape[1], wy, wx, BLOCK_DIM
        )
        score = (
            np.einsum("yxabc,abc->yx", windows, self.root_weights)
            + self.root_bias
        )
        pool = 2 * PART_SLACK + 1
        for part in self.parts:
            part_map = part.score_map(blocks)
            if part_map.size == 0:
                continue
            pooled = ndimage.maximum_filter(part_map, size=pool)
            # The part map for anchor row r aligns with root origin y
            # at pooled[y + r, x]; crop to the root map's extent.
            shifted = pooled[
                part.anchor_row : part.anchor_row + score.shape[0],
                : score.shape[1],
            ]
            pad_y = score.shape[0] - shifted.shape[0]
            if pad_y > 0:
                shifted = np.pad(shifted, ((0, pad_y), (0, 0)), mode="edge")
            score = score + self.part_weight * shifted
        return score

    def detect(
        self,
        observation: FrameObservation,
        rng: np.random.Generator,
        threshold: float | None = None,
    ) -> list[Detection]:
        cut = 0.0 if threshold is None else threshold
        image = observation.image
        canvas_boxes = []
        scores = []
        from repro.vision.hog import CELL_SIZE, HOG_WINDOW

        for scale in self.scales:
            scaled = resize_bilinear(
                image,
                max(HOG_WINDOW[0], int(image.shape[1] * scale)),
                max(HOG_WINDOW[1], int(image.shape[0] * scale)),
            )
            blocks = block_grid(scaled)
            score_map = self._combined_score_map(blocks)
            if score_map.size == 0:
                continue
            ys, xs = np.nonzero(score_map >= cut)
            win_w = HOG_WINDOW[0] / scale
            win_h = HOG_WINDOW[1] / scale
            for y, x in zip(ys, xs):
                canvas_boxes.append((
                    x * CELL_SIZE / scale,
                    y * CELL_SIZE / scale,
                    win_w,
                    win_h,
                ))
                scores.append(float(score_map[y, x]))
        if not canvas_boxes:
            return []
        keep = non_max_suppression(
            np.array(canvas_boxes), np.array(scores), self.nms_iou
        )
        detections = []
        inv_scale = 1.0 / observation.image_scale
        truth_boxes = [
            (view.person_id, view.bbox) for view in observation.objects
        ]
        for idx in keep:
            cx, cy, cw, ch = canvas_boxes[idx]
            nominal = BoundingBox(
                cx * inv_scale, cy * inv_scale,
                cw * inv_scale, ch * inv_scale,
            )
            truth_id = None
            best_iou = 0.3
            for person_id, bbox in truth_boxes:
                iou = nominal.iou(BoundingBox.from_tuple(bbox))
                if iou > best_iou:
                    best_iou = iou
                    truth_id = person_id
            detections.append(
                Detection(
                    bbox=nominal,
                    score=scores[idx],
                    camera_id=observation.camera_id,
                    frame_index=observation.frame_index,
                    algorithm=self.name,
                    color_feature=mean_color_feature(
                        observation.image, (cx, cy, cw, ch)
                    ),
                    truth_id=truth_id,
                )
            )
        detections.sort(key=lambda d: -d.score)
        return detections

"""Score-to-probability calibration.

The paper converts detection scores into detection probabilities "via
an offline training process" (footnote 5); those probabilities feed
the multi-camera fusion of Eq. (6).  This module implements a
one-dimensional logistic calibration fitted with Newton-Raphson on
labelled (score, is-true-positive) pairs collected during offline
training.
"""

from __future__ import annotations

import numpy as np


class ScoreCalibrator:
    """Logistic mapping from raw detector score to P(true positive)."""

    def __init__(self) -> None:
        self.weight: float = 1.0
        self.bias: float = 0.0
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def restore(self, weight: float, bias: float) -> "ScoreCalibrator":
        """Adopt previously fitted parameters.

        The persistence layer's counterpart to :meth:`fit`: a
        calibrator serialised as ``(weight, bias)`` comes back fitted
        without callers reaching into private state.  Returns ``self``
        for chaining.
        """
        self.weight = float(weight)
        self.bias = float(bias)
        self._fitted = True
        return self

    def fit(
        self,
        scores: np.ndarray,
        labels: np.ndarray,
        max_iterations: int = 50,
        l2: float = 1e-3,
    ) -> "ScoreCalibrator":
        """Fit by penalised maximum likelihood.

        Args:
            scores: Raw detector scores.
            labels: 1 for true positives, 0 for false positives.
            max_iterations: Newton iteration cap.
            l2: Ridge penalty keeping the fit stable when classes are
                separable (common for high-precision detectors).
        """
        scores = np.asarray(scores, dtype=float).ravel()
        labels = np.asarray(labels, dtype=float).ravel()
        if scores.shape != labels.shape:
            raise ValueError("scores and labels must have the same length")
        if len(scores) < 2:
            raise ValueError("need at least two samples to calibrate")
        if not np.all((labels == 0) | (labels == 1)):
            raise ValueError("labels must be 0 or 1")
        if np.all(labels == labels[0]):
            # Single-class data: fall back to a confident constant.
            self.weight = 0.0
            self.bias = 4.0 if labels[0] == 1 else -4.0
            self._fitted = True
            return self

        # Standardise scores for conditioning; fold back afterwards.
        mu, sd = scores.mean(), scores.std()
        sd = sd if sd > 1e-9 else 1.0
        x = (scores - mu) / sd

        w, b = 0.0, 0.0
        for _ in range(max_iterations):
            logits = w * x + b
            p = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
            grad_w = np.sum((p - labels) * x) + l2 * w
            grad_b = np.sum(p - labels)
            s = np.maximum(p * (1 - p), 1e-6)
            h_ww = np.sum(s * x * x) + l2
            h_wb = np.sum(s * x)
            h_bb = np.sum(s)
            det = h_ww * h_bb - h_wb**2
            if abs(det) < 1e-12:
                break
            dw = (h_bb * grad_w - h_wb * grad_b) / det
            db = (h_ww * grad_b - h_wb * grad_w) / det
            w -= dw
            b -= db
            if abs(dw) + abs(db) < 1e-9:
                break

        self.weight = w / sd
        self.bias = b - w * mu / sd
        self._fitted = True
        return self

    def predict_proba(self, scores: np.ndarray) -> np.ndarray:
        """P(true positive) for raw scores."""
        if not self._fitted:
            raise RuntimeError("ScoreCalibrator used before fit")
        scores = np.asarray(scores, dtype=float)
        logits = self.weight * scores + self.bias
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))

    def __call__(self, score: float) -> float:
        return float(self.predict_proba(np.array([score]))[0])

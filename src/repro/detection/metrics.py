"""Detection accuracy metrics: precision, recall, f_score, sweeps.

Matches detections to ground-truth boxes greedily by IoU (highest
score first) and accumulates true/false positives and misses; a
threshold sweep then finds the f_score-maximising cut-off ``d_t`` the
paper uses per (algorithm, training video) pair (Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.base import BoundingBox, Detection

DEFAULT_IOU_THRESHOLD = 0.4


@dataclass
class DetectionCounts:
    """Accumulated detection outcomes."""

    tp: int = 0
    fp: int = 0
    fn: int = 0

    @property
    def precision(self) -> float:
        total = self.tp + self.fp
        return self.tp / total if total else 0.0

    @property
    def recall(self) -> float:
        total = self.tp + self.fn
        return self.tp / total if total else 0.0

    @property
    def f_score(self) -> float:
        return f_score(self.recall, self.precision)

    def add(self, other: "DetectionCounts") -> "DetectionCounts":
        return DetectionCounts(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
        )


def f_score(recall: float, precision: float) -> float:
    """The harmonic mean the paper balances precision and recall with."""
    if recall + precision <= 0:
        return 0.0
    return 2.0 * recall * precision / (recall + precision)


def match_detections(
    detections: list[Detection],
    ground_truth: list[BoundingBox],
    iou_threshold: float = DEFAULT_IOU_THRESHOLD,
) -> DetectionCounts:
    """Greedy IoU matching of one frame's detections to its truth boxes.

    Each ground-truth box absorbs at most one detection; detections
    are considered in decreasing score order.
    """
    counts = DetectionCounts()
    available = list(range(len(ground_truth)))
    for det in sorted(detections, key=lambda d: -d.score):
        best_iou = 0.0
        best_idx = None
        for idx in available:
            iou = det.bbox.iou(ground_truth[idx])
            if iou > best_iou:
                best_iou = iou
                best_idx = idx
        if best_idx is not None and best_iou >= iou_threshold:
            counts.tp += 1
            available.remove(best_idx)
        else:
            counts.fp += 1
    counts.fn = len(available)
    return counts


def precision_recall(
    frames: list[tuple[list[Detection], list[BoundingBox]]],
    threshold: float,
    iou_threshold: float = DEFAULT_IOU_THRESHOLD,
) -> DetectionCounts:
    """Accumulate counts over frames, applying a score cut-off.

    Args:
        frames: Pairs of (all scored detections, ground-truth boxes).
        threshold: Minimum score to keep a detection.
    """
    total = DetectionCounts()
    for detections, truths in frames:
        kept = [d for d in detections if d.score >= threshold]
        total = total.add(match_detections(kept, truths, iou_threshold))
    return total


def sweep_thresholds(
    frames: list[tuple[list[Detection], list[BoundingBox]]],
    num_steps: int = 40,
    iou_threshold: float = DEFAULT_IOU_THRESHOLD,
) -> list[tuple[float, DetectionCounts]]:
    """Evaluate counts across a range of score thresholds.

    The candidate thresholds span the observed score range; returns
    (threshold, counts) pairs in ascending threshold order.
    """
    scores = np.array(
        [d.score for detections, _ in frames for d in detections]
    )
    if scores.size == 0:
        return []
    lo, hi = float(scores.min()), float(scores.max())
    if hi - lo < 1e-12:
        thresholds = [lo]
    else:
        thresholds = list(np.linspace(lo, hi, num_steps))
    return [
        (t, precision_recall(frames, t, iou_threshold)) for t in thresholds
    ]


def best_threshold(
    frames: list[tuple[list[Detection], list[BoundingBox]]],
    num_steps: int = 40,
    iou_threshold: float = DEFAULT_IOU_THRESHOLD,
) -> tuple[float, DetectionCounts]:
    """The f_score-maximising cut-off ``d_t`` and its counts."""
    sweep = sweep_thresholds(frames, num_steps, iou_threshold)
    if not sweep:
        raise ValueError("no detections to sweep thresholds over")
    return max(sweep, key=lambda item: item[1].f_score)

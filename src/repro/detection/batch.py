"""Batched detection: a round's tasks as one unit of work.

The engine used to fan detection out one closure per (frame, camera,
algorithm) triple.  A :class:`DetectionBatch` instead carries the
round's tasks as plain data — each task names its algorithm, its frame
observation and the seed entropy of its private generator — so an
executor backend can ship, split and run them however it likes while
:func:`run_batch` guarantees the semantics: tasks grouped by
algorithm, results returned in task order, every task seeded from its
own entropy.

Because each task's generator is a pure function of its (frame,
camera, algorithm) coordinates, batching changes *where* and *in what
grouping* tasks run but never *what* they compute: results are
bit-identical to the one-task-at-a-time path on any backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.detection.base import Detection, Detector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.world.renderer import FrameObservation


@dataclass(frozen=True)
class DetectionTask:
    """One self-contained detection work unit.

    Attributes:
        algorithm: Name of the detector to run (a key of the engine's
            detector suite).
        observation: The frame observation to detect on.  Executors
            that ship frames through shared memory substitute a
            lightweight reference here and resolve it worker-side.
        entropy: Seed entropy of the task's private generator — a pure
            function of the run configuration and the task's (frame,
            camera, algorithm) coordinates, never of execution order.
        threshold: Score cut-off (``None`` keeps every candidate).
    """

    algorithm: str
    observation: "FrameObservation"
    entropy: tuple[int, ...]
    threshold: float | None

    def make_rng(self) -> np.random.Generator:
        """The task's private, coordinate-seeded generator."""
        return np.random.default_rng(list(self.entropy))


@dataclass(frozen=True)
class DetectionBatch:
    """An ordered collection of detection tasks for one fan-out."""

    tasks: tuple[DetectionTask, ...]

    def __len__(self) -> int:
        return len(self.tasks)

    def by_algorithm(self) -> dict[str, list[int]]:
        """Task indices grouped by algorithm, in first-seen order."""
        groups: dict[str, list[int]] = {}
        for index, task in enumerate(self.tasks):
            groups.setdefault(task.algorithm, []).append(index)
        return groups


def run_batch(
    detectors: Mapping[str, Detector],
    tasks: Sequence[DetectionTask],
) -> list[list[Detection]]:
    """Execute tasks against a detector suite, preserving task order.

    Tasks are grouped by algorithm so batch-aware detectors (see
    ``SimulatedDetector.detect_batch``) can vectorise their shared
    per-view computation across the whole group; detectors without a
    batch entry point fall back to the per-task loop in
    :meth:`~repro.detection.base.Detector.detect_batch`.
    """
    results: list[list[Detection] | None] = [None] * len(tasks)
    groups: dict[str, list[int]] = {}
    for index, task in enumerate(tasks):
        groups.setdefault(task.algorithm, []).append(index)
    for algorithm, indices in groups.items():
        detector = detectors[algorithm]
        outputs = detector.detect_batch([tasks[i] for i in indices])
        for index, output in zip(indices, outputs):
            results[index] = output
    return results  # type: ignore[return-value]

"""A real sliding-window HOG person detector.

The calibrated detectors in :mod:`repro.detection.detectors` reproduce
the paper's measured operating points; this module additionally builds
the *actual* Dalal-Triggs pipeline on pixels, end to end:

1. cell-level orientation histograms over the whole frame, block
   normalisation precomputed once (the standard dense-HOG trick);
2. a linear template over the canonical 8x16-cell person window,
   trained by ridge regression on person crops versus background
   crops from a dataset's training segment;
3. a scale pyramid scanned with :func:`numpy.lib.stride_tricks.
   sliding_window_view` — each window's score is a tensor dot with
   the template — followed by non-maximum suppression.

It exists to show the substrate is genuinely buildable without OpenCV;
see ``examples/real_detector.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.detection.base import BoundingBox, Detection, Detector
from repro.vision.color import mean_color_feature
from repro.vision.hog import (
    BLOCK_CELLS,
    CELL_SIZE,
    NUM_BINS,
    cell_histograms,
    hog_descriptor,
)
from repro.vision.image import crop, resize_bilinear
from repro.vision.nms import non_max_suppression
from repro.world.renderer import FrameObservation

#: Canonical person window in cells: 8 wide x 16 tall (64 x 128 px).
WINDOW_CELLS = (8, 16)
#: Blocks per window: (cells - 1) in each direction for 2x2 blocks.
WINDOW_BLOCKS = (WINDOW_CELLS[0] - 1, WINDOW_CELLS[1] - 1)
BLOCK_DIM = BLOCK_CELLS * BLOCK_CELLS * NUM_BINS


def block_grid(image: np.ndarray) -> np.ndarray:
    """Dense normalised HOG blocks of a whole image.

    Returns an array of shape ``(blocks_y, blocks_x, 36)``; each entry
    is the L2-Hys normalised 2x2-cell block anchored at that cell.
    """
    hist = cell_histograms(np.asarray(image, dtype=float))
    cells_y, cells_x, _ = hist.shape
    if cells_y < BLOCK_CELLS or cells_x < BLOCK_CELLS:
        return np.zeros((0, 0, BLOCK_DIM))
    # (by, bx, 2, 2, bins) view of all 2x2-cell neighbourhoods.
    windows = sliding_window_view(hist, (BLOCK_CELLS, BLOCK_CELLS, NUM_BINS))
    blocks = windows.reshape(
        cells_y - BLOCK_CELLS + 1, cells_x - BLOCK_CELLS + 1, BLOCK_DIM
    ).astype(float)
    norms = np.linalg.norm(blocks, axis=2, keepdims=True) + 1e-6
    blocks = np.minimum(blocks / norms, 0.2)
    norms = np.linalg.norm(blocks, axis=2, keepdims=True) + 1e-6
    return blocks / norms


@dataclass
class LinearHogTemplate:
    """A linear scorer over the canonical person window.

    Attributes:
        weights: ``(7, 15, 36)`` template (window blocks x block dim).
        bias: Scalar offset.
    """

    weights: np.ndarray
    bias: float

    def __post_init__(self) -> None:
        expected = (WINDOW_BLOCKS[1], WINDOW_BLOCKS[0], BLOCK_DIM)
        if self.weights.shape != expected:
            raise ValueError(
                f"template weights must be {expected}, "
                f"got {self.weights.shape}"
            )

    @classmethod
    def fit(
        cls,
        positives: np.ndarray,
        negatives: np.ndarray,
        l2: float = 1.0,
    ) -> "LinearHogTemplate":
        """Ridge-regress a template from 3780-dim window descriptors."""
        if len(positives) == 0 or len(negatives) == 0:
            raise ValueError("need both positive and negative samples")
        x = np.vstack([positives, negatives])
        y = np.concatenate([
            np.ones(len(positives)), -np.ones(len(negatives))
        ])
        mean = x.mean(axis=0)
        xc = x - mean
        n = len(x)
        # Dual ridge: w = Xc^T (Xc Xc^T + l2 I)^-1 y  (n << d).
        gram = xc @ xc.T + l2 * np.eye(n)
        alpha = np.linalg.solve(gram, y)
        w = xc.T @ alpha
        bias = float(-w @ mean)
        weights = w.reshape(
            WINDOW_BLOCKS[1], WINDOW_BLOCKS[0], BLOCK_DIM
        )
        return cls(weights=weights, bias=bias)

    def score_map(self, blocks: np.ndarray) -> np.ndarray:
        """Score every window position of a dense block grid.

        Args:
            blocks: ``(by, bx, 36)`` output of :func:`block_grid`.

        Returns:
            ``(by - 14, bx - 6)`` score map (empty if too small).
        """
        wy, wx = WINDOW_BLOCKS[1], WINDOW_BLOCKS[0]
        if blocks.shape[0] < wy or blocks.shape[1] < wx:
            return np.zeros((0, 0))
        # (my, mx, 1, wy, wx, dim) view over all window placements.
        view = sliding_window_view(blocks, (wy, wx, BLOCK_DIM))
        windows = view.reshape(
            view.shape[0], view.shape[1], wy, wx, BLOCK_DIM
        )
        scores = np.einsum("yxabc,abc->yx", windows, self.weights)
        return scores + self.bias


class SlidingWindowHogDetector(Detector):
    """Pixel-level HOG person detector with a scale pyramid."""

    name = "HOG-window"

    def __init__(
        self,
        template: LinearHogTemplate,
        scales: tuple[float, ...] = (4.5, 3.6, 2.8, 2.2, 1.7),
        nms_iou: float = 0.4,
    ) -> None:
        """
        Args:
            template: The trained linear window template.
            scales: Pyramid magnifications.  The render canvas is
                small (people are a few dozen pixels tall) while the
                canonical window is 64x128, so the pyramid *upscales*
                the frame until people fill the window.
            nms_iou: Non-maximum-suppression overlap threshold.
        """
        self.template = template
        self.scales = scales
        self.nms_iou = nms_iou

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        observations: list[FrameObservation],
        rng: np.random.Generator,
        negatives_per_frame: int = 6,
        l2: float = 1.0,
        hard_negative_rounds: int = 0,
        mining_frames: int = 8,
    ) -> "SlidingWindowHogDetector":
        """Train from rendered frames: person crops vs background.

        Bounding boxes arrive in nominal pixel coordinates; the
        observation's ``image_scale`` maps them onto the canvas.

        Args:
            observations: Rendered training frames with object views.
            rng: Randomness for negative sampling.
            negatives_per_frame: Random background crops per frame.
            l2: Ridge regularisation strength.
            hard_negative_rounds: Dalal-Triggs bootstrapping rounds —
                run the detector on training frames, add its false
                positives as negatives, refit.  Each round costs one
                detection pass over ``mining_frames`` frames.
            mining_frames: Frames scanned per mining round.
        """
        positives = []
        negatives = []
        for obs in observations:
            scale = obs.image_scale
            h, w = obs.image.shape
            person_boxes = []
            for view in obs.objects:
                if view.occlusion > 0.3:
                    continue
                bx, by, bw, bh = view.bbox
                canvas_box = (bx * scale, by * scale, bw * scale, bh * scale)
                patch = crop(obs.image, canvas_box)
                if patch.shape[0] < 12 or patch.shape[1] < 6:
                    continue
                positives.append(hog_descriptor(patch))
                person_boxes.append(canvas_box)
            for _ in range(negatives_per_frame):
                nh = rng.uniform(0.25, 0.6) * h
                nw = nh * 0.5
                nx = rng.uniform(0, max(1.0, w - nw))
                ny = rng.uniform(0, max(1.0, h - nh))
                candidate = (nx, ny, nw, nh)
                if any(
                    _box_iou(candidate, person) > 0.2
                    for person in person_boxes
                ):
                    continue
                patch = crop(obs.image, candidate)
                if patch.size:
                    negatives.append(hog_descriptor(patch))
        if not positives or not negatives:
            raise ValueError(
                "not enough training crops; provide more observations"
            )
        template = LinearHogTemplate.fit(
            np.stack(positives), np.stack(negatives), l2=l2
        )
        detector = cls(template)

        for _ in range(hard_negative_rounds):
            mined = detector._mine_hard_negatives(
                observations[:mining_frames], rng
            )
            if not mined:
                break
            negatives.extend(mined)
            detector = cls(
                LinearHogTemplate.fit(
                    np.stack(positives), np.stack(negatives), l2=l2
                )
            )
        return detector

    def _mine_hard_negatives(
        self,
        observations: list[FrameObservation],
        rng: np.random.Generator,
        score_floor: float = -0.3,
    ) -> list[np.ndarray]:
        """False-positive window descriptors from training frames."""
        mined = []
        for obs in observations:
            scale = obs.image_scale
            person_boxes = [
                (bx * scale, by * scale, bw * scale, bh * scale)
                for (bx, by, bw, bh) in (v.bbox for v in obs.objects)
            ]
            for det in self.detect(obs, rng, threshold=score_floor):
                box = det.bbox
                canvas_box = (
                    box.x * scale, box.y * scale,
                    box.w * scale, box.h * scale,
                )
                if any(
                    _box_iou(canvas_box, person) > 0.2
                    for person in person_boxes
                ):
                    continue
                patch = crop(obs.image, canvas_box)
                if patch.shape[0] >= 12 and patch.shape[1] >= 6:
                    mined.append(hog_descriptor(patch))
        return mined

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def detect(
        self,
        observation: FrameObservation,
        rng: np.random.Generator,
        threshold: float | None = None,
    ) -> list[Detection]:
        cut = 0.0 if threshold is None else threshold
        image = observation.image
        canvas_boxes = []
        scores = []
        for scale in self.scales:
            scaled = (
                image
                if scale == 1.0
                else resize_bilinear(
                    image,
                    max(16, int(image.shape[1] * scale)),
                    max(16, int(image.shape[0] * scale)),
                )
            )
            blocks = block_grid(scaled)
            score_map = self.template.score_map(blocks)
            if score_map.size == 0:
                continue
            ys, xs = np.nonzero(score_map >= cut)
            window_w = WINDOW_CELLS[0] * CELL_SIZE / scale
            window_h = WINDOW_CELLS[1] * CELL_SIZE / scale
            for y, x in zip(ys, xs):
                canvas_boxes.append((
                    x * CELL_SIZE / scale,
                    y * CELL_SIZE / scale,
                    window_w,
                    window_h,
                ))
                scores.append(float(score_map[y, x]))
        if not canvas_boxes:
            return []
        keep = non_max_suppression(
            np.array(canvas_boxes), np.array(scores), self.nms_iou
        )

        detections = []
        inv_scale = 1.0 / observation.image_scale
        truth_boxes = [
            (view.person_id, view.bbox) for view in observation.objects
        ]
        for idx in keep:
            cx, cy, cw, ch = canvas_boxes[idx]
            nominal = BoundingBox(
                cx * inv_scale, cy * inv_scale,
                cw * inv_scale, ch * inv_scale,
            )
            truth_id = None
            best_iou = 0.3
            for person_id, bbox in truth_boxes:
                iou = nominal.iou(BoundingBox.from_tuple(bbox))
                if iou > best_iou:
                    best_iou = iou
                    truth_id = person_id
            detections.append(
                Detection(
                    bbox=nominal,
                    score=scores[idx],
                    camera_id=observation.camera_id,
                    frame_index=observation.frame_index,
                    algorithm=self.name,
                    color_feature=mean_color_feature(
                        observation.image,
                        (cx, cy, cw, ch),
                    ),
                    truth_id=truth_id,
                )
            )
        detections.sort(key=lambda d: -d.score)
        return detections


def _box_iou(
    a: tuple[float, float, float, float],
    b: tuple[float, float, float, float],
) -> float:
    return BoundingBox.from_tuple(a).iou(BoundingBox.from_tuple(b))

"""Empirical view statistics used for detector calibration.

The paper calibrates each algorithm's operating point on the training
segment of each video (Section VI-A).  Analogously, the simulated
detectors need to know how hard the typical view in an environment is
— mean and spread of occlusion, size deficit and contrast deficit —
to place their score distributions so the target recall is realised
at the target threshold.  These statistics are measured once per
environment by simulating a short scene, and cached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.world.environment import Environment
from repro.world.renderer import ObjectView, Renderer
from repro.world.scene import Scene, make_camera_ring

#: Reference pixel height relative to the frame height; people shorter
#: than this fraction accrue a size penalty.
SIZE_REFERENCE_FRACTION = 0.35


@dataclass(frozen=True)
class ViewStatistics:
    """Mean/std of the three penalty drivers across typical views."""

    occlusion_mean: float
    occlusion_std: float
    size_deficit_mean: float
    size_deficit_std: float
    contrast_deficit_mean: float
    contrast_deficit_std: float
    visible_people_mean: float

    @classmethod
    def from_views(
        cls, views: list[ObjectView], frame_height: int, num_frames: int
    ) -> "ViewStatistics":
        """Aggregate statistics from observed object views."""
        if not views:
            raise ValueError("cannot compute statistics from zero views")
        size_ref = SIZE_REFERENCE_FRACTION * frame_height
        occ = np.array([v.occlusion for v in views])
        size = np.clip(
            1.0 - np.array([v.pixel_height for v in views]) / size_ref,
            0.0,
            1.0,
        )
        contrast = 1.0 - np.array([v.contrast for v in views])
        return cls(
            occlusion_mean=float(occ.mean()),
            occlusion_std=float(occ.std()),
            size_deficit_mean=float(size.mean()),
            size_deficit_std=float(size.std()),
            contrast_deficit_mean=float(contrast.mean()),
            contrast_deficit_std=float(contrast.std()),
            visible_people_mean=len(views) / max(1, num_frames),
        )


_STATS_CACHE: dict[tuple[str, int], ViewStatistics] = {}


def nominal_statistics(
    environment: Environment,
    num_people: int = 6,
    num_frames: int = 40,
    bounds: tuple[float, float, float, float] = (0.0, 0.0, 8.0, 8.0),
) -> ViewStatistics:
    """Measure (and cache) typical view statistics for an environment.

    Runs a short single-camera simulation with the environment's
    renderer and aggregates the penalty drivers over all views.
    """
    key = (environment.name, num_people)
    if key in _STATS_CACHE:
        return _STATS_CACHE[key]
    scene = Scene(
        environment=environment, num_people=num_people, bounds=bounds
    )
    camera = make_camera_ring(environment, num_cameras=1, bounds=bounds)[0]
    renderer = Renderer(scene, camera)
    views: list[ObjectView] = []
    sampled = 0
    for frame in range(num_frames * 5):
        scene.step()
        if frame % 5 == 0:
            views.extend(renderer.render().objects)
            sampled += 1
    stats = ViewStatistics.from_views(views, environment.height, sampled)
    _STATS_CACHE[key] = stats
    return stats


def clear_statistics_cache() -> None:
    """Testing hook: drop memoised environment statistics."""
    _STATS_CACHE.clear()

"""Per-(algorithm, environment-family) detector response profiles.

Each profile records the operating point the paper measured for that
algorithm on that kind of scene (Tables II and III; the outdoor
"terrace" family is not tabulated in the paper, so its profile encodes
the paper's qualitative statement that "similar results are observed"
with C4's contour cues strongest outdoors), plus the qualitative
sensitivities that differentiate the algorithms:

* HOG (Dalal-Triggs) — gradient template; moderate occlusion
  sensitivity, weak on low contrast, fooled by vertical furniture
  edges in cluttered scenes (hence its 0.42 precision on "chap").
* ACF (aggregate channel features) — fast boosted channels; strong in
  cluttered/high-resolution scenes, weaker on small/occluded people
  at low resolution (0.34 recall on "lab").
* C4 (contour cues) — contrast-driven; clean contours help, clutter
  hurts moderately.
* LSVM (deformable parts) — part-based, most robust to occlusion,
  most expensive.

The :class:`SimulatedDetector` turns a profile into actual score
distributions; the numbers below are *targets* the calibration solves
for, not hard-coded outputs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResponseProfile:
    """Calibration target and response shape for one detector/scene pair.

    Attributes:
        algorithm: Detector name.
        family: Environment family the profile applies to.
        threshold: The paper's f_score-maximising score cut-off.
        recall: Target recall at ``threshold``.
        precision: Target precision at ``threshold``.
        score_sigma: Std-dev of detection-score noise (algorithm scale).
        occlusion_sensitivity: Score lost at full occlusion.
        size_sensitivity: Score lost for objects at half the reference
            pixel height.
        contrast_sensitivity: Score lost at zero contrast.
        fp_candidates: Mean false-positive candidate regions per frame
            (clutter plus texture noise) the detector considers.
    """

    algorithm: str
    family: str
    threshold: float
    recall: float
    precision: float
    score_sigma: float
    occlusion_sensitivity: float
    size_sensitivity: float
    contrast_sensitivity: float
    fp_candidates: float

    def __post_init__(self) -> None:
        if not 0.0 < self.recall <= 1.0:
            raise ValueError(f"recall must be in (0, 1], got {self.recall}")
        if not 0.0 < self.precision <= 1.0:
            raise ValueError(
                f"precision must be in (0, 1], got {self.precision}"
            )
        if self.score_sigma <= 0:
            raise ValueError("score_sigma must be positive")

    @property
    def f_score(self) -> float:
        """Target f_score at the profile's threshold."""
        return (
            2.0
            * self.recall
            * self.precision
            / (self.recall + self.precision)
        )


# Score scales follow the paper's thresholds: HOG scores live around
# [0, 1.5], ACF around [0, 40] on high-res scenes, C4 around [-1, 1.5],
# LSVM around [-2, 1].
_PROFILES: dict[tuple[str, str], ResponseProfile] = {}


def _register(profile: ResponseProfile) -> None:
    key = (profile.algorithm, profile.family)
    if key in _PROFILES:
        raise ValueError(f"duplicate profile for {key}")
    _PROFILES[key] = profile


# ----------------------------------------------------------------------
# indoor_clean — the EPFL "lab" dataset (Table II).
# ----------------------------------------------------------------------
_register(ResponseProfile(
    algorithm="HOG", family="indoor_clean",
    threshold=0.5, recall=0.48, precision=1.0,
    score_sigma=0.25, occlusion_sensitivity=0.65,
    size_sensitivity=0.30, contrast_sensitivity=0.35,
    fp_candidates=2.0,
))
_register(ResponseProfile(
    algorithm="ACF", family="indoor_clean",
    threshold=2.0, recall=0.34, precision=0.95,
    score_sigma=1.6, occlusion_sensitivity=3.2,
    size_sensitivity=4.5, contrast_sensitivity=1.5,
    fp_candidates=2.5,
))
_register(ResponseProfile(
    algorithm="C4", family="indoor_clean",
    threshold=0.0, recall=0.46, precision=1.0,
    score_sigma=0.30, occlusion_sensitivity=0.70,
    size_sensitivity=0.35, contrast_sensitivity=0.60,
    fp_candidates=2.0,
))
_register(ResponseProfile(
    algorithm="LSVM", family="indoor_clean",
    threshold=-1.2, recall=0.89, precision=0.90,
    score_sigma=0.45, occlusion_sensitivity=0.50,
    size_sensitivity=0.40, contrast_sensitivity=0.30,
    fp_candidates=3.0,
))

# ----------------------------------------------------------------------
# indoor_cluttered — the Graz "chap" dataset (Table III).  Furniture
# drives HOG's precision down to 0.42 while ACF shines (0.83/0.89).
# ----------------------------------------------------------------------
_register(ResponseProfile(
    algorithm="HOG", family="indoor_cluttered",
    threshold=0.6, recall=0.80, precision=0.42,
    score_sigma=0.25, occlusion_sensitivity=0.55,
    size_sensitivity=0.20, contrast_sensitivity=0.35,
    fp_candidates=9.0,
))
_register(ResponseProfile(
    algorithm="ACF", family="indoor_cluttered",
    threshold=20.0, recall=0.83, precision=0.89,
    score_sigma=6.0, occlusion_sensitivity=10.0,
    size_sensitivity=6.0, contrast_sensitivity=5.0,
    fp_candidates=7.0,
))
_register(ResponseProfile(
    algorithm="C4", family="indoor_cluttered",
    threshold=0.5, recall=0.70, precision=0.70,
    score_sigma=0.30, occlusion_sensitivity=0.60,
    size_sensitivity=0.25, contrast_sensitivity=0.55,
    fp_candidates=8.0,
))
_register(ResponseProfile(
    algorithm="LSVM", family="indoor_cluttered",
    threshold=-0.2, recall=0.84, precision=0.83,
    score_sigma=0.45, occlusion_sensitivity=0.45,
    size_sensitivity=0.30, contrast_sensitivity=0.30,
    fp_candidates=7.5,
))

# ----------------------------------------------------------------------
# outdoor — the EPFL "terrace" dataset.  Not tabulated in the paper
# ("similar results are observed in the other dataset"); targets encode
# clean outdoor contours favouring C4, with HOG close behind.
# ----------------------------------------------------------------------
_register(ResponseProfile(
    algorithm="HOG", family="outdoor",
    threshold=0.5, recall=0.62, precision=0.93,
    score_sigma=0.25, occlusion_sensitivity=0.60,
    size_sensitivity=0.30, contrast_sensitivity=0.35,
    fp_candidates=3.5,
))
_register(ResponseProfile(
    algorithm="ACF", family="outdoor",
    threshold=2.0, recall=0.55, precision=0.90,
    score_sigma=1.6, occlusion_sensitivity=3.0,
    size_sensitivity=4.0, contrast_sensitivity=1.5,
    fp_candidates=3.5,
))
_register(ResponseProfile(
    algorithm="C4", family="outdoor",
    threshold=0.0, recall=0.72, precision=0.95,
    score_sigma=0.30, occlusion_sensitivity=0.65,
    size_sensitivity=0.30, contrast_sensitivity=0.45,
    fp_candidates=3.0,
))
_register(ResponseProfile(
    algorithm="LSVM", family="outdoor",
    threshold=-1.2, recall=0.90, precision=0.88,
    score_sigma=0.45, occlusion_sensitivity=0.45,
    size_sensitivity=0.35, contrast_sensitivity=0.30,
    fp_candidates=4.0,
))


# ----------------------------------------------------------------------
# night — an extension beyond the paper: the terrace after dark.
# Weak gradients hurt HOG, starved channels hurt ACF, and contours all
# but vanish for C4; the part-based LSVM degrades most gracefully.
# ----------------------------------------------------------------------
_register(ResponseProfile(
    algorithm="HOG", family="night",
    threshold=0.4, recall=0.42, precision=0.85,
    score_sigma=0.25, occlusion_sensitivity=0.60,
    size_sensitivity=0.30, contrast_sensitivity=0.70,
    fp_candidates=4.0,
))
_register(ResponseProfile(
    algorithm="ACF", family="night",
    threshold=1.5, recall=0.35, precision=0.80,
    score_sigma=1.6, occlusion_sensitivity=3.0,
    size_sensitivity=4.0, contrast_sensitivity=3.5,
    fp_candidates=4.5,
))
_register(ResponseProfile(
    algorithm="C4", family="night",
    threshold=0.0, recall=0.30, precision=0.75,
    score_sigma=0.30, occlusion_sensitivity=0.65,
    size_sensitivity=0.30, contrast_sensitivity=0.90,
    fp_candidates=5.0,
))
_register(ResponseProfile(
    algorithm="LSVM", family="night",
    threshold=-1.0, recall=0.72, precision=0.82,
    score_sigma=0.45, occlusion_sensitivity=0.45,
    size_sensitivity=0.35, contrast_sensitivity=0.45,
    fp_candidates=4.0,
))


def get_profile(algorithm: str, family: str) -> ResponseProfile:
    """Look up the response profile for an algorithm/scene pair."""
    try:
        return _PROFILES[(algorithm, family)]
    except KeyError:
        known_algos = sorted({a for a, _ in _PROFILES})
        known_fams = sorted({f for _, f in _PROFILES})
        raise KeyError(
            f"no profile for algorithm={algorithm!r}, family={family!r}; "
            f"known algorithms {known_algos}, families {known_fams}"
        ) from None


def all_profiles() -> list[ResponseProfile]:
    return list(_PROFILES.values())

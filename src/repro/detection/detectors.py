"""Simulated detection algorithms calibrated to the paper's tables.

A :class:`SimulatedDetector` scores two candidate populations per
frame:

* every pedestrian view, with a Gaussian score whose mean is the
  calibrated clean-object response minus algorithm-specific penalties
  for occlusion, small pixel size and low contrast;
* false-positive candidates seeded by the scene's clutter regions,
  with scores drawn from a *bounded exponential tail* — real detectors
  produce a wall of near-threshold false alarms (furniture edges,
  texture), which is exactly why the f_score-maximising threshold
  sits where the paper's Tables II-IV put it: drop the threshold a
  little and precision collapses.

Calibration solves for the distribution parameters analytically from
the profile's target (threshold, recall, precision), using view
statistics measured on the environment (see
:mod:`repro.detection.view_stats`).  The detector then *runs*:
thresholds move precision/recall along a genuine trade-off curve,
occluded or distant people really are missed more often, and cluttered
scenes really do produce more false alarms.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.detection.base import BoundingBox, Detection, Detector
from repro.detection.profiles import ResponseProfile, get_profile
from repro.detection.view_stats import (
    SIZE_REFERENCE_FRACTION,
    ViewStatistics,
    nominal_statistics,
)
from repro.vision.color import (
    synthetic_color_feature,
    synthetic_color_from_gauss,
)
from repro.world.environment import Environment
from repro.world.renderer import FrameObservation, ObjectView

ALGORITHM_NAMES = ("HOG", "ACF", "C4", "LSVM")

#: Precision targets of 1.0 are treated as this value when sizing the
#: false-positive rate (a literal zero-FP target is degenerate).
_MAX_PRECISION = 0.99


class SimulatedDetector(Detector):
    """One detection algorithm bound to one environment."""

    def __init__(
        self,
        profile: ResponseProfile,
        environment: Environment,
        view_statistics: ViewStatistics | None = None,
    ) -> None:
        self.name = profile.algorithm
        self.profile = profile
        self.environment = environment
        self._stats = (
            view_statistics
            if view_statistics is not None
            else nominal_statistics(environment)
        )
        self._size_ref = SIZE_REFERENCE_FRACTION * environment.height
        self._sigma = profile.score_sigma
        self._tp_mu, self._sigma_eff = self._calibrate_tp_mean()
        # The exponential tail scale of false-positive scores: narrow
        # relative to the effective score spread, so precision falls
        # quickly just below the calibrated threshold (the knee real
        # sliding-window detectors show where texture junk floods in).
        self._fp_tail = self._sigma_eff / 10.0
        (
            self._fp_loc,
            self._fp_count,
            self._conf_mu,
            self._conf_count,
        ) = self._calibrate_false_positives()

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def _penalty_moments(self) -> tuple[float, float]:
        """Mean and std of the penalty under measured view statistics."""
        p, s = self.profile, self._stats
        mean = (
            p.occlusion_sensitivity * s.occlusion_mean
            + p.size_sensitivity * s.size_deficit_mean
            + p.contrast_sensitivity * s.contrast_deficit_mean
        )
        var = (
            (p.occlusion_sensitivity * s.occlusion_std) ** 2
            + (p.size_sensitivity * s.size_deficit_std) ** 2
            + (p.contrast_sensitivity * s.contrast_deficit_std) ** 2
        )
        return mean, float(np.sqrt(var))

    def _calibrate_tp_mean(self) -> tuple[float, float]:
        """Place the clean-object response so that
        ``P(score > threshold) = recall`` over typical views.

        Returns the solved mean and the effective score spread
        (noise plus penalty variability across views).
        """
        p = self.profile
        mean_penalty, penalty_std = self._penalty_moments()
        sigma_eff = float(np.hypot(self._sigma, penalty_std))
        z = stats.norm.ppf(p.recall)
        return p.threshold + mean_penalty + sigma_eff * z, sigma_eff

    def _calibrate_false_positives(self) -> tuple[float, float, float, float]:
        """Solve the two-component FP score distribution.

        The per-frame FP count above the calibrated threshold must
        equal ``TP_rate * (1 - precision) / precision``.  Two candidate
        populations realise it:

        * a dense *junk wall* (texture windows) with a sharp
          exponential knee just below the threshold — lowering the
          threshold floods the output, which is what pins the
          f_score-maximising threshold from below;
        * *confusables* (person-like structures, e.g. the "chap"
          furniture) whose scores spread like the true-positive scores
          — raising the threshold sheds them no faster than it sheds
          true positives, which pins the optimum from above.
        """
        p = self.profile
        precision = min(p.precision, _MAX_PRECISION)
        tp_per_frame = p.recall * self._stats.visible_people_mean
        target_fp = tp_per_frame * (1.0 - precision) / precision

        # Confusables carry 90% of the at-threshold FP rate; with
        # count = 3x their surviving number, their survival is 0.3,
        # placing their mean just below the threshold.
        conf_target = 0.9 * target_fp
        conf_count = 3.0 * conf_target
        conf_mu = p.threshold - 0.5244 * self._sigma_eff  # Phi^-1(0.7)

        wall_target = max(0.1 * target_fp, 1e-4)
        fp_count = max(40.0 + 6.0 * p.fp_candidates, wall_target * 2.0)
        survival = float(np.clip(wall_target / fp_count, 1e-7, 0.95))
        fp_loc = p.threshold + self._fp_tail * np.log(survival)
        # Near-perfect-precision targets would push the wall far below
        # the threshold; clamp it so the junk flood always starts
        # within a fraction of the score spread (this is what keeps
        # the swept optimum from drifting below the paper's threshold
        # on the clean "lab" scenes).
        fp_loc = max(fp_loc, p.threshold - 0.7 * self._sigma_eff)
        return float(fp_loc), float(fp_count), float(conf_mu), float(conf_count)

    @property
    def calibration(self) -> dict[str, float]:
        """Inspection hook: the solved distribution parameters."""
        return {
            "tp_mu": self._tp_mu,
            "fp_loc": self._fp_loc,
            "fp_count": self._fp_count,
            "conf_mu": self._conf_mu,
            "conf_count": self._conf_count,
            "sigma": self._sigma,
            "sigma_eff": self._sigma_eff,
            "fp_tail": self._fp_tail,
        }

    # ------------------------------------------------------------------
    # Runtime response model
    # ------------------------------------------------------------------
    def _penalty(self, view: ObjectView) -> float:
        p = self.profile
        size_deficit = min(
            1.0, max(0.0, 1.0 - view.pixel_height / self._size_ref)
        )
        return (
            p.occlusion_sensitivity * view.occlusion
            + p.size_sensitivity * size_deficit
            + p.contrast_sensitivity * (1.0 - view.contrast)
        )

    def _penalties(self, views: list[ObjectView]) -> np.ndarray:
        """Vectorised :meth:`_penalty` over many views.

        Elementwise only (no reductions), with the exact expression
        structure of the scalar path, so each entry is bit-identical
        to ``_penalty(view)``.
        """
        if not views:
            return np.empty(0)
        p = self.profile
        heights = np.array([v.pixel_height for v in views])
        occlusion = np.array([v.occlusion for v in views])
        contrast = np.array([v.contrast for v in views])
        size_deficit = np.clip(1.0 - heights / self._size_ref, 0.0, 1.0)
        return (
            p.occlusion_sensitivity * occlusion
            + p.size_sensitivity * size_deficit
            + p.contrast_sensitivity * (1.0 - contrast)
        )

    def score_view(self, view: ObjectView, rng: np.random.Generator) -> float:
        """Score one pedestrian view (with score noise)."""
        return float(
            self._tp_mu - self._penalty(view) + rng.normal(scale=self._sigma)
        )

    def _jittered_box(
        self, view: ObjectView, rng: np.random.Generator
    ) -> BoundingBox:
        """Localisation noise: a few percent of the box size."""
        bx, by, bw, bh = view.bbox
        jitter = 0.04
        return BoundingBox(
            x=bx + rng.normal(scale=jitter * max(bw, 1.0)),
            y=by + rng.normal(scale=jitter * max(bh, 1.0)),
            w=max(1.0, bw * (1.0 + rng.normal(scale=jitter))),
            h=max(1.0, bh * (1.0 + rng.normal(scale=jitter))),
        )

    def _false_positive_box(
        self,
        observation: FrameObservation,
        rng: np.random.Generator,
    ) -> BoundingBox:
        """A person-shaped false alarm, preferentially on clutter."""
        env = self.environment
        clutter = observation.clutter_regions
        if clutter and rng.random() < 0.8:
            cx, cy, cw, ch = clutter[rng.integers(len(clutter))]
            # Scalar min/max compute np.clip's result without the
            # per-call ufunc dispatch; this sits on the per-FP path.
            h = float(min(env.height, max(8.0, ch * rng.uniform(0.7, 1.1))))
            w = h * rng.uniform(0.35, 0.5)
            x = float(
                min(
                    env.width - w,
                    max(0.0, cx + rng.uniform(-0.2, 0.8) * cw),
                )
            )
            y = float(min(env.height - h, max(0.0, cy + ch - h)))
        else:
            h = rng.uniform(0.15, 0.45) * env.height
            w = h * rng.uniform(0.35, 0.5)
            x = rng.uniform(0, max(1.0, env.width - w))
            y = rng.uniform(0.2 * env.height, max(1.0, env.height - h))
        return BoundingBox(x=float(x), y=float(y), w=float(w), h=float(h))

    def detect(
        self,
        observation: FrameObservation,
        rng: np.random.Generator,
        threshold: float | None = None,
    ) -> list[Detection]:
        """Score all candidates; keep those above ``threshold`` if given."""
        return self._detect_with_penalties(
            observation,
            rng,
            threshold,
            self._penalties(observation.objects),
        )

    def detect_batch(self, tasks) -> list[list[Detection]]:
        """Batched entry point: vectorise per-view penalties across a
        whole group of tasks, then run each task on its own generator.

        The penalty model is deterministic, so hoisting it out of the
        per-task loop changes nothing; each task still consumes its
        coordinate-seeded generator exactly as :meth:`detect` would.
        """
        all_views: list[ObjectView] = []
        offsets = [0]
        for task in tasks:
            all_views.extend(task.observation.objects)
            offsets.append(len(all_views))
        penalties = self._penalties(all_views)
        return [
            self._detect_with_penalties(
                task.observation,
                np.random.default_rng(list(task.entropy)),
                task.threshold,
                penalties[offsets[index] : offsets[index + 1]],
            )
            for index, task in enumerate(tasks)
        ]

    def _detect_with_penalties(
        self,
        observation: FrameObservation,
        rng: np.random.Generator,
        threshold: float | None,
        penalties: np.ndarray,
    ) -> list[Detection]:
        """The response model with view penalties precomputed.

        Draws the generator in the reference order (one score normal
        per view; box jitter, then colour noise, for survivors; the
        false-positive populations last) but through batched fills —
        ``standard_normal(44)`` consumes exactly the 4 + 40 values the
        unbatched path draws one by one, and an ``exponential(size=n)``
        fill matches n sequential scalar draws — so the output is
        bit-identical to :meth:`detect_reference`.
        """
        detections: list[Detection] = []
        camera_id = observation.camera_id
        frame_index = observation.frame_index
        mu = self._tp_mu
        sigma = self._sigma
        jitter = 0.04
        for index, view in enumerate(observation.objects):
            score = float(mu - penalties[index] + sigma * rng.standard_normal())
            if threshold is not None and score < threshold:
                continue
            gauss = rng.standard_normal(44)
            bx, by, bw, bh = view.bbox
            x_scale = jitter * max(bw, 1.0)
            y_scale = jitter * max(bh, 1.0)
            detections.append(
                Detection(
                    bbox=BoundingBox(
                        x=bx + x_scale * gauss[0],
                        y=by + y_scale * gauss[1],
                        w=max(1.0, bw * (1.0 + jitter * gauss[2])),
                        h=max(1.0, bh * (1.0 + jitter * gauss[3])),
                    ),
                    score=score,
                    camera_id=camera_id,
                    frame_index=frame_index,
                    algorithm=self.name,
                    color_feature=synthetic_color_from_gauss(
                        view.shade, gauss[4:]
                    ),
                    truth_id=view.person_id,
                )
            )
        background_shade = self.environment.brightness
        n_wall = rng.poisson(self._fp_count)
        n_conf = rng.poisson(self._conf_count) if self._conf_count > 0 else 0
        fp_scores = (
            self._fp_loc + rng.exponential(self._fp_tail, size=n_wall)
        ).tolist()
        if n_conf:
            fp_scores.extend(
                (
                    self._conf_mu
                    + rng.normal(scale=self._sigma_eff, size=n_conf)
                ).tolist()
            )
        for score in fp_scores:
            if threshold is not None and score < threshold:
                continue
            detections.append(
                Detection(
                    bbox=self._false_positive_box(observation, rng),
                    score=score,
                    camera_id=camera_id,
                    frame_index=frame_index,
                    algorithm=self.name,
                    color_feature=synthetic_color_feature(
                        background_shade * 0.6, rng, noise=0.08
                    ),
                    truth_id=None,
                )
            )
        detections.sort(key=lambda d: -d.score)
        return detections

    def detect_reference(
        self,
        observation: FrameObservation,
        rng: np.random.Generator,
        threshold: float | None = None,
    ) -> list[Detection]:
        """The pinned one-draw-at-a-time response model.

        Kept verbatim as the oracle for the batched-path equivalence
        tests and as the honest baseline in the scale benchmarks; any
        divergence from :meth:`detect` is a bug in the batched path.
        """
        detections: list[Detection] = []
        for view in observation.objects:
            score = self.score_view(view, rng)
            if threshold is not None and score < threshold:
                continue
            detections.append(
                Detection(
                    bbox=self._jittered_box(view, rng),
                    score=score,
                    camera_id=observation.camera_id,
                    frame_index=observation.frame_index,
                    algorithm=self.name,
                    color_feature=synthetic_color_feature(view.shade, rng),
                    truth_id=view.person_id,
                )
            )
        background_shade = self.environment.brightness
        n_wall = rng.poisson(self._fp_count)
        n_conf = rng.poisson(self._conf_count) if self._conf_count > 0 else 0
        fp_scores = [
            float(self._fp_loc + rng.exponential(self._fp_tail))
            for _ in range(n_wall)
        ]
        fp_scores.extend(
            float(self._conf_mu + rng.normal(scale=self._sigma_eff))
            for _ in range(n_conf)
        )
        for score in fp_scores:
            if threshold is not None and score < threshold:
                continue
            detections.append(
                Detection(
                    bbox=self._false_positive_box(observation, rng),
                    score=score,
                    camera_id=observation.camera_id,
                    frame_index=observation.frame_index,
                    algorithm=self.name,
                    color_feature=synthetic_color_feature(
                        background_shade * 0.6, rng, noise=0.08
                    ),
                    truth_id=None,
                )
            )
        detections.sort(key=lambda d: -d.score)
        return detections


def make_detector(
    algorithm: str,
    environment: Environment,
    view_statistics: ViewStatistics | None = None,
) -> SimulatedDetector:
    """Build the calibrated detector for one algorithm/environment pair."""
    profile = get_profile(algorithm, environment.family)
    return SimulatedDetector(profile, environment, view_statistics)


def make_detector_suite(
    environment: Environment,
    algorithms: tuple[str, ...] = ALGORITHM_NAMES,
    view_statistics: ViewStatistics | None = None,
) -> dict[str, SimulatedDetector]:
    """All pre-installed detectors for one environment, keyed by name."""
    return {
        name: make_detector(name, environment, view_statistics)
        for name in algorithms
    }

"""Detection substrate.

The paper runs four pedestrian detectors (HOG, ACF, C4, LSVM) on
smartphone camera sensors.  Here each detector is a calibrated
simulation: it scores every visible pedestrian (and clutter-driven
false-positive candidates) through an algorithm-specific response
model — sensitivity to occlusion, pixel size and contrast differs per
algorithm — with score distributions fitted so that a genuine
threshold sweep reproduces the per-(algorithm, dataset) operating
points of Tables II-IV.  EECS itself treats detectors as black boxes
emitting scored bounding boxes, so the framework code is unchanged
from what would run on real detectors.
"""

from repro.detection.base import BoundingBox, Detection, Detector
from repro.detection.detectors import (
    ALGORITHM_NAMES,
    SimulatedDetector,
    make_detector,
    make_detector_suite,
)
from repro.detection.metrics import (
    DetectionCounts,
    best_threshold,
    f_score,
    match_detections,
    precision_recall,
    sweep_thresholds,
)
from repro.detection.profiles import ResponseProfile, get_profile
from repro.detection.scores import ScoreCalibrator
from repro.detection.boosting import AdaBoostStumps, DecisionStump
from repro.detection.channel_detector import ChannelFeatureDetector
from repro.detection.contour_detector import ContourDetector
from repro.detection.parts_detector import PartBasedDetector
from repro.detection.window_detector import (
    LinearHogTemplate,
    SlidingWindowHogDetector,
)

__all__ = [
    "BoundingBox",
    "Detection",
    "Detector",
    "ALGORITHM_NAMES",
    "SimulatedDetector",
    "make_detector",
    "make_detector_suite",
    "DetectionCounts",
    "best_threshold",
    "f_score",
    "match_detections",
    "precision_recall",
    "sweep_thresholds",
    "ResponseProfile",
    "get_profile",
    "ScoreCalibrator",
    "LinearHogTemplate",
    "SlidingWindowHogDetector",
    "AdaBoostStumps",
    "DecisionStump",
    "ChannelFeatureDetector",
    "ContourDetector",
    "PartBasedDetector",
]

"""AdaBoost over decision stumps.

The ACF detector family [Dollar et al.] classifies candidate windows
with boosted shallow trees over aggregated channel features.  This
module implements the classic discrete AdaBoost with depth-1 stumps,
vectorised over feature dimensions so training stays fast on the
few-hundred-sample sets the synthetic world produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DecisionStump:
    """One weak learner: ``sign(polarity * (x[dim] - threshold))``."""

    dim: int
    threshold: float
    polarity: int
    alpha: float

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Vectorised +-1 prediction over ``(n, d)`` features."""
        values = np.atleast_2d(features)[:, self.dim]
        raw = np.where(values > self.threshold, 1.0, -1.0)
        return self.polarity * raw


class AdaBoostStumps:
    """Discrete AdaBoost with decision stumps."""

    def __init__(self, n_stumps: int = 64) -> None:
        if n_stumps < 1:
            raise ValueError("n_stumps must be >= 1")
        self.n_stumps = n_stumps
        self.stumps: list[DecisionStump] = []

    @property
    def is_fitted(self) -> bool:
        return bool(self.stumps)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "AdaBoostStumps":
        """Fit on ``(n, d)`` features with +-1 labels."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(labels, dtype=float).ravel()
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("features must be (n, d) matching labels")
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValueError("labels must be +-1")
        if len(np.unique(y)) < 2:
            raise ValueError("need both classes to boost")

        n, d = x.shape
        # Pre-sort every dimension once; thresholds are the sorted
        # values, candidate splits evaluated by weighted cumsums.
        order = np.argsort(x, axis=0)  # (n, d)
        sorted_x = np.take_along_axis(x, order, axis=0)

        weights = np.full(n, 1.0 / n)
        self.stumps = []
        for _ in range(self.n_stumps):
            wy = weights * y  # (n,)
            # wy re-ordered per dimension, then prefix sums: the
            # weighted score of predicting -1 below the split.
            wy_sorted = wy[order]  # (n, d)
            prefix = np.cumsum(wy_sorted, axis=0)  # (n, d)
            total = prefix[-1]  # (d,)
            # Error of stump "predict +1 above split i" equals
            # 0.5 - 0.5 * margin, margin = total - 2 * prefix[i].
            margins = total[None, :] - 2.0 * prefix  # (n, d)
            # Include the no-split case (all +1): margin = total.
            best_flat = np.argmax(np.abs(margins))
            row, dim = np.unravel_index(best_flat, margins.shape)
            margin = margins[row, dim]
            polarity = 1 if margin >= 0 else -1
            threshold = float(sorted_x[row, dim])
            error = 0.5 - 0.5 * abs(margin)
            error = float(np.clip(error, 1e-10, 0.5 - 1e-10))
            alpha = 0.5 * np.log((1.0 - error) / error)
            stump = DecisionStump(
                dim=int(dim),
                threshold=threshold,
                polarity=polarity,
                alpha=float(alpha),
            )
            self.stumps.append(stump)
            predictions = stump.predict(x)
            weights = weights * np.exp(-alpha * y * predictions)
            weights = weights / weights.sum()
            if error < 1e-9:
                break
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Real-valued score: sum of weighted stump votes."""
        if not self.is_fitted:
            raise RuntimeError("AdaBoostStumps used before fit")
        x = np.atleast_2d(np.asarray(features, dtype=float))
        scores = np.zeros(len(x))
        for stump in self.stumps:
            scores += stump.alpha * stump.predict(x)
        return scores

    def predict(self, features: np.ndarray) -> np.ndarray:
        """+-1 class prediction."""
        return np.where(self.decision_function(features) >= 0, 1.0, -1.0)

    def score_tensor(self, windows: np.ndarray) -> np.ndarray:
        """Score an ``(..., d)`` tensor of windows without flattening.

        Used by the sliding-window scan: the stump lookups broadcast
        over the leading dimensions.
        """
        if not self.is_fitted:
            raise RuntimeError("AdaBoostStumps used before fit")
        scores = np.zeros(windows.shape[:-1])
        for stump in self.stumps:
            raw = np.where(
                windows[..., stump.dim] > stump.threshold, 1.0, -1.0
            )
            scores += stump.alpha * stump.polarity * raw
        return scores

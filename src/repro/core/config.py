"""EECS configuration.

Default values follow Section VI-E of the paper: accuracy slack
factors ``gamma_n = 0.85`` / ``gamma_p = 0.8``, a 100-frame accuracy
assessment period and a 500-frame re-calibration interval, a 6-hour
operation time with one processed frame every 2 seconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EECSConfig:
    """Tunable parameters of the EECS controller.

    Attributes:
        gamma_n: Required fraction of the baseline object count
            (``D_n >= gamma_n * N*``).
        gamma_p: Required fraction of the baseline mean detection
            probability (``D_p >= gamma_p * P*``).
        assessment_period: Frames of detection metadata used per
            accuracy assessment.
        recalibration_interval: Frames between re-assessments; the
            current camera/algorithm selection holds in between.
        subspace_dim: PCA dimension ``beta`` for the GFK comparison.
        feature_frames: Frames sampled per video for feature upload.
        operation_time_s: Expected remaining operation time, used to
            derive per-frame budgets.
        seconds_per_frame: Processing cadence.
        ground_radius_m: Re-identification gating distance on the
            ground plane.
        color_threshold: Mahalanobis gate for colour verification.
        iou_threshold: Box-overlap threshold for evaluation matching.
    """

    gamma_n: float = 0.85
    gamma_p: float = 0.8
    assessment_period: int = 100
    recalibration_interval: int = 500
    subspace_dim: int = 16
    feature_frames: int = 100
    operation_time_s: float = 6 * 3600.0
    seconds_per_frame: float = 2.0
    ground_radius_m: float = 0.9
    color_threshold: float = 3.5
    iou_threshold: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma_n <= 1.0:
            raise ValueError(f"gamma_n must be in (0, 1], got {self.gamma_n}")
        if not 0.0 < self.gamma_p <= 1.0:
            raise ValueError(f"gamma_p must be in (0, 1], got {self.gamma_p}")
        if self.assessment_period < 1:
            raise ValueError("assessment_period must be >= 1 frame")
        if self.recalibration_interval < self.assessment_period:
            raise ValueError(
                "recalibration_interval must cover the assessment period"
            )
        if self.operation_time_s <= 0 or self.seconds_per_frame <= 0:
            raise ValueError("operation time and cadence must be positive")

"""Camera-subset selection and algorithm downgrade (Sections IV-B.3/4).

During an accuracy assessment period every camera runs all affordable
algorithms and uploads the detection metadata; the controller can then
*compute* — not guess — the global accuracy of any candidate
(camera subset, algorithm assignment) by fusing the stored metadata.
The greedy selection activates cameras in decreasing individual
accuracy until the desired accuracy is met; the downgrade pass then
walks the selected cameras in reverse order, substituting cheaper
algorithms while the requirement still holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.accuracy import (
    DesiredAccuracy,
    GlobalAccuracy,
    estimate_global_accuracy,
)
from repro.core.calibration import TrainingItem
from repro.core.ranking import efficiency_candidates
from repro.detection.base import Detection
from repro.reid.matcher import CrossCameraMatcher


@dataclass
class AssessmentData:
    """Detection metadata collected during one assessment period.

    ``frames[i][camera_id][algorithm]`` holds camera ``camera_id``'s
    thresholded, probability-calibrated detections on assessment frame
    ``i`` when running ``algorithm``.
    """

    frames: list[dict[str, dict[str, list[Detection]]]] = field(
        default_factory=list
    )
    #: Memo of fused accuracies keyed by assignment (see
    #: :meth:`SelectionEngine.global_accuracy`).  Selection evaluates
    #: the same assignment repeatedly (baseline, greedy growth,
    #: downgrade trials); the memo ties the cache's lifetime to the
    #: assessment whose metadata it summarises.
    accuracy_cache: dict[tuple, "GlobalAccuracy"] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def camera_ids(self) -> list[str]:
        cameras: list[str] = []
        for frame in self.frames:
            for camera_id in frame:
                if camera_id not in cameras:
                    cameras.append(camera_id)
        return cameras

    def algorithms_for(self, camera_id: str) -> list[str]:
        algorithms: list[str] = []
        for frame in self.frames:
            for algorithm in frame.get(camera_id, {}):
                if algorithm not in algorithms:
                    algorithms.append(algorithm)
        return algorithms

    def detections(
        self, frame_idx: int, camera_id: str, algorithm: str
    ) -> list[Detection]:
        return self.frames[frame_idx].get(camera_id, {}).get(algorithm, [])


@dataclass
class CameraPlan:
    """Everything the selector needs to know about one camera.

    Attributes:
        camera_id: The camera.
        item: Its matched training item (profiles + thresholds).
        best_algorithm: The most accurate affordable algorithm ``A*``.
        budget: Per-frame energy budget ``B_j``.
        communication_cost: Per-frame communication cost ``C_j``.
    """

    camera_id: str
    item: TrainingItem
    best_algorithm: str
    budget: float
    communication_cost: float = 0.0

    @property
    def best_profile(self):
        return self.item.profile(self.best_algorithm)


class SelectionEngine:
    """Evaluates candidate selections against assessment metadata."""

    def __init__(self, matcher: CrossCameraMatcher) -> None:
        self.matcher = matcher

    # ------------------------------------------------------------------
    # Accuracy evaluation
    # ------------------------------------------------------------------
    def global_accuracy(
        self,
        assessment: AssessmentData,
        assignment: dict[str, str],
    ) -> GlobalAccuracy:
        """Fused ``(N, P-bar)`` for a camera->algorithm assignment.

        Results are memoised per assignment on the assessment itself:
        the metadata is immutable once collected, so the fused accuracy
        of an assignment never changes within one assessment period.
        """
        key = tuple(sorted(assignment.items()))
        cached = assessment.accuracy_cache.get(key)
        if cached is not None:
            return cached
        frame_groups = []
        for frame_idx in range(assessment.num_frames):
            detections: list[Detection] = []
            for camera_id, algorithm in assignment.items():
                detections.extend(
                    assessment.detections(frame_idx, camera_id, algorithm)
                )
            frame_groups.append(self.matcher.group(detections))
        result = estimate_global_accuracy(frame_groups)
        assessment.accuracy_cache[key] = result
        return result

    def individual_accuracy(
        self,
        assessment: AssessmentData,
        camera_id: str,
        algorithm: str,
    ) -> float:
        """A camera's standalone accuracy proxy: the expected number of
        true detections per frame (sum of detection probabilities)."""
        if assessment.num_frames == 0:
            return 0.0
        total = 0.0
        for frame_idx in range(assessment.num_frames):
            for det in assessment.detections(frame_idx, camera_id, algorithm):
                p = det.probability
                if np.isnan(p):
                    p = float(np.clip(det.score, 0.0, 1.0))
                total += p
        return total / assessment.num_frames

    def rank_cameras(
        self,
        assessment: AssessmentData,
        plans: list[CameraPlan],
    ) -> list[CameraPlan]:
        """Order cameras by decreasing individual accuracy, the list
        ``S_o`` of Section IV-B.3."""
        return sorted(
            plans,
            key=lambda plan: -self.individual_accuracy(
                assessment, plan.camera_id, plan.best_algorithm
            ),
        )

    # ------------------------------------------------------------------
    # Greedy camera subset (Section IV-B.3)
    # ------------------------------------------------------------------
    def greedy_subset(
        self,
        assessment: AssessmentData,
        ranked_plans: list[CameraPlan],
        desired: DesiredAccuracy,
    ) -> tuple[list[CameraPlan], GlobalAccuracy]:
        """Activate cameras in rank order until ``desired`` is met.

        Returns the chosen plans and the accuracy they achieve; if
        even the full set misses the requirement, all cameras are
        returned (the best EECS can do).
        """
        if not ranked_plans:
            raise ValueError("no cameras to select from")
        chosen: list[CameraPlan] = []
        achieved = GlobalAccuracy(0, 0.0)
        for plan in ranked_plans:
            chosen.append(plan)
            assignment = {
                p.camera_id: p.best_algorithm for p in chosen
            }
            achieved = self.global_accuracy(assessment, assignment)
            if achieved.meets(desired):
                break
        return chosen, achieved

    # ------------------------------------------------------------------
    # Algorithm downgrade (Section IV-B.4)
    # ------------------------------------------------------------------
    def downgrade(
        self,
        assessment: AssessmentData,
        chosen: list[CameraPlan],
        desired: DesiredAccuracy,
    ) -> dict[str, str]:
        """Substitute cheaper algorithms while accuracy holds.

        Walks the chosen cameras in reverse accuracy order.  For each,
        tries the efficiency-filtered cheaper alternatives (highest
        ``f_score/energy`` first, per the paper's pruning rule); the
        first substitution that keeps the desired global accuracy is
        locked in.  The pass stops at the first camera where no
        alternative works, as specified in Section IV-B.4.
        """
        assignment = {p.camera_id: p.best_algorithm for p in chosen}
        for plan in reversed(chosen):
            current = plan.item.profile(assignment[plan.camera_id])
            available = set(assessment.algorithms_for(plan.camera_id))
            candidates = [
                c
                for c in efficiency_candidates(
                    plan.item,
                    current,
                    plan.budget,
                    plan.communication_cost,
                )
                # Only algorithms with assessment metadata can be
                # evaluated; others would silently count as zero
                # detections.
                if c.algorithm in available
            ]
            substituted = False
            for candidate in candidates:
                trial = dict(assignment)
                trial[plan.camera_id] = candidate.algorithm
                if self.global_accuracy(assessment, trial).meets(desired):
                    assignment = trial
                    substituted = True
                    break
            if not substituted:
                break
        return assignment

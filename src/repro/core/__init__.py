"""EECS core: the energy-efficient camera-coordination framework.

This package is the paper's contribution (Section IV).  The central
controller (a) profiles every detection algorithm on every training
video offline, (b) matches each camera's uploaded features to the
closest training item via domain adaptation to rank algorithms per
camera, (c) greedily selects the smallest camera subset whose fused
detections meet the desired global accuracy, and (d) downgrades
selected cameras to cheaper algorithms whenever the accuracy
requirement still holds — minimising energy subject to
``D = [D_n, D_p]`` and per-camera budgets ``c(A_j) + C_j <= B_j``.
"""

from repro.core.accuracy import (
    DesiredAccuracy,
    GlobalAccuracy,
    estimate_global_accuracy,
)
from repro.core.calibration import (
    AlgorithmProfile,
    TrainingItem,
    TrainingLibrary,
    profile_algorithm,
)
from repro.core.config import EECSConfig
from repro.core.controller import CameraState, EECSController, SelectionDecision
from repro.core.ranking import (
    best_affordable,
    efficiency_candidates,
    rank_algorithms,
)
from repro.core.runner import RunResult, SimulationRunner
from repro.core.selection import AssessmentData, SelectionEngine

__all__ = [
    "DesiredAccuracy",
    "GlobalAccuracy",
    "estimate_global_accuracy",
    "AlgorithmProfile",
    "TrainingItem",
    "TrainingLibrary",
    "profile_algorithm",
    "EECSConfig",
    "CameraState",
    "EECSController",
    "SelectionDecision",
    "best_affordable",
    "efficiency_candidates",
    "rank_algorithms",
    "RunResult",
    "SimulationRunner",
    "AssessmentData",
    "SelectionEngine",
]

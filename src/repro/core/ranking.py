"""Algorithm rank ordering per camera (Section IV-B.2).

Once an incoming feed is matched to its closest training item, the
item's offline profiles transfer: the ranked algorithm list, the
f_score-maximising thresholds and the probability calibrators are all
taken from the matched item.  This module provides the ranking and
budget-filtered selection helpers the controller uses.
"""

from __future__ import annotations

from repro.core.calibration import AlgorithmProfile, TrainingItem


def rank_algorithms(item: TrainingItem) -> list[AlgorithmProfile]:
    """Profiles of a training item sorted by decreasing f_score."""
    return item.ranked()


def affordable_profiles(
    item: TrainingItem,
    budget: float,
    communication_cost: float = 0.0,
) -> list[AlgorithmProfile]:
    """Profiles satisfying the energy constraint ``c(A) + C <= B``."""
    return [
        profile
        for profile in item.profiles.values()
        if profile.energy_per_frame + communication_cost <= budget
    ]


def best_affordable(
    item: TrainingItem,
    budget: float,
    communication_cost: float = 0.0,
) -> AlgorithmProfile | None:
    """The most accurate algorithm within budget, ``A*`` of Section IV-A.

    Returns ``None`` when no algorithm fits the budget (the camera
    cannot participate).
    """
    candidates = affordable_profiles(item, budget, communication_cost)
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.f_score)


def efficiency_candidates(
    item: TrainingItem,
    current: AlgorithmProfile,
    budget: float,
    communication_cost: float = 0.0,
) -> list[AlgorithmProfile]:
    """Cheaper alternatives worth exploring during downgrade.

    Section IV-B.4: "EECS only pays attention to algorithms that have
    higher f_score/energy values compared to the most accurate
    algorithm."  Candidates must also fit the budget and actually
    save energy; they are returned cheapest-first so the greedy
    downgrade tries the biggest saving first.
    """
    candidates = [
        profile
        for profile in affordable_profiles(item, budget, communication_cost)
        if profile.algorithm != current.algorithm
        and profile.efficiency > current.efficiency
        and profile.energy_per_frame < current.energy_per_frame
    ]
    return sorted(candidates, key=lambda p: p.energy_per_frame)

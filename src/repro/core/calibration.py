"""Offline training at the central controller (Section IV-A).

For every (detection algorithm, training video) pair — ``H x N``
combinations — the controller runs the algorithm over the training
frames, sweeps the detection-score threshold to find the
f_score-maximising cut-off ``d_t``, records precision/recall/f_score
at that point along with the measured per-frame energy and latency,
and fits a score-to-probability calibrator from the labelled scores.
The result is a :class:`TrainingLibrary`: per training item, a ranked
list of :class:`AlgorithmProfile` records plus the item's feature
stack for GFK matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.base import BoundingBox, Detection, Detector
from repro.detection.metrics import best_threshold
from repro.detection.scores import ScoreCalibrator
from repro.domain_adaptation.pca import uncentered_basis
from repro.energy.model import ProcessingEnergyModel
from repro.perf.cache import ArrayCache


@dataclass
class AlgorithmProfile:
    """Measured performance of one algorithm on one training item.

    Attributes:
        algorithm: Detector name.
        training_item: Name of the training video it was measured on.
        threshold: f_score-maximising detection-score cut-off ``d_t``.
        precision: Precision at ``threshold``.
        recall: Recall at ``threshold``.
        f_score: f_score at ``threshold``.
        energy_per_frame: Joules per processed frame (processing only;
            communication is algorithm-independent).
        time_per_frame: Seconds per processed frame.
        calibrator: Score-to-probability mapping fitted on the
            training detections.
    """

    algorithm: str
    training_item: str
    threshold: float
    precision: float
    recall: float
    f_score: float
    energy_per_frame: float
    time_per_frame: float
    calibrator: ScoreCalibrator = field(default_factory=ScoreCalibrator)

    @property
    def efficiency(self) -> float:
        """The paper's downgrade figure of merit: f_score per Joule."""
        if self.energy_per_frame <= 0:
            return float("inf")
        return self.f_score / self.energy_per_frame


def profile_algorithm(
    detector: Detector,
    frames: list[tuple[list[Detection], list[BoundingBox]]],
    training_item: str,
    energy_model: ProcessingEnergyModel,
    num_steps: int = 60,
) -> AlgorithmProfile:
    """Build the profile of one algorithm from its scored detections.

    Args:
        detector: The profiled detector (its name and energy cost are
            recorded).
        frames: Per-frame (all scored detections, ground-truth boxes)
            pairs from the training segment.
        training_item: Name of the training video.
        energy_model: Resolution-bound cost model for this camera.
        num_steps: Threshold sweep granularity.
    """
    threshold, counts = best_threshold(frames, num_steps=num_steps)
    calibrator = ScoreCalibrator()
    scores = np.array(
        [d.score for dets, _ in frames for d in dets]
    )
    labels = np.array(
        [1.0 if d.is_true_positive else 0.0 for dets, _ in frames for d in dets]
    )
    if len(scores) >= 2:
        calibrator.fit(scores, labels)
    return AlgorithmProfile(
        algorithm=detector.name,
        training_item=training_item,
        threshold=float(threshold),
        precision=counts.precision,
        recall=counts.recall,
        f_score=counts.f_score,
        energy_per_frame=energy_model.energy_per_frame(detector.name),
        time_per_frame=energy_model.time_per_frame(detector.name),
        calibrator=calibrator,
    )


@dataclass
class TrainingItem:
    """One training video's offline-training output.

    Attributes:
        name: Training item identifier, e.g. ``"T_1.1"``.
        profiles: Per-algorithm measured profiles.
        features: ``(k, alpha)`` frame-feature stack for GFK matching
            (may be empty when similarity matching is not needed).
    """

    name: str
    profiles: dict[str, AlgorithmProfile]
    features: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0))
    )

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ValueError(f"training item {self.name!r} has no profiles")
        for algorithm, profile in self.profiles.items():
            if profile.algorithm != algorithm:
                raise ValueError(
                    f"profile key {algorithm!r} does not match "
                    f"profile.algorithm {profile.algorithm!r}"
                )

    @property
    def algorithms(self) -> list[str]:
        return list(self.profiles)

    def ranked(self) -> list[AlgorithmProfile]:
        """Profiles sorted by decreasing f_score."""
        return sorted(self.profiles.values(), key=lambda p: -p.f_score)

    def profile(self, algorithm: str) -> AlgorithmProfile:
        try:
            return self.profiles[algorithm]
        except KeyError:
            raise KeyError(
                f"training item {self.name!r} has no profile for "
                f"{algorithm!r}; available: {sorted(self.profiles)}"
            ) from None

    def subspace(
        self, dim: int, cache: ArrayCache | None = None
    ) -> np.ndarray:
        """The item's uncentered PCA basis for GFK matching.

        With a cache (typically :attr:`TrainingLibrary.cache`), the
        SVD over the feature stack runs once per (item, dim) no matter
        how many cameras recalibrate against this item.
        """
        if self.features.size == 0:
            raise ValueError(
                f"training item {self.name!r} has no feature stack"
            )
        return uncentered_basis(self.features, dim, cache=cache)


class TrainingLibrary:
    """All training items known to the controller.

    The library owns the shared calibration memo cache: every consumer
    that derives per-item artifacts (PCA subspaces, GFK factors)
    should route its computation through :attr:`cache` so a second
    recalibration pass over unchanged training data costs no SVDs.
    """

    def __init__(self, cache: ArrayCache | None = None) -> None:
        self._items: dict[str, TrainingItem] = {}
        self.cache = cache if cache is not None else ArrayCache()

    def add(self, item: TrainingItem) -> None:
        if item.name in self._items:
            raise ValueError(f"training item {item.name!r} already registered")
        self._items[item.name] = item

    def get(self, name: str) -> TrainingItem:
        try:
            return self._items[name]
        except KeyError:
            raise KeyError(
                f"unknown training item {name!r}; "
                f"available: {sorted(self._items)}"
            ) from None

    @property
    def names(self) -> list[str]:
        return list(self._items)

    def subspace(self, name: str, dim: int) -> np.ndarray:
        """A named item's PCA basis, memoised in the library cache."""
        return self.get(name).subspace(dim, cache=self.cache)

    def cache_stats(self) -> dict[str, int | float]:
        """Hit/miss counters of the shared calibration cache."""
        return self.cache.stats()

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, name: str) -> bool:
        return name in self._items

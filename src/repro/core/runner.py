"""Frame-loop simulation of an EECS deployment.

Reproduces the paper's evaluation protocol (Section VI-E): only
ground-truth-annotated frames are processed; the controller assesses
accuracy on the metadata of one assessment period (100 frames = 4
annotated frames for dataset #1), selects cameras and algorithms, and
the selection runs until the next re-calibration interval (500
frames).  Energy is accounted per camera per frame through the fitted
processing model plus the communication model; detected humans are
counted after cross-camera re-identification.

Modes:

* ``"all_best"`` — every camera runs its most accurate affordable
  algorithm every frame (the paper's baseline, left bars of Fig. 5).
* ``"subset"`` — EECS selects a camera subset but keeps best
  algorithms (middle bars).
* ``"full"`` — subset selection plus algorithm downgrade (right bars).
* ``"fixed"`` — a caller-supplied camera->algorithm assignment with no
  assessment (the Fig. 4 trade-off points).

Parallelism: every detection task draws from a generator seeded by the
run's entropy plus its ``(frame, camera, algorithm)`` coordinates, so
results do not depend on execution order.  With ``workers > 1`` the
per-camera detection work of each phase fans out over a process pool;
``workers=1`` (the default) runs the exact same tasks serially and is
guaranteed to produce identical output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.calibration import (
    TrainingItem,
    TrainingLibrary,
    profile_algorithm,
)
from repro.core.config import EECSConfig
from repro.core.controller import EECSController, SelectionDecision
from repro.core.selection import AssessmentData
from repro.datasets.base import FrameRecord
from repro.datasets.groundtruth import ground_truth_boxes, persons_in_any_view
from repro.datasets.synthetic import SyntheticDataset
from repro.detection.base import Detection, Detector
from repro.detection.detectors import make_detector_suite
from repro.energy.battery import Battery
from repro.energy.communication import CommunicationEnergyModel
from repro.energy.meter import EnergyMeter
from repro.energy.model import ProcessingEnergyModel
from repro.perf.parallel import parallel_map
from repro.perf.timing import TimingReport
from repro.reid.mahalanobis import MahalanobisMetric
from repro.reid.matcher import CrossCameraMatcher
from repro.telemetry.core import Telemetry
from repro.telemetry.trace import TracingTimingReport


@dataclass
class RunResult:
    """Outcome of one simulated deployment run."""

    mode: str
    humans_detected: int
    humans_present: int
    energy_joules: float
    processing_joules: float
    communication_joules: float
    energy_by_camera: dict[str, float]
    mean_fused_probability: float
    frames_evaluated: int
    decisions: list[SelectionDecision] = field(default_factory=list)
    processing_seconds: float = 0.0

    @property
    def detection_rate(self) -> float:
        """Fraction of present humans that were detected."""
        if self.humans_present == 0:
            return 0.0
        return self.humans_detected / self.humans_present

    def max_latency_per_frame(self) -> float:
        """Mean per-camera processing seconds per evaluated frame.

        The paper processes one frame every ``seconds_per_frame``
        (2 s); a deployment whose per-frame latency exceeds that
        cadence cannot keep up in real time — the stated reason LSVM
        is excluded despite its accuracy (Section VI-A).
        """
        if self.frames_evaluated == 0:
            return 0.0
        return self.processing_seconds / self.frames_evaluated


def offline_train_camera(
    dataset: SyntheticDataset,
    camera_id: str,
    detectors: dict[str, Detector],
    energy_model: ProcessingEnergyModel,
    rng: np.random.Generator,
    item_name: str | None = None,
) -> TrainingItem:
    """Profile every algorithm on one camera's training segment."""
    segment = dataset.training_segment()
    profiles = {}
    for name, detector in detectors.items():
        frames = []
        for record in segment.frames:
            observation = record.observation(camera_id)
            detections = detector.detect(observation, rng)
            frames.append((detections, ground_truth_boxes(observation)))
        profiles[name] = profile_algorithm(
            detector, frames, item_name or f"T-{camera_id}", energy_model
        )
    return TrainingItem(
        name=item_name or f"T-{camera_id}", profiles=profiles
    )


def build_training_library(
    dataset: SyntheticDataset,
    detectors: dict[str, Detector],
    rng: np.random.Generator,
) -> TrainingLibrary:
    """Offline training over all of a dataset's cameras."""
    env = dataset.environment
    energy_model = ProcessingEnergyModel(width=env.width, height=env.height)
    library = TrainingLibrary()
    for camera_id in dataset.camera_ids:
        library.add(
            offline_train_camera(
                dataset, camera_id, detectors, energy_model, rng
            )
        )
    return library


def fit_color_metric(
    dataset: SyntheticDataset,
    detectors: dict[str, Detector],
    rng: np.random.Generator,
    num_frames: int = 8,
) -> MahalanobisMetric:
    """Fit the re-identification colour metric on training detections."""
    segment = dataset.training_segment()
    samples = []
    any_detector = next(iter(detectors.values()))
    for record in segment.frames[:num_frames]:
        for camera_id in dataset.camera_ids:
            observation = record.observation(camera_id)
            for det in any_detector.detect(observation, rng):
                samples.append(det.color_feature)
    if len(samples) < 2:
        raise RuntimeError("too few detections to fit the colour metric")
    return MahalanobisMetric(n_components=None, shrinkage=0.2).fit(
        np.stack(samples)
    )


#: One detection work unit: everything a worker process needs, with no
#: shared state — (detector, observation, rng seed entropy, threshold).
_DetectTask = tuple[Detector, object, tuple[int, ...], float | None]


def _detect_task(task: _DetectTask) -> list[Detection]:
    """Run one detector on one observation with a task-local generator.

    Module-level (picklable) and pure apart from the freshly seeded
    generator, so serial and process-pool execution agree bit for bit.
    """
    detector, observation, entropy, threshold = task
    rng = np.random.default_rng(list(entropy))
    return detector.detect(observation, rng, threshold=threshold)


class SimulationRunner:
    """Drives a dataset through the EECS control loop."""

    def __init__(
        self,
        dataset: SyntheticDataset,
        config: EECSConfig | None = None,
        detectors: dict[str, Detector] | None = None,
        library: TrainingLibrary | None = None,
        rng: np.random.Generator | None = None,
        seed: int = 2017,
        workers: int = 1,
        timing: TimingReport | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or EECSConfig()
        self._seed = seed
        self._latency_seconds = 0.0
        self.workers = workers
        self.telemetry = telemetry
        #: Simulated time of the round in flight (frame cadence), read
        #: by the controller's decision events.
        self._sim_time_s = 0.0
        if timing is not None:
            self.timing = timing
        elif telemetry is not None:
            # Phase sections double as spans in the telemetry trace.
            self.timing = TracingTimingReport(telemetry.tracer)
        else:
            self.timing = TimingReport()
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        env = dataset.environment
        self.detectors = detectors or make_detector_suite(env)
        self.energy_model = ProcessingEnergyModel(
            width=env.width, height=env.height
        )
        if library is None:
            with self.timing.section("offline_training"):
                library = build_training_library(
                    dataset, self.detectors, self.rng
                )
        self.library = library
        color_metric = fit_color_metric(dataset, self.detectors, self.rng)
        self.matcher = CrossCameraMatcher(
            image_to_ground=dataset.ground_homographies(),
            ground_radius=self.config.ground_radius_m,
            color_metric=color_metric,
            color_threshold=self.config.color_threshold,
        )
        self.controller = EECSController(
            self.config, self.library, self.matcher, telemetry=telemetry
        )
        if telemetry is not None:
            self.controller.now_fn = lambda: self._sim_time_s
        for camera_id in dataset.camera_ids:
            battery = Battery()
            if telemetry is not None:
                battery.instrument(
                    telemetry, camera_id, clock=lambda: self._sim_time_s
                )
            self.controller.register_camera(
                camera_id,
                processing_model=self.energy_model,
                communication_model=CommunicationEnergyModel(
                    width=env.width, height=env.height
                ),
                battery=battery,
            )
            self.controller.assign_training_item(camera_id, f"T-{camera_id}")
        self._camera_order = {
            camera_id: index
            for index, camera_id in enumerate(dataset.camera_ids)
        }
        self._algorithm_order = {
            name: index for index, name in enumerate(sorted(self.detectors))
        }
        self._run_entropy: tuple[int, ...] = (seed,)
        self._active_workers = workers

    # ------------------------------------------------------------------
    # Per-frame primitives
    # ------------------------------------------------------------------
    def _task_entropy(
        self, record: FrameRecord, camera_id: str, algorithm: str
    ) -> tuple[int, ...]:
        """Seed entropy of one detection task.

        A pure function of the run configuration and the task's
        (frame, camera, algorithm) coordinates — never of execution
        order — which is what makes the parallel fan-out reproduce the
        serial run exactly.
        """
        return (
            *self._run_entropy,
            record.frame_index,
            self._camera_order[camera_id],
            self._algorithm_order[algorithm],
        )

    def _batch_detections(
        self,
        requests: list[tuple[FrameRecord, str, str]],
        meter: EnergyMeter,
    ) -> dict[tuple[int, str, str], list[Detection]]:
        """Detect every requested (frame, camera, algorithm) triple.

        Detection itself fans out over the configured worker pool;
        accounting (probability calibration, energy metering, latency)
        runs serially afterwards in request order.

        Returns detections keyed by
        ``(frame_index, camera_id, algorithm)``.
        """
        tasks: list[_DetectTask] = []
        for record, camera_id, algorithm in requests:
            threshold = (
                self.library.get(f"T-{camera_id}")
                .profile(algorithm)
                .threshold
            )
            tasks.append((
                self.detectors[algorithm],
                record.observation(camera_id),
                self._task_entropy(record, camera_id, algorithm),
                threshold,
            ))
        with self.timing.section("detection"):
            results = parallel_map(
                _detect_task, tasks, workers=self._active_workers
            )
        out: dict[tuple[int, str, str], list[Detection]] = {}
        for (record, camera_id, algorithm), detections in zip(
            requests, results
        ):
            self.controller.calibrate_probabilities(camera_id, detections)
            if self.telemetry is not None:
                # Recorded here, in the serial accounting loop, so the
                # counters are identical for any worker count.
                self.telemetry.observe_detections(
                    camera_id, algorithm, detections
                )
            meter.record_processing(
                camera_id, self.energy_model.energy_per_frame(algorithm)
            )
            self._latency_seconds += self.energy_model.time_per_frame(
                algorithm
            )
            comm = self.controller.camera(camera_id).communication_model
            meter.record_communication(
                camera_id, comm.metadata_cost(len(detections))
            )
            out[(record.frame_index, camera_id, algorithm)] = detections
        return out

    def _affordable_algorithms(
        self, camera_id: str, budget: float | None
    ) -> list[str]:
        plan = self.controller.camera_plan(camera_id, budget)
        if plan is None:
            return []
        comm = plan.communication_cost
        return [
            p.algorithm
            for p in plan.item.profiles.values()
            if p.energy_per_frame + comm <= plan.budget
        ]

    def _collect_assessment(
        self,
        records: list[FrameRecord],
        budget: float | None,
        meter: EnergyMeter,
    ) -> AssessmentData:
        """Run all affordable algorithms on the assessment frames."""
        plan: list[tuple[FrameRecord, dict[str, list[str]]]] = []
        requests: list[tuple[FrameRecord, str, str]] = []
        for record in records:
            per_camera: dict[str, list[str]] = {}
            for camera_id in self.dataset.camera_ids:
                algorithms = self._affordable_algorithms(camera_id, budget)
                if not algorithms:
                    continue
                per_camera[camera_id] = algorithms
                requests.extend(
                    (record, camera_id, algorithm)
                    for algorithm in algorithms
                )
            plan.append((record, per_camera))
        detections = self._batch_detections(requests, meter)
        assessment = AssessmentData()
        for record, per_camera in plan:
            assessment.frames.append({
                camera_id: {
                    algorithm: detections[
                        (record.frame_index, camera_id, algorithm)
                    ]
                    for algorithm in algorithms
                }
                for camera_id, algorithms in per_camera.items()
            })
        return assessment

    def _evaluate_frame(
        self,
        record: FrameRecord,
        assignment: dict[str, str],
        meter: EnergyMeter,
        detections_cache: dict[str, list[Detection]] | None = None,
    ) -> tuple[int, int, list[float]]:
        """Detect with the active assignment, fuse, count humans.

        Returns (detected, present, fused probabilities).
        """
        missing = [
            (record, camera_id, algorithm)
            for camera_id, algorithm in assignment.items()
            if detections_cache is None or camera_id not in detections_cache
        ]
        computed = (
            self._batch_detections(missing, meter) if missing else {}
        )
        detections: list[Detection] = []
        for camera_id, algorithm in assignment.items():
            if detections_cache is not None and camera_id in detections_cache:
                detections.extend(detections_cache[camera_id])
            else:
                detections.extend(
                    computed[(record.frame_index, camera_id, algorithm)]
                )
        with self.timing.section("reid_grouping"):
            groups = self.matcher.group(detections)
        detected_ids = {
            group.majority_truth_id
            for group in groups
            if group.is_true_object
        }
        present = persons_in_any_view(record.observations)
        probabilities = [g.fused_probability for g in groups]
        return len(detected_ids & present), len(present), probabilities

    def _evaluate_batch(
        self,
        records: list[FrameRecord],
        assignments: list[dict[str, str]],
        meter: EnergyMeter,
    ) -> tuple[int, int, list[float]]:
        """Evaluate many frames, detecting them all in one fan-out."""
        requests = [
            (record, camera_id, algorithm)
            for record, assignment in zip(records, assignments)
            for camera_id, algorithm in assignment.items()
        ]
        detections = self._batch_detections(requests, meter)
        detected_total = 0
        present_total = 0
        probabilities: list[float] = []
        for record, assignment in zip(records, assignments):
            cache = {
                camera_id: detections[
                    (record.frame_index, camera_id, algorithm)
                ]
                for camera_id, algorithm in assignment.items()
            }
            detected, present, probs = self._evaluate_frame(
                record, assignment, meter, detections_cache=cache
            )
            detected_total += detected
            present_total += present
            probabilities.extend(probs)
        return detected_total, present_total, probabilities

    # ------------------------------------------------------------------
    # The deployment loop
    # ------------------------------------------------------------------
    def run(
        self,
        mode: str = "full",
        budget: float | None = None,
        assignment: dict[str, str] | None = None,
        start: int | None = None,
        end: int | None = None,
        workers: int | None = None,
    ) -> RunResult:
        """Simulate a deployment over the dataset's test segment.

        Args:
            mode: ``"all_best"``, ``"subset"``, ``"full"`` or
                ``"fixed"``.
            budget: Per-frame energy budget applied to every camera
                (``None`` derives it from the battery as in the paper).
            assignment: Required for ``"fixed"`` mode: the static
                camera -> algorithm map to run.
            start: First frame (defaults to the test segment start).
            end: One past the last frame (defaults to the dataset end).
            workers: Override the runner's worker count for this run.
                Any value yields identical results; ``> 1`` fans
                detection work over a process pool.
        """
        if mode not in ("all_best", "subset", "full", "fixed"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "fixed" and not assignment:
            raise ValueError("fixed mode needs an explicit assignment")
        self._active_workers = self.workers if workers is None else workers

        # Reseed per run configuration so results are independent of
        # how many runs preceded this one on the shared runner.  The
        # same entropy also seeds every per-task generator, keyed by
        # its (frame, camera, algorithm) coordinates.
        self._run_entropy = (
            self._seed,
            sum(mode.encode()),
            0 if start is None else start,
            0 if budget is None else int(budget * 1000),
        )
        self.rng = np.random.default_rng(list(self._run_entropy))

        spec = self.dataset.spec
        start = spec.train_end if start is None else start
        end = spec.total_frames if end is None else end
        records = self.dataset.frames(start, end, only_ground_truth=True)

        meter = EnergyMeter(telemetry=self.telemetry)
        self._latency_seconds = 0.0
        detected_total = 0
        present_total = 0
        probabilities: list[float] = []
        decisions: list[SelectionDecision] = []

        gt_per_round = max(
            1, self.config.recalibration_interval // spec.gt_every
        )
        gt_per_assessment = max(
            1, self.config.assessment_period // spec.gt_every
        )
        budget_overrides = (
            {c: budget for c in self.dataset.camera_ids}
            if budget is not None
            else None
        )

        run_span = None
        if self.telemetry is not None:
            run_span = self.telemetry.tracer.begin(
                "run",
                mode=mode,
                seed=self._seed,
                budget=budget,
                frames=len(records),
            )
        try:
            if mode == "fixed":
                with self.timing.section("operation"):
                    detected_total, present_total, probabilities = (
                        self._evaluate_batch(
                            records, [assignment] * len(records), meter
                        )
                    )
            elif mode == "all_best":
                frame_assignments = [
                    self._all_best_assignment(budget) for _ in records
                ]
                with self.timing.section("operation"):
                    detected_total, present_total, probabilities = (
                        self._evaluate_batch(
                            records, frame_assignments, meter
                        )
                    )
            else:
                enable_downgrade = mode == "full"
                for round_index, round_start in enumerate(
                    range(0, len(records), gt_per_round)
                ):
                    round_records = records[
                        round_start : round_start + gt_per_round
                    ]
                    assess_records = round_records[:gt_per_assessment]
                    operate_records = round_records[gt_per_assessment:]

                    self._sim_time_s = (
                        round_records[0].frame_index
                        * self.config.seconds_per_frame
                    )
                    round_span = None
                    if self.telemetry is not None:
                        round_span = self.telemetry.tracer.begin(
                            "round",
                            index=round_index,
                            sim_time_s=self._sim_time_s,
                        )
                        self.telemetry.registry.counter(
                            "run_rounds_total",
                            "Assessment/selection rounds executed.",
                        ).inc()
                    try:
                        with self.timing.section("assessment"):
                            assessment = self._collect_assessment(
                                assess_records, budget, meter
                            )
                        with self.timing.section("selection"):
                            decision = self.controller.select(
                                assessment,
                                enable_subset=True,
                                enable_downgrade=enable_downgrade,
                                budget_overrides=budget_overrides,
                            )
                        decisions.append(decision)

                        # Assessment frames are also operational: the
                        # all-best detections are already available,
                        # reuse them.
                        for idx, record in enumerate(assess_records):
                            cache = {
                                camera_id: assessment.detections(
                                    idx, camera_id, algorithm
                                )
                                for camera_id, algorithm
                                in decision.assignment.items()
                            }
                            detected, present, probs = (
                                self._evaluate_frame(
                                    record,
                                    decision.assignment,
                                    meter,
                                    detections_cache=cache,
                                )
                            )
                            detected_total += detected
                            present_total += present
                            probabilities.extend(probs)

                        with self.timing.section("operation"):
                            detected, present, probs = (
                                self._evaluate_batch(
                                    operate_records,
                                    [decision.assignment]
                                    * len(operate_records),
                                    meter,
                                )
                            )
                        detected_total += detected
                        present_total += present
                        probabilities.extend(probs)
                    finally:
                        if round_span is not None:
                            self.telemetry.tracer.end(round_span)
        finally:
            if run_span is not None:
                self.telemetry.tracer.end(run_span)

        if self.telemetry is not None:
            registry = self.telemetry.registry
            registry.counter(
                "run_frames_total", "Ground-truth frames evaluated."
            ).inc(len(records))
            registry.counter(
                "run_humans_detected_total",
                "Humans detected after cross-camera fusion.",
            ).inc(detected_total)
            registry.counter(
                "run_humans_present_total",
                "Humans present in any view on evaluated frames.",
            ).inc(present_total)
            registry.gauge(
                "run_mean_fused_probability",
                "Mean fused detection probability of the latest run.",
            ).set(float(np.mean(probabilities)) if probabilities else 0.0)

        return RunResult(
            mode=mode,
            humans_detected=detected_total,
            humans_present=present_total,
            energy_joules=meter.total(),
            processing_joules=meter.total_by_category(EnergyMeter.PROCESSING),
            communication_joules=meter.total_by_category(
                EnergyMeter.COMMUNICATION
            ),
            energy_by_camera={
                camera_id: meter.total(camera_id)
                for camera_id in meter.camera_ids
            },
            mean_fused_probability=(
                float(np.mean(probabilities)) if probabilities else 0.0
            ),
            frames_evaluated=len(records),
            decisions=decisions,
            processing_seconds=self._latency_seconds,
        )

    def _all_best_assignment(self, budget: float | None) -> dict[str, str]:
        """Every camera on its most accurate affordable algorithm."""
        assignment = {}
        for camera_id in self.dataset.camera_ids:
            plan = self.controller.camera_plan(camera_id, budget)
            if plan is not None:
                assignment[camera_id] = plan.best_algorithm
        if not assignment:
            raise RuntimeError("no camera can afford any algorithm")
        return assignment

"""Frame-loop simulation of an EECS deployment (facade).

:class:`SimulationRunner` is the historical entry point for running a
deployment; since the engine refactor it is a thin facade over
:class:`repro.engine.core.DeploymentEngine` — one trained context, one
phase-scheduling loop, pluggable policies and execution backends.  The
public surface (constructor, :meth:`run`, attribute access) is
unchanged and bit-identical; new code should prefer the engine package
directly:

* ``repro.engine.DeploymentEngine`` — the unified simulation core.
* ``repro.engine.CoordinationPolicy`` — the strategy hierarchy behind
  the historical mode strings (``"all_best"``, ``"subset"``,
  ``"full"``, ``"fixed"``).
* ``repro.engine.DetectionExecutor`` — serial / process-pool
  detection backends (the ``workers`` plumbing).
* ``repro.engine.Environment`` — ideal frame feed vs. the
  fault-injected network.

Parallelism: every detection task draws from a generator seeded by the
run's entropy plus its ``(frame, camera, algorithm)`` coordinates, so
results do not depend on execution order.  With ``workers > 1`` the
per-camera detection work of each phase fans out over a process pool;
``workers=1`` (the default) runs the exact same tasks serially and is
guaranteed to produce identical output.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import EECSConfig
from repro.core.calibration import TrainingLibrary
from repro.core.selection import AssessmentData
from repro.datasets.base import FrameRecord
from repro.datasets.synthetic import SyntheticDataset
from repro.detection.base import Detector
from repro.energy.meter import EnergyMeter
from repro.engine.context import (
    DeploymentContext,
    build_training_library,
    fit_color_metric,
    offline_train_camera,
)
from repro.engine.core import DeploymentEngine, RunResult
from repro.engine.executor import make_executor
from repro.perf.timing import TimingReport
from repro.telemetry.core import Telemetry
from repro.telemetry.trace import TracingTimingReport

__all__ = [
    "RunResult",
    "SimulationRunner",
    "build_training_library",
    "fit_color_metric",
    "offline_train_camera",
]


class SimulationRunner:
    """Drives a dataset through the EECS control loop.

    Construction trains a :class:`~repro.engine.context.DeploymentContext`
    (or adopts the supplied ``library``/``detectors``) and wraps a
    :class:`~repro.engine.core.DeploymentEngine` around it; ``run``
    resolves the historical mode string to a registered coordination
    policy.
    """

    def __init__(
        self,
        dataset: SyntheticDataset,
        config: EECSConfig | None = None,
        detectors: dict[str, Detector] | None = None,
        library: TrainingLibrary | None = None,
        rng: np.random.Generator | None = None,
        seed: int = 2017,
        workers: int = 1,
        timing: TimingReport | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if timing is None:
            timing = (
                TracingTimingReport(telemetry.tracer)
                if telemetry is not None
                else TimingReport()
            )
        rng = rng if rng is not None else np.random.default_rng(seed)
        context = DeploymentContext.build(
            dataset,
            config=config,
            detectors=detectors,
            library=library,
            rng=rng,
            timing=timing,
        )
        self.workers = workers
        self._engine = DeploymentEngine(
            context,
            seed=seed,
            rng=rng,
            executor=make_executor(workers),
            timing=timing,
            telemetry=telemetry,
        )

    @classmethod
    def from_engine(cls, engine: DeploymentEngine) -> "SimulationRunner":
        """Wrap an existing engine without re-training anything."""
        runner = cls.__new__(cls)
        runner.workers = engine.executor.workers
        runner._engine = engine
        return runner

    @property
    def engine(self) -> DeploymentEngine:
        """The deployment engine this facade drives."""
        return self._engine

    # -- delegated state ------------------------------------------------
    # Plain delegating properties (with setters where tests and
    # experiments historically rebound them) so the facade and the
    # engine can never disagree about which objects a run uses.
    @property
    def dataset(self) -> SyntheticDataset:
        return self._engine.dataset

    @property
    def config(self) -> EECSConfig:
        return self._engine.config

    @property
    def detectors(self) -> dict[str, Detector]:
        return self._engine.detectors

    @detectors.setter
    def detectors(self, value: dict[str, Detector]) -> None:
        self._engine.detectors = value

    @property
    def library(self) -> TrainingLibrary:
        return self._engine.library

    @library.setter
    def library(self, value: TrainingLibrary) -> None:
        self._engine.library = value

    @property
    def matcher(self):
        return self._engine.matcher

    @matcher.setter
    def matcher(self, value) -> None:
        self._engine.matcher = value

    @property
    def energy_model(self):
        return self._engine.energy_model

    @property
    def controller(self):
        return self._engine.controller

    @property
    def timing(self) -> TimingReport:
        return self._engine.timing

    @property
    def telemetry(self) -> Telemetry | None:
        return self._engine.telemetry

    @property
    def rng(self) -> np.random.Generator:
        return self._engine.rng

    @rng.setter
    def rng(self, value: np.random.Generator) -> None:
        self._engine.rng = value

    # -- delegated behaviour --------------------------------------------
    def run(
        self,
        mode: str = "full",
        budget: float | None = None,
        assignment: dict[str, str] | None = None,
        start: int | None = None,
        end: int | None = None,
        workers: int | None = None,
        resilience=None,
    ) -> RunResult:
        """Simulate a deployment over the dataset's test segment.

        Args:
            mode: A registered policy name — ``"all_best"``,
                ``"subset"``, ``"full"`` or ``"fixed"``.
            budget: Per-frame energy budget applied to every camera
                (``None`` derives it from the battery as in the paper).
            assignment: Required for ``"fixed"`` mode: the static
                camera -> algorithm map to run.
            start: First frame (defaults to the test segment start).
            end: One past the last frame (defaults to the dataset end).
            workers: Override the runner's worker count for this run.
                Any value yields identical results; ``> 1`` fans
                detection work over a process pool.
            resilience: Optional
                :class:`~repro.resilience.ladder.ResilienceConfig`;
                the graceful-degradation layer is inert on the ideal
                feed (no faults can occur), so results are identical
                with or without it.
        """
        return self._engine.run(
            mode,
            budget=budget,
            assignment=assignment,
            start=start,
            end=end,
            workers=self.workers if workers is None else workers,
            resilience=resilience,
        )

    def _task_entropy(
        self, record: FrameRecord, camera_id: str, algorithm: str
    ) -> tuple[int, ...]:
        return self._engine._task_entropy(record, camera_id, algorithm)

    def _collect_assessment(
        self,
        records: list[FrameRecord],
        budget: float | None,
        meter: EnergyMeter,
    ) -> AssessmentData:
        return self._engine.collect_assessment(records, budget, meter)

    def _all_best_assignment(self, budget: float | None) -> dict[str, str]:
        return self._engine.all_best_assignment(budget)

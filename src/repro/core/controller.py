"""The EECS central controller (Section IV).

The controller runs on a server without energy constraints.  It holds
the training library and the GFK video comparator, tracks each
registered camera's budget and matched training item, converts raw
detection scores to probabilities with the matched item's calibrators,
and — given an assessment period's metadata — produces a
:class:`SelectionDecision`: which cameras to activate and which
algorithm each should run until the next re-calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.core import Telemetry

from repro.core.accuracy import DesiredAccuracy, GlobalAccuracy
from repro.core.calibration import TrainingLibrary
from repro.core.config import EECSConfig
from repro.core.ranking import best_affordable
from repro.core.selection import AssessmentData, CameraPlan, SelectionEngine
from repro.detection.base import Detection
from repro.domain_adaptation.similarity import VideoComparator
from repro.energy.battery import Battery
from repro.energy.communication import CommunicationEnergyModel
from repro.energy.model import ProcessingEnergyModel
from repro.reid.matcher import CrossCameraMatcher

#: Degradation-ladder modes for a registered camera.  ``active``
#: cameras compete normally for selection; ``degraded`` cameras are
#: pinned to their cheapest affordable detector profile; ``quarantined``
#: cameras are excluded from selection entirely (like dead ones) until
#: a re-admission probe clears them.
CAMERA_ACTIVE = "active"
CAMERA_DEGRADED = "degraded"
CAMERA_QUARANTINED = "quarantined"
CAMERA_MODES = (CAMERA_ACTIVE, CAMERA_DEGRADED, CAMERA_QUARANTINED)


@dataclass
class CameraState:
    """Controller-side record of one registered camera sensor.

    ``alive`` is the controller's *belief* about the camera (driven by
    heartbeat liveness, not ground truth): dead cameras are excluded
    from selection until they are heard from again.  ``mode`` is the
    resilience ladder position (see :data:`CAMERA_MODES`); it stays
    ``active`` unless a health coordinator moves it.
    """

    camera_id: str
    processing_model: ProcessingEnergyModel
    communication_model: CommunicationEnergyModel
    battery: Battery
    matched_item: str | None = None
    match_similarity: float = float("nan")
    alive: bool = True
    mode: str = CAMERA_ACTIVE


@dataclass
class SelectionDecision:
    """Outcome of one assessment: the plan until re-calibration.

    Attributes:
        assignment: camera id -> algorithm for the active cameras.
        baseline: All-best accuracy ``(N*, P*)`` on the assessment.
        desired: The derived requirement ``[D_n, D_p]``.
        achieved: Predicted accuracy of the final assignment.
        ranked_camera_ids: The accuracy ranking ``S_o`` used.
    """

    assignment: dict[str, str]
    baseline: GlobalAccuracy
    desired: DesiredAccuracy
    achieved: GlobalAccuracy
    ranked_camera_ids: list[str] = field(default_factory=list)

    @property
    def active_cameras(self) -> list[str]:
        return list(self.assignment)

    @property
    def num_active(self) -> int:
        return len(self.assignment)


class EECSController:
    """Central coordinator for a camera sensor network."""

    def __init__(
        self,
        config: EECSConfig,
        library: TrainingLibrary,
        matcher: CrossCameraMatcher,
        comparator: VideoComparator | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.config = config
        self.library = library
        self.matcher = matcher
        self.comparator = comparator
        if comparator is not None:
            # One shared memo cache: PCA/GFK artifacts and their hit
            # counters live with the library that owns the training
            # data, so recalibration cost is visible in one place.
            comparator.cache = library.cache
        self.engine = SelectionEngine(matcher)
        self._cameras: dict[str, CameraState] = {}
        self.telemetry = telemetry
        #: Simulated-time source for decision events; the owning loop
        #: (frame runner or event simulator) wires this.
        self.now_fn: Callable[[], float] = lambda: 0.0

    # ------------------------------------------------------------------
    # Camera registration and feature matching
    # ------------------------------------------------------------------
    def register_camera(
        self,
        camera_id: str,
        processing_model: ProcessingEnergyModel,
        communication_model: CommunicationEnergyModel,
        battery: Battery,
    ) -> CameraState:
        if camera_id in self._cameras:
            raise ValueError(f"camera {camera_id!r} already registered")
        state = CameraState(
            camera_id=camera_id,
            processing_model=processing_model,
            communication_model=communication_model,
            battery=battery,
        )
        self._cameras[camera_id] = state
        return state

    @property
    def camera_ids(self) -> list[str]:
        return list(self._cameras)

    @property
    def alive_camera_ids(self) -> list[str]:
        return [c for c, s in self._cameras.items() if s.alive]

    def mark_camera_dead(self, camera_id: str) -> None:
        """Exclude a camera from selection (liveness declared it dead)."""
        self.camera(camera_id).alive = False

    def mark_camera_alive(self, camera_id: str) -> None:
        """Re-admit a camera to selection (it was heard from again)."""
        self.camera(camera_id).alive = True

    def set_camera_mode(self, camera_id: str, mode: str) -> None:
        """Move a camera along the degradation ladder."""
        if mode not in CAMERA_MODES:
            raise ValueError(
                f"unknown camera mode {mode!r}; valid: {CAMERA_MODES}"
            )
        self.camera(camera_id).mode = mode

    def camera(self, camera_id: str) -> CameraState:
        try:
            return self._cameras[camera_id]
        except KeyError:
            raise KeyError(
                f"camera {camera_id!r} not registered; "
                f"known: {sorted(self._cameras)}"
            ) from None

    def receive_features(
        self, camera_id: str, features: np.ndarray
    ) -> tuple[str, float]:
        """Match uploaded frame features to the closest training item
        (Section IV-B.2).  Requires a configured comparator."""
        if self.comparator is None:
            raise RuntimeError(
                "controller has no video comparator; use "
                "assign_training_item() for direct assignment"
            )
        state = self.camera(camera_id)
        name, similarity = self.comparator.best_match(features)
        state.matched_item = name
        state.match_similarity = similarity
        return name, similarity

    def assign_training_item(self, camera_id: str, item_name: str) -> None:
        """Directly bind a camera to a training item (bypasses GFK)."""
        if item_name not in self.library:
            raise KeyError(f"unknown training item {item_name!r}")
        self.camera(camera_id).matched_item = item_name

    # ------------------------------------------------------------------
    # Budgets and per-camera algorithm choice
    # ------------------------------------------------------------------
    def frame_budget(self, camera_id: str) -> float:
        """Per-frame energy budget ``B_j`` from the residual battery."""
        state = self.camera(camera_id)
        return state.battery.budget_for(
            self.config.operation_time_s, self.config.seconds_per_frame
        )

    def camera_plan(
        self, camera_id: str, budget_override: float | None = None
    ) -> CameraPlan | None:
        """The selector input for one camera; ``None`` when the camera
        has no matched item or no affordable algorithm."""
        state = self.camera(camera_id)
        if state.matched_item is None:
            return None
        item = self.library.get(state.matched_item)
        budget = (
            budget_override
            if budget_override is not None
            else self.frame_budget(camera_id)
        )
        comm = state.communication_model.per_frame_cost()
        best = best_affordable(item, budget, comm)
        if best is None:
            return None
        return CameraPlan(
            camera_id=camera_id,
            item=item,
            best_algorithm=best.algorithm,
            budget=budget,
            communication_cost=comm,
        )

    def calibrate_probabilities(
        self, camera_id: str, detections: list[Detection]
    ) -> list[Detection]:
        """Fill each detection's probability from the matched item's
        per-algorithm score calibrator (footnote 5 of the paper)."""
        state = self.camera(camera_id)
        if state.matched_item is None:
            raise RuntimeError(
                f"camera {camera_id!r} has no matched training item"
            )
        item = self.library.get(state.matched_item)
        by_algorithm: dict[str, list[Detection]] = {}
        for det in detections:
            by_algorithm.setdefault(det.algorithm, []).append(det)
        for algorithm, dets in by_algorithm.items():
            calibrator = item.profile(algorithm).calibrator
            if not calibrator.is_fitted:
                continue
            # One elementwise pass per algorithm; each element sees the
            # exact ops the scalar __call__ applies, so probabilities
            # are bit-identical to per-detection calibration.
            probs = calibrator.predict_proba(
                np.array([det.score for det in dets])
            )
            for det, prob in zip(dets, probs):
                det.probability = float(prob)
        return detections

    # ------------------------------------------------------------------
    # Selection (Sections IV-B.3 and IV-B.4)
    # ------------------------------------------------------------------
    def select(
        self,
        assessment: AssessmentData,
        enable_subset: bool = True,
        enable_downgrade: bool = True,
        budget_overrides: dict[str, float] | None = None,
    ) -> SelectionDecision:
        """Run the full selection pipeline on assessment metadata.

        Args:
            assessment: Metadata from the just-finished assessment
                period (all cameras x all affordable algorithms).
            enable_subset: Disable to keep every camera active (the
                paper's all-best baseline).
            enable_downgrade: Disable to stop after subset selection
                (the middle bars of Fig. 5).
            budget_overrides: Optional per-camera budget values
                (the paper's Figs. 5a/5b sweep these).
        """
        overrides = budget_overrides or {}
        plans = []
        for camera_id in self.camera_ids:
            state = self._cameras[camera_id]
            if not state.alive or state.mode == CAMERA_QUARANTINED:
                continue
            plan = self.camera_plan(camera_id, overrides.get(camera_id))
            if plan is None:
                continue
            # Restrict the best-algorithm choice to algorithms that
            # actually have assessment metadata for this camera; a
            # profile without data cannot be evaluated or deployed.
            available = set(assessment.algorithms_for(camera_id))
            candidates = [
                p
                for p in plan.item.profiles.values()
                if p.algorithm in available
                and p.energy_per_frame + plan.communication_cost
                <= plan.budget
            ]
            if state.mode == CAMERA_DEGRADED:
                # A degraded camera is pinned to its cheapest affordable
                # profile: it still contributes coverage but stops
                # burning energy on detections its health says are
                # suspect.
                if not candidates:
                    continue
                cheapest = min(
                    candidates,
                    key=lambda p: (p.energy_per_frame, p.algorithm),
                )
                plan = CameraPlan(
                    camera_id=plan.camera_id,
                    item=plan.item,
                    best_algorithm=cheapest.algorithm,
                    budget=plan.budget,
                    communication_cost=plan.communication_cost,
                )
            elif plan.best_algorithm not in available:
                if not candidates:
                    continue
                plan = CameraPlan(
                    camera_id=plan.camera_id,
                    item=plan.item,
                    best_algorithm=max(
                        candidates, key=lambda p: p.f_score
                    ).algorithm,
                    budget=plan.budget,
                    communication_cost=plan.communication_cost,
                )
            plans.append(plan)
        if not plans:
            raise RuntimeError(
                "no camera has an affordable algorithm within budget"
            )

        all_best = {p.camera_id: p.best_algorithm for p in plans}
        baseline = self.engine.global_accuracy(assessment, all_best)
        desired = DesiredAccuracy.from_baseline(
            baseline, self.config.gamma_n, self.config.gamma_p
        )
        ranked = self.engine.rank_cameras(assessment, plans)

        if enable_subset:
            chosen, achieved = self.engine.greedy_subset(
                assessment, ranked, desired
            )
        else:
            chosen, achieved = ranked, baseline

        if enable_downgrade:
            assignment = self.engine.downgrade(assessment, chosen, desired)
            achieved = self.engine.global_accuracy(assessment, assignment)
        else:
            assignment = {p.camera_id: p.best_algorithm for p in chosen}

        decision = SelectionDecision(
            assignment=assignment,
            baseline=baseline,
            desired=desired,
            achieved=achieved,
            ranked_camera_ids=[p.camera_id for p in ranked],
        )
        if self.telemetry is not None:
            best_by_camera = {p.camera_id: p.best_algorithm for p in plans}
            self._record_decision(decision, best_by_camera)
        return decision

    def _record_decision(
        self,
        decision: SelectionDecision,
        best_by_camera: dict[str, str],
    ) -> None:
        """Mirror one selection outcome into metrics and events."""
        telemetry = self.telemetry
        registry = telemetry.registry
        registry.counter(
            "controller_selections_total",
            "Selection rounds the controller has run.",
        ).inc()
        registry.gauge(
            "controller_cameras_selected",
            "Cameras activated by the latest selection.",
        ).set(decision.num_active)
        assignments = registry.counter(
            "controller_assignments_total",
            "Camera-algorithm assignments issued, by algorithm.",
            labels=("algorithm",),
        )
        downgrades = 0
        for camera_id, algorithm in decision.assignment.items():
            assignments.inc(algorithm=algorithm)
            if best_by_camera.get(camera_id, algorithm) != algorithm:
                downgrades += 1
        registry.counter(
            "controller_downgrades_total",
            "Cameras assigned a cheaper algorithm than their best.",
        ).inc(downgrades)
        accuracy = registry.gauge(
            "controller_accuracy",
            "Latest selection's accuracy proxies: all-best baseline, "
            "gamma-scaled desired floor, and predicted achieved.",
            labels=("quantity",),
        )
        accuracy.set(decision.baseline.num_objects, quantity="baseline_objects")
        accuracy.set(
            decision.baseline.mean_probability,
            quantity="baseline_probability",
        )
        accuracy.set(decision.desired.min_objects, quantity="desired_objects")
        accuracy.set(
            decision.desired.min_probability, quantity="desired_probability"
        )
        accuracy.set(decision.achieved.num_objects, quantity="achieved_objects")
        accuracy.set(
            decision.achieved.mean_probability,
            quantity="achieved_probability",
        )
        telemetry.event(
            "controller_decision",
            time_s=self.now_fn(),
            node_id="controller",
            assignment=dict(decision.assignment),
            num_active=decision.num_active,
            downgrades=downgrades,
            ranked=list(decision.ranked_camera_ids),
            baseline_objects=decision.baseline.num_objects,
            baseline_probability=decision.baseline.mean_probability,
            desired_objects=decision.desired.min_objects,
            desired_probability=decision.desired.min_probability,
            achieved_objects=decision.achieved.num_objects,
            achieved_probability=decision.achieved.mean_probability,
        )

"""End-to-end adaptive deployment across environment changes.

The paper's motivating scenario (Section I, Fig. 3): a camera's
surroundings change — say from the clean lab to the cluttered chap
room — and the detection algorithm must change with them.  This module
wires the *complete* Section IV-B pipeline into one object: on every
environment phase the camera extracts HOG ++ BoW features from a short
clip, the controller GFK-matches them against its training library,
transfers the matched item's algorithm ranking and threshold, and the
camera runs the chosen algorithm for the rest of the phase.

Unlike :class:`~repro.core.runner.SimulationRunner` (which binds each
camera to its own training item up front), nothing here is told which
environment it is in — the match is earned by the video comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import TrainingItem
from repro.datasets.groundtruth import ground_truth_boxes
from repro.datasets.synthetic import SyntheticDataset, make_dataset
from repro.detection.detectors import make_detector_suite
from repro.detection.metrics import DetectionCounts, match_detections
from repro.domain_adaptation.similarity import VideoComparator
from repro.energy.model import ProcessingEnergyModel
from repro.experiments.table2_3_4 import algorithm_table
from repro.vision.bow import BagOfWords
from repro.vision.features import FrameFeatureExtractor
from repro.vision.keypoints import extract_descriptors


@dataclass
class PhaseResult:
    """Outcome of one environment phase.

    Attributes:
        dataset_number: Which dataset the phase streamed from.
        matched_item: Training item the GFK comparison selected.
        similarity: Similarity score of the match.
        algorithm: Algorithm deployed for the phase.
        counts: Detection outcomes over the phase.
        energy_joules: Processing energy spent in the phase.
    """

    dataset_number: int
    matched_item: str
    similarity: float
    algorithm: str
    counts: DetectionCounts
    energy_joules: float

    @property
    def correct_match(self) -> bool:
        return self.matched_item == f"T{self.dataset_number}"


def _sample_images(
    dataset: SyntheticDataset,
    camera_id: str,
    start: int,
    end: int,
    count: int,
) -> list[np.ndarray]:
    step = max(1, (end - start) // count)
    records = dataset.frames(start, start + step * count, step=step)
    return [r.observation(camera_id).image for r in records]


class AdaptiveDeployment:
    """One camera, several environments, fully adaptive selection."""

    def __init__(
        self,
        dataset_numbers: tuple[int, ...] = (1, 2),
        window_frames: int = 12,
        subspace_dim: int = 8,
        vocabulary_size: int = 300,
        exclude: tuple[str, ...] = ("LSVM",),
        seed: int = 31,
    ) -> None:
        if len(dataset_numbers) < 2:
            raise ValueError("an adaptive scenario needs >= 2 environments")
        self.window_frames = window_frames
        self.exclude = exclude
        rng = np.random.default_rng(seed)
        self.datasets = {n: make_dataset(n) for n in dataset_numbers}
        for ds in self.datasets.values():
            ds.cache_frames = False
        self.suites = {
            n: make_detector_suite(ds.environment)
            for n, ds in self.datasets.items()
        }
        self.energy_models = {
            n: ProcessingEnergyModel(
                width=ds.environment.width, height=ds.environment.height
            )
            for n, ds in self.datasets.items()
        }

        # Shared vocabulary over all training feeds (Section V-A).
        descriptors = []
        for ds in self.datasets.values():
            for camera_id in ds.camera_ids[:2]:
                for image in _sample_images(
                    ds, camera_id, 0, ds.spec.train_end, 5
                ):
                    found = extract_descriptors(image)
                    if len(found):
                        descriptors.append(found)
        bow = BagOfWords(vocabulary_size=vocabulary_size, rng=rng)
        bow.fit(np.vstack(descriptors))
        self.extractor = FrameFeatureExtractor(bow)

        # Offline training (camera 0 of each dataset) + feature upload.
        self.comparator = VideoComparator(subspace_dim=subspace_dim)
        self.items: dict[str, TrainingItem] = {}
        self.thresholds: dict[str, dict[str, float]] = {}
        for n, ds in self.datasets.items():
            rows = algorithm_table(n, 0, "train", dataset=ds, seed=seed)
            name = f"T{n}"
            self.thresholds[name] = {r.algorithm: r.threshold for r in rows}
            from repro.core.calibration import AlgorithmProfile

            profiles = {
                r.algorithm: AlgorithmProfile(
                    algorithm=r.algorithm,
                    training_item=name,
                    threshold=r.threshold,
                    precision=r.precision,
                    recall=r.recall,
                    f_score=r.f_score,
                    energy_per_frame=r.energy_per_frame,
                    time_per_frame=r.time_per_frame,
                )
                for r in rows
            }
            self.items[name] = TrainingItem(name=name, profiles=profiles)
            images = _sample_images(
                ds, ds.camera_ids[0], 0, ds.spec.train_end, window_frames
            )
            self.comparator.add_training_video(
                name, self.extractor.extract_video(images)
            )
        self._rng = rng

    def select_algorithm(self, item: TrainingItem) -> str:
        """Best deployable algorithm of a matched item."""
        deployable = [
            p
            for p in item.profiles.values()
            if p.algorithm not in self.exclude
        ]
        return max(deployable, key=lambda p: p.f_score).algorithm

    def run_phase(
        self,
        dataset_number: int,
        start: int = 1200,
        end: int = 2800,
    ) -> PhaseResult:
        """One environment phase: match, choose, deploy, measure."""
        if dataset_number not in self.datasets:
            raise KeyError(f"phase dataset #{dataset_number} not loaded")
        ds = self.datasets[dataset_number]
        camera_id = ds.camera_ids[0]

        # 1. Feature upload from a short clip of the unknown feed.
        images = _sample_images(
            ds, camera_id, start, min(end, start + 400), self.window_frames
        )
        features = self.extractor.extract_video(images)

        # 2. GFK match -> training item -> algorithm + threshold.
        matched, similarity = self.comparator.best_match(features)
        item = self.items[matched]
        algorithm = self.select_algorithm(item)
        threshold = self.thresholds[matched][algorithm]

        # 3. Deploy the chosen algorithm over the phase's GT frames.
        detector = self.suites[dataset_number][algorithm]
        energy_model = self.energy_models[dataset_number]
        counts = DetectionCounts()
        energy = 0.0
        for record in ds.frames(start, end, only_ground_truth=True):
            observation = record.observation(camera_id)
            detections = detector.detect(
                observation, self._rng, threshold=threshold
            )
            counts = counts.add(
                match_detections(
                    detections, ground_truth_boxes(observation)
                )
            )
            energy += energy_model.energy_per_frame(algorithm)
        return PhaseResult(
            dataset_number=dataset_number,
            matched_item=matched,
            similarity=similarity,
            algorithm=algorithm,
            counts=counts,
            energy_joules=energy,
        )

    def run_scenario(
        self, phases: list[int] | None = None
    ) -> list[PhaseResult]:
        """Run a sequence of environment phases (default: each loaded
        dataset once, in order)."""
        if phases is None:
            phases = list(self.datasets)
        return [self.run_phase(number) for number in phases]

"""Global detection accuracy estimation (Section IV-C).

Ground truth is unavailable at operation time, so EECS characterises
global accuracy by two measurable quantities: the number of distinct
objects jointly detected after re-identification, and the mean fused
detection probability (Eq. 6) over those objects.  A periodically
computed all-best baseline ``(N*, P*)`` anchors the desired accuracy
``D = [D_n, D_p]`` with ``D_n = gamma_n * N*`` and
``D_p = gamma_p * P*``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.reid.fusion import ObjectGroup


@dataclass(frozen=True)
class GlobalAccuracy:
    """The controller's measurable accuracy proxy.

    Attributes:
        num_objects: Distinct objects detected (summed over the
            assessment frames).
        mean_probability: Mean fused detection probability of those
            objects (0 when nothing was detected).
    """

    num_objects: float
    mean_probability: float

    def __post_init__(self) -> None:
        if self.num_objects < 0:
            raise ValueError("num_objects cannot be negative")
        if not 0.0 <= self.mean_probability <= 1.0:
            raise ValueError(
                f"mean_probability must be in [0, 1], "
                f"got {self.mean_probability}"
            )

    def meets(self, desired: "DesiredAccuracy") -> bool:
        """Whether this accuracy satisfies the desired ``[D_n, D_p]``."""
        return (
            self.num_objects >= desired.min_objects
            and self.mean_probability >= desired.min_probability
        )


@dataclass(frozen=True)
class DesiredAccuracy:
    """The accuracy requirement ``D = [D_n, D_p]``."""

    min_objects: float
    min_probability: float

    @classmethod
    def from_baseline(
        cls,
        baseline: GlobalAccuracy,
        gamma_n: float,
        gamma_p: float,
    ) -> "DesiredAccuracy":
        """Scale the all-best baseline by the slack factors."""
        if not 0.0 < gamma_n <= 1.0 or not 0.0 < gamma_p <= 1.0:
            raise ValueError("gamma factors must lie in (0, 1]")
        return cls(
            min_objects=gamma_n * baseline.num_objects,
            min_probability=gamma_p * baseline.mean_probability,
        )


def estimate_global_accuracy(
    frame_groups: list[list[ObjectGroup]],
) -> GlobalAccuracy:
    """Aggregate re-identified object groups into ``(N, P-bar)``.

    Args:
        frame_groups: Per assessment frame, the list of re-identified
            object groups.

    Returns:
        Total detected-object count over the frames and the mean fused
        probability across all groups.
    """
    num_objects = sum(len(groups) for groups in frame_groups)
    if num_objects == 0:
        return GlobalAccuracy(num_objects=0, mean_probability=0.0)
    probabilities = [
        group.fused_probability
        for groups in frame_groups
        for group in groups
    ]
    return GlobalAccuracy(
        num_objects=float(num_objects),
        mean_probability=float(np.mean(probabilities)),
    )

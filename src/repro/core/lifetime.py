"""Network-lifetime simulation.

The paper's introduction motivates EECS with longevity: "sending raw
video feeds ... could result in unnecessary energy expenditures and
hurt the longevity of the network."  This module runs a deployment
against finite batteries until the network can no longer meet its
detection duty, and compares policies by how many frames they survive.

A camera dies when its battery cannot pay for its cheapest affordable
algorithm plus communication; the network dies when fewer than
``min_cameras`` are alive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runner import SimulationRunner
from repro.energy.battery import Battery


@dataclass
class LifetimeResult:
    """Outcome of one drain-until-death run.

    Attributes:
        mode: Policy used ("all_best" or "full").
        frames_survived: Ground-truth frames processed before the
            network fell below quorum.
        humans_detected: Humans detected over the whole lifetime.
        energy_consumed: Total Joules drawn from all batteries.
        deaths: frame index at which each camera died (still-alive
            cameras are absent).
    """

    mode: str
    frames_survived: int
    humans_detected: int
    energy_consumed: float
    deaths: dict[str, int] = field(default_factory=dict)


def simulate_lifetime(
    runner: SimulationRunner,
    mode: str,
    battery_joules: float,
    budget: float,
    min_cameras: int = 2,
    max_passes: int = 50,
) -> LifetimeResult:
    """Drain batteries by repeatedly replaying the test segment.

    The dataset's test segment is replayed pass after pass (a camera
    network watches the same scene for hours); each pass charges the
    per-camera energy of a :meth:`SimulationRunner.run` and kills
    cameras whose batteries are exhausted.  Dead cameras are excluded
    by forcing an infeasible per-camera budget, which EECS handles by
    selecting among the survivors.
    """
    if mode not in ("all_best", "full", "subset"):
        raise ValueError(f"unsupported lifetime mode {mode!r}")
    if battery_joules <= 0:
        raise ValueError("battery_joules must be positive")

    batteries = {
        camera_id: Battery(capacity_joules=battery_joules)
        for camera_id in runner.dataset.camera_ids
    }
    deaths: dict[str, int] = {}
    frames_survived = 0
    humans_detected = 0
    frames_per_pass = len(
        runner.dataset.frames(
            runner.dataset.spec.train_end,
            runner.dataset.spec.total_frames,
            only_ground_truth=True,
        )
    )

    for pass_idx in range(max_passes):
        alive = [c for c in batteries if not batteries[c].is_depleted]
        if len(alive) < min_cameras:
            break

        if mode == "all_best":
            assignment = {}
            for camera_id in alive:
                plan = runner.controller.camera_plan(camera_id, budget)
                if plan is not None:
                    assignment[camera_id] = plan.best_algorithm
            if len(assignment) < min_cameras:
                break
            result = runner.run(mode="fixed", assignment=assignment)
        else:
            overrides = {
                camera_id: (budget if camera_id in alive else 0.0)
                for camera_id in batteries
            }
            # A zero budget excludes dead cameras from selection.
            try:
                result = runner.run(mode=mode, budget=budget)
            except RuntimeError:
                break
            del overrides

        frames_survived += result.frames_evaluated
        humans_detected += result.humans_detected
        for camera_id, joules in result.energy_by_camera.items():
            if camera_id in batteries and not batteries[camera_id].is_depleted:
                batteries[camera_id].draw(joules)
                if batteries[camera_id].is_depleted:
                    deaths[camera_id] = frames_survived
    else:
        pass_idx = max_passes

    return LifetimeResult(
        mode=mode,
        frames_survived=frames_survived,
        humans_detected=humans_detected,
        energy_consumed=sum(b.consumed for b in batteries.values()),
        deaths=deaths,
    )


def lifetime_extension(
    runner: SimulationRunner,
    battery_joules: float = 600.0,
    budget: float = 2.0,
) -> dict[str, LifetimeResult]:
    """Compare network lifetime under all-best versus full EECS."""
    return {
        mode: simulate_lifetime(runner, mode, battery_joules, budget)
        for mode in ("all_best", "full")
    }

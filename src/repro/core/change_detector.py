"""Camera-side environmental change detection.

Section IV-B.1: "when surrounding environmental changes are detected,
each sensor extracts and uploads features ... Note that, detection of
environmental changes is not in the scope of this paper."  This module
supplies that missing trigger: a two-sided CUSUM detector over cheap
per-frame scene statistics (mean intensity and edge energy), so a
camera knows *when* to spend the ~16 KB/frame feature upload and the
controller's GFK matching.

CUSUM accumulates deviations of a statistic from its calibrated
baseline; an alarm fires when the accumulation exceeds a threshold,
which tolerates noise but reacts quickly to sustained shifts (e.g.
lights turning off, the camera being moved to a different room).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SceneStatistics:
    """Cheap per-frame statistics a sensor can afford every frame."""

    mean_intensity: float
    edge_energy: float

    @classmethod
    def from_frame(cls, image: np.ndarray) -> "SceneStatistics":
        image = np.asarray(image, dtype=float)
        if image.ndim != 2 or image.size == 0:
            raise ValueError("expected a non-empty 2-D image")
        gy, gx = np.gradient(image)
        return cls(
            mean_intensity=float(image.mean()),
            edge_energy=float(np.mean(np.hypot(gx, gy))),
        )

    def as_vector(self) -> np.ndarray:
        return np.array([self.mean_intensity, self.edge_energy])


class CusumDetector:
    """Two-sided CUSUM over one scalar statistic."""

    def __init__(
        self,
        baseline_mean: float,
        baseline_std: float,
        drift: float = 0.5,
        threshold: float = 8.0,
    ) -> None:
        """
        Args:
            baseline_mean: Calibrated in-control mean of the statistic.
            baseline_std: Calibrated in-control standard deviation.
            drift: Slack ``k`` in std units; deviations smaller than
                this are absorbed.
            threshold: Alarm level ``h`` in std units.
        """
        if baseline_std <= 0:
            raise ValueError("baseline_std must be positive")
        if drift < 0 or threshold <= 0:
            raise ValueError("drift must be >= 0 and threshold > 0")
        self.mean = baseline_mean
        self.std = baseline_std
        self.drift = drift
        self.threshold = threshold
        self.upper = 0.0
        self.lower = 0.0

    def update(self, value: float) -> bool:
        """Feed one observation; returns True when an alarm fires.

        The accumulators reset after an alarm so subsequent changes
        can be detected again.
        """
        z = (value - self.mean) / self.std
        self.upper = max(0.0, self.upper + z - self.drift)
        self.lower = max(0.0, self.lower - z - self.drift)
        if self.upper > self.threshold or self.lower > self.threshold:
            self.upper = 0.0
            self.lower = 0.0
            return True
        return False

    @property
    def statistic(self) -> float:
        """Current max accumulation, in std units."""
        return max(self.upper, self.lower)


@dataclass
class EnvironmentChangeDetector:
    """Multi-statistic change detector for one camera.

    Calibrate on a window of in-control frames, then feed every frame;
    an alarm on *any* statistic signals an environment change and
    should trigger a feature re-upload (Section IV-B.1).
    """

    drift: float = 0.5
    threshold: float = 8.0
    min_calibration_frames: int = 10
    _calibration: list[np.ndarray] = field(default_factory=list)
    _detectors: list[CusumDetector] | None = None
    alarms: int = 0

    @property
    def is_calibrated(self) -> bool:
        return self._detectors is not None

    def calibrate(self, image: np.ndarray) -> bool:
        """Feed a calibration frame; returns True once calibrated."""
        if self.is_calibrated:
            raise RuntimeError("detector is already calibrated")
        self._calibration.append(
            SceneStatistics.from_frame(image).as_vector()
        )
        if len(self._calibration) >= self.min_calibration_frames:
            stacked = np.stack(self._calibration)
            means = stacked.mean(axis=0)
            # Inflate the estimate: with few calibration frames the
            # sample std can undershoot badly, turning in-control noise
            # into false alarms.
            stds = 1.5 * np.maximum(stacked.std(axis=0), 1e-4)
            self._detectors = [
                CusumDetector(
                    baseline_mean=float(m),
                    baseline_std=float(s),
                    drift=self.drift,
                    threshold=self.threshold,
                )
                for m, s in zip(means, stds)
            ]
            return True
        return False

    def observe(self, image: np.ndarray) -> bool:
        """Feed an operational frame; True when a change is detected."""
        if not self.is_calibrated:
            raise RuntimeError(
                "calibrate() must complete before observe()"
            )
        values = SceneStatistics.from_frame(image).as_vector()
        fired = False
        for detector, value in zip(self._detectors, values):
            if detector.update(float(value)):
                fired = True
        if fired:
            self.alarms += 1
        return fired

"""Offline observability analysis: profiling traces, diffing runs.

``repro.telemetry`` produces artifacts (metric snapshots, span
traces, event logs, stream files); this package consumes them.  The
split is a layer contract: analysis tools may read telemetry formats
but never import the engine, so they run anywhere the artifacts land
— a laptop, a CI job — without dragging in numpy-heavy simulation
code.

* :mod:`repro.obs.profile` folds a span-tree trace into
  flamegraph-style aggregates (calls, total and self time per span
  path) and extracts the critical path of each round.
* :mod:`repro.obs.diff` compares the efficiency indicators of two
  runs' metric snapshots and flags regressions against configurable
  thresholds — the guardrail CI runs on every candidate change.
"""

from repro.obs.diff import (
    DiffThresholds,
    IndicatorDiff,
    diff_runs,
    extract_indicators,
    has_regression,
    load_metrics,
    render_diff,
)
from repro.obs.profile import (
    ProfileEntry,
    critical_paths,
    fold_spans,
    load_spans,
    render_folded,
    render_profile,
)

__all__ = [
    "DiffThresholds",
    "IndicatorDiff",
    "ProfileEntry",
    "critical_paths",
    "diff_runs",
    "extract_indicators",
    "fold_spans",
    "has_regression",
    "load_metrics",
    "load_spans",
    "render_diff",
    "render_folded",
    "render_profile",
]

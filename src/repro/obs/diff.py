"""Cross-run regression differ over metric snapshots.

Two runs of the same configuration should spend the same energy and
detect the same humans; when a change moves those numbers, this module
says by how much and whether it crossed the line.  It reduces a
``repro.metrics.v1`` snapshot to a handful of *efficiency indicators*
— the quantities the paper optimises and the resilience layer guards:

====================  =====================================  ========
indicator             source metrics                         worse
====================  =====================================  ========
energy_joules         energy_joules_total (all series)       higher
energy_per_round      energy / run_rounds_total              higher
joules_per_detection  energy / run_humans_detected_total     higher
detection_rate        detected / run_humans_present_total    lower
retransmissions       network_retransmissions_total          higher
breaker_trips         breaker_open_total (or the
                      fault_events_total{kind=breaker_open}
                      fallback)                              higher
====================  =====================================  ========

:func:`diff_runs` compares baseline → candidate per indicator against
a relative threshold (default 10%, per-indicator overrides) and only
flags movement in the *worse* direction — a run that got cheaper or
more accurate never fails the gate.  Exposed as ``python -m repro obs
diff <baseline> <candidate>``, exiting non-zero on any regression so
CI can wire it directly.

Inputs are ``--metrics-out`` JSON dumps, or ``repro.stream.v1`` JSONL
stream files (the final flush record's cumulative snapshot is used).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

#: Indicator -> the direction of movement that counts as a regression.
WORSE = {
    "energy_joules": "higher",
    "energy_per_round": "higher",
    "joules_per_detection": "higher",
    "detection_rate": "lower",
    "retransmissions": "higher",
    "breaker_trips": "higher",
}


def load_metrics(path: str | Path) -> dict:
    """A ``repro.metrics.v1`` payload from a snapshot or stream file."""
    text = Path(path).read_text(encoding="utf-8")
    if not text.strip():
        raise ValueError(f"{path}: empty metrics file")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        # Multiple records: a JSONL stream file.  Its last record
        # carries the run's final cumulative snapshot, which is what
        # the diff wants; read_stream_records also folds in rotated
        # parts and repairs a torn trailing line.
        from repro.telemetry.live import read_stream_records

        records = read_stream_records(path)
        if not records:
            raise ValueError(f"{path}: no stream records") from None
        payload = records[-1]
    if payload.get("schema") == "repro.stream.v1":
        metrics = payload.get("metrics")
        if metrics is None:
            raise ValueError(
                f"{path}: stream record has no metrics snapshot"
            )
        return metrics
    if payload.get("schema") != "repro.metrics.v1":
        raise ValueError(
            f"{path}: expected a repro.metrics.v1 snapshot or a "
            f"repro.stream.v1 stream, got schema "
            f"{payload.get('schema')!r}"
        )
    return payload


def _metric_total(
    payload: dict, name: str, label_filter: dict | None = None
) -> float:
    """Sum of a counter/gauge's series values (0.0 when absent)."""
    for entry in payload.get("metrics", ()):
        if entry["name"] != name or entry["type"] == "histogram":
            continue
        total = 0.0
        for series in entry["series"]:
            labels = series.get("labels", {})
            if label_filter and any(
                labels.get(k) != v for k, v in label_filter.items()
            ):
                continue
            total += float(series["value"])
        return total
    return 0.0


def extract_indicators(payload: dict) -> dict[str, float]:
    """Fold one metrics snapshot into the efficiency indicators."""
    energy = _metric_total(payload, "energy_joules_total")
    rounds = _metric_total(payload, "run_rounds_total")
    detected = _metric_total(payload, "run_humans_detected_total")
    present = _metric_total(payload, "run_humans_present_total")
    trips = _metric_total(payload, "breaker_open_total")
    if trips == 0.0:
        # Runs predating the live mirror only counted trips as fault
        # events.
        trips = _metric_total(
            payload, "fault_events_total", {"kind": "breaker_open"}
        )
    return {
        "energy_joules": energy,
        "energy_per_round": energy / rounds if rounds else 0.0,
        "joules_per_detection": (
            energy / detected if detected else 0.0
        ),
        "detection_rate": detected / present if present else 0.0,
        "retransmissions": _metric_total(
            payload, "network_retransmissions_total"
        ),
        "breaker_trips": trips,
    }


@dataclass(frozen=True)
class DiffThresholds:
    """Relative regression tolerances.

    ``default`` applies to every indicator; ``overrides`` replaces it
    per indicator (``{"joules_per_detection": 0.05}``).  A threshold
    of 0.10 means a 10% move in the worse direction fails.
    """

    default: float = 0.10
    overrides: dict[str, float] = field(default_factory=dict)

    def for_indicator(self, name: str) -> float:
        return self.overrides.get(name, self.default)


@dataclass(frozen=True)
class IndicatorDiff:
    """One indicator's baseline → candidate movement."""

    name: str
    baseline: float
    candidate: float
    relative_change: float
    threshold: float
    regressed: bool

    @property
    def direction(self) -> str:
        return WORSE[self.name]


def _relative_change(baseline: float, candidate: float) -> float:
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else math.inf
    return (candidate - baseline) / abs(baseline)


def diff_runs(
    baseline: dict,
    candidate: dict,
    thresholds: DiffThresholds | None = None,
) -> list[IndicatorDiff]:
    """Compare two metrics payloads indicator by indicator."""
    thresholds = thresholds or DiffThresholds()
    base = extract_indicators(baseline)
    cand = extract_indicators(candidate)
    out: list[IndicatorDiff] = []
    for name in WORSE:
        change = _relative_change(base[name], cand[name])
        threshold = thresholds.for_indicator(name)
        worse = -change if WORSE[name] == "lower" else change
        out.append(
            IndicatorDiff(
                name=name,
                baseline=base[name],
                candidate=cand[name],
                relative_change=change,
                threshold=threshold,
                regressed=worse > threshold,
            )
        )
    return out


def has_regression(diffs: list[IndicatorDiff]) -> bool:
    return any(diff.regressed for diff in diffs)


def render_diff(diffs: list[IndicatorDiff]) -> str:
    """The ``obs diff`` report table."""
    lines = [
        f"{'indicator':<22}  {'baseline':>12}  {'candidate':>12}  "
        f"{'change':>8}  verdict"
    ]
    for diff in diffs:
        if math.isinf(diff.relative_change):
            change = "new"
        else:
            change = f"{diff.relative_change:+.1%}"
        verdict = (
            f"REGRESSION (>{diff.threshold:.0%} {diff.direction})"
            if diff.regressed
            else "ok"
        )
        lines.append(
            f"{diff.name:<22}  {diff.baseline:>12.4f}  "
            f"{diff.candidate:>12.4f}  {change:>8}  {verdict}"
        )
    regressions = sum(1 for d in diffs if d.regressed)
    lines.append(
        f"{regressions} regression(s) across {len(diffs)} indicators"
        if regressions
        else f"no regressions across {len(diffs)} indicators"
    )
    return "\n".join(lines) + "\n"

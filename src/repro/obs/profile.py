"""Span-tree profiler: fold a trace into flamegraph-style aggregates.

A ``repro.span.v1`` trace is one line per closed span with a
``parent_id`` link — a tree like ``run → round → assessment →
detection``.  Reading it raw answers "what happened when"; this module
answers "where did the time go":

* :func:`fold_spans` aggregates spans by *path* (the chain of names
  from the root, ``run;round;detection``), the same grouping a
  flamegraph uses.  Each path gets its call count, **total** time
  (sum of span durations) and **self** time (total minus time spent
  in child spans) — self time is what pinpoints the hot layer when a
  parent merely waits on its children.
* :func:`critical_paths` walks each ``round`` span down its heaviest
  child at every level, yielding the chain that bounds the round's
  wall clock — the first place to look when rounds slow down.
* :func:`render_folded` emits classic collapsed-stack lines
  (``run;round;detection 123456``, self time in microseconds), which
  external flamegraph tooling consumes directly.

Exposed as ``python -m repro obs profile <trace.jsonl>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

PATH_SEPARATOR = ";"


def load_spans(path: str | Path) -> list[dict]:
    """Read a span-trace JSONL file, skipping blank lines.

    Records claiming a schema other than ``repro.span.v1`` raise: a
    stream or event file passed by mistake should fail loudly, not
    produce an empty profile.
    """
    records: list[dict] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        record = json.loads(line)
        schema = record.get("schema", "repro.span.v1")
        if schema != "repro.span.v1":
            raise ValueError(
                f"{path}:{lineno}: expected a repro.span.v1 trace, "
                f"got schema {schema!r}"
            )
        records.append(record)
    return records


@dataclass
class ProfileEntry:
    """Aggregated timing of one span path across the whole trace."""

    path: str
    calls: int = 0
    total_s: float = 0.0
    self_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


def _paths_and_children(
    records: list[dict],
) -> tuple[dict[int, str], dict[int, list[dict]]]:
    """Resolve each span's root path and group children by parent."""
    by_id = {record["span_id"]: record for record in records}
    children: dict[int, list[dict]] = {}
    for record in records:
        parent = record.get("parent_id")
        if parent is not None:
            children.setdefault(parent, []).append(record)
    paths: dict[int, str] = {}

    def path_of(span_id: int) -> str:
        cached = paths.get(span_id)
        if cached is not None:
            return cached
        record = by_id[span_id]
        parent = record.get("parent_id")
        if parent is None or parent not in by_id:
            resolved = record["name"]
        else:
            resolved = path_of(parent) + PATH_SEPARATOR + record["name"]
        paths[span_id] = resolved
        return resolved

    for record in records:
        path_of(record["span_id"])
    return paths, children


def fold_spans(records: list[dict]) -> list[ProfileEntry]:
    """Aggregate spans by path; sorted by self time, heaviest first.

    Self time is a span's duration minus its direct children's
    durations, clamped at zero (children recorded under a parent that
    closed early — the tracer's ``finish()`` cleanup — cannot push a
    parent negative).
    """
    paths, children = _paths_and_children(records)
    entries: dict[str, ProfileEntry] = {}
    for record in records:
        path = paths[record["span_id"]]
        duration = float(record.get("duration_s", 0.0))
        child_time = sum(
            float(child.get("duration_s", 0.0))
            for child in children.get(record["span_id"], ())
        )
        entry = entries.setdefault(path, ProfileEntry(path=path))
        entry.calls += 1
        entry.total_s += duration
        entry.self_s += max(0.0, duration - child_time)
    return sorted(
        entries.values(), key=lambda e: (-e.self_s, e.path)
    )


@dataclass
class CriticalPath:
    """The heaviest root-to-leaf chain under one round span."""

    round_index: object
    duration_s: float
    steps: list[tuple[str, float]] = field(default_factory=list)

    def describe(self) -> str:
        chain = " > ".join(
            f"{name} {duration * 1e3:.1f}ms" for name, duration in self.steps
        )
        return (
            f"round {self.round_index}: {self.duration_s * 1e3:.1f}ms"
            + (f" [{chain}]" if chain else "")
        )


def critical_paths(records: list[dict]) -> list[CriticalPath]:
    """Per round, the chain of heaviest children down to a leaf."""
    _, children = _paths_and_children(records)
    out: list[CriticalPath] = []
    for record in records:
        if record["name"] != "round":
            continue
        steps: list[tuple[str, float]] = []
        cursor = record
        while True:
            below = children.get(cursor["span_id"], ())
            if not below:
                break
            cursor = max(
                below, key=lambda c: float(c.get("duration_s", 0.0))
            )
            steps.append(
                (cursor["name"], float(cursor.get("duration_s", 0.0)))
            )
        out.append(
            CriticalPath(
                round_index=record.get("attributes", {}).get("index"),
                duration_s=float(record.get("duration_s", 0.0)),
                steps=steps,
            )
        )
    return out


def render_folded(entries: list[ProfileEntry]) -> str:
    """Collapsed-stack lines (self time in integer microseconds)."""
    lines = [
        f"{entry.path} {round(entry.self_s * 1e6)}"
        for entry in sorted(entries, key=lambda e: e.path)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def render_profile(
    records: list[dict], limit: int = 30, folded: bool = False
) -> str:
    """The ``obs profile`` report for one loaded trace."""
    entries = fold_spans(records)
    if folded:
        return render_folded(entries)
    lines = [
        f"Trace profile: {len(records)} spans, "
        f"{len(entries)} distinct paths",
        "",
        f"{'calls':>6}  {'total':>10}  {'self':>10}  "
        f"{'mean':>10}  path",
    ]
    for entry in entries[:limit]:
        lines.append(
            f"{entry.calls:>6}  {entry.total_s:>9.4f}s  "
            f"{entry.self_s:>9.4f}s  {entry.mean_s:>9.4f}s  {entry.path}"
        )
    if len(entries) > limit:
        lines.append(f"(+{len(entries) - limit} more paths)")
    rounds = critical_paths(records)
    if rounds:
        lines.append("")
        lines.append("Critical path per round:")
        for critical in rounds:
            lines.append("  " + critical.describe())
    return "\n".join(lines) + "\n"

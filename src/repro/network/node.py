"""Camera-sensor and controller nodes speaking the EECS protocol.

These nodes run the paper's Fig. 2 interaction over the discrete-event
simulator: sensors upload features and energy reports at startup, the
controller requests assessments, sensors stream detection metadata,
and the controller pushes algorithm assignments back.  Energy for both
processing and transmission is drawn from each sensor's battery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.controller import EECSController
from repro.core.selection import AssessmentData
from repro.detection.base import Detection, Detector
from repro.energy.battery import Battery
from repro.energy.model import ProcessingEnergyModel
from repro.network.messages import (
    AlgorithmAssignment,
    AssessmentRequest,
    DetectionMetadata,
    EnergyReport,
    FeatureUpload,
    Message,
)
from repro.network.simulator import Node
from repro.world.renderer import FrameObservation


class CameraSensorNode(Node):
    """A battery-operated camera sensor.

    The node owns its frame stream (pre-rendered observations), its
    pre-installed detectors, and its battery.  It answers assessment
    requests by running the requested algorithms over the next frames
    and streaming metadata back, and otherwise runs whatever algorithm
    the controller assigned.
    """

    def __init__(
        self,
        node_id: str,
        controller_id: str,
        observations: list[FrameObservation],
        detectors: dict[str, Detector],
        thresholds: dict[str, float],
        energy_model: ProcessingEnergyModel,
        battery: Battery | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(node_id)
        self.controller_id = controller_id
        self.observations = observations
        self.detectors = detectors
        self.thresholds = thresholds
        self.energy_model = energy_model
        self.battery = battery or Battery()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.cursor = 0
        self.active_algorithm: str | None = None
        self.frames_processed = 0

    # ------------------------------------------------------------------
    # Energy accounting hooks
    # ------------------------------------------------------------------
    def on_transmit(self, num_bytes: int, energy_joules: float) -> None:
        self.battery.draw(energy_joules)

    def _run_algorithm(
        self, observation: FrameObservation, algorithm: str
    ) -> list[Detection]:
        self.battery.draw(self.energy_model.energy_per_frame(algorithm))
        return self.detectors[algorithm].detect(
            observation, self.rng, threshold=self.thresholds.get(algorithm)
        )

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def start(self, features: np.ndarray | None = None) -> None:
        """Startup: upload features (optional) and the energy report."""
        if features is not None:
            self.send(
                FeatureUpload(
                    sender=self.node_id,
                    recipient=self.controller_id,
                    features=features,
                )
            )
        self.report_energy()

    def report_energy(self) -> None:
        self.send(
            EnergyReport(
                sender=self.node_id,
                recipient=self.controller_id,
                residual_joules=self.battery.residual,
            )
        )

    def receive(self, message: Message) -> None:
        if isinstance(message, AssessmentRequest):
            self._handle_assessment(message)
        elif isinstance(message, AlgorithmAssignment):
            self.active_algorithm = message.algorithm
        else:
            raise TypeError(
                f"camera {self.node_id!r} cannot handle {message.kind}"
            )

    def _handle_assessment(self, request: AssessmentRequest) -> None:
        for _ in range(request.num_frames):
            if self.cursor >= len(self.observations):
                break
            observation = self.observations[self.cursor]
            self.cursor += 1
            self.frames_processed += 1
            for algorithm in request.algorithms:
                detections = self._run_algorithm(observation, algorithm)
                self.send(
                    DetectionMetadata(
                        sender=self.node_id,
                        recipient=self.controller_id,
                        frame_index=observation.frame_index,
                        algorithm=algorithm,
                        detections=detections,
                    )
                )

    def process_next_frame(self) -> bool:
        """Operational tick: run the assigned algorithm on one frame.

        Returns False when the stream is exhausted or the node is idle.
        """
        if self.active_algorithm is None:
            return False
        if self.cursor >= len(self.observations):
            return False
        observation = self.observations[self.cursor]
        self.cursor += 1
        self.frames_processed += 1
        detections = self._run_algorithm(observation, self.active_algorithm)
        self.send(
            DetectionMetadata(
                sender=self.node_id,
                recipient=self.controller_id,
                frame_index=observation.frame_index,
                algorithm=self.active_algorithm,
                detections=detections,
            )
        )
        return True


@dataclass
class _AssessmentCollector:
    """Accumulates metadata messages into an AssessmentData."""

    expected_frames: int
    by_frame: dict[int, dict[str, dict[str, list[Detection]]]] = field(
        default_factory=dict
    )

    def add(self, message: DetectionMetadata) -> None:
        frame = self.by_frame.setdefault(message.frame_index, {})
        camera = frame.setdefault(message.sender, {})
        camera[message.algorithm] = list(message.detections)

    def to_assessment(self) -> AssessmentData:
        ordered = [self.by_frame[k] for k in sorted(self.by_frame)]
        return AssessmentData(frames=ordered)


class ControllerNode(Node):
    """The central controller as a network node."""

    def __init__(
        self,
        node_id: str,
        controller: EECSController,
        assessment_frames: int = 4,
        budget: float | None = None,
    ) -> None:
        super().__init__(node_id)
        self.controller = controller
        self.assessment_frames = assessment_frames
        self.budget = budget
        self.energy_reports: dict[str, float] = {}
        self.operational_metadata: list[DetectionMetadata] = []
        self.decisions = []
        self._collector: _AssessmentCollector | None = None
        self._pending_cameras: set[str] = set()
        self._pending_algorithms: dict[str, int] = {}

    def receive(self, message: Message) -> None:
        if isinstance(message, FeatureUpload):
            if self.controller.comparator is not None:
                self.controller.receive_features(
                    message.sender, message.features
                )
        elif isinstance(message, EnergyReport):
            self.energy_reports[message.sender] = message.residual_joules
        elif isinstance(message, DetectionMetadata):
            self._handle_metadata(message)
        else:
            raise TypeError(
                f"controller cannot handle {message.kind}"
            )

    # ------------------------------------------------------------------
    # Assessment round orchestration
    # ------------------------------------------------------------------
    def start_assessment(
        self, camera_algorithms: dict[str, list[str]]
    ) -> None:
        """Ask every camera to run its affordable algorithms."""
        self._collector = _AssessmentCollector(
            expected_frames=self.assessment_frames
        )
        self._pending_cameras = set(camera_algorithms)
        self._pending_algorithms = {
            camera: self.assessment_frames * len(algorithms)
            for camera, algorithms in camera_algorithms.items()
        }
        for camera_id, algorithms in camera_algorithms.items():
            self.send(
                AssessmentRequest(
                    sender=self.node_id,
                    recipient=camera_id,
                    num_frames=self.assessment_frames,
                    algorithms=algorithms,
                )
            )

    def _handle_metadata(self, message: DetectionMetadata) -> None:
        if (
            self._collector is not None
            and message.sender in self._pending_cameras
        ):
            self.controller.calibrate_probabilities(
                message.sender, message.detections
            )
            self._collector.add(message)
            self._pending_algorithms[message.sender] -= 1
            if self._pending_algorithms[message.sender] <= 0:
                self._pending_cameras.discard(message.sender)
            if not self._pending_cameras:
                self._finish_assessment()
        else:
            self.operational_metadata.append(message)

    def _finish_assessment(self) -> None:
        assessment = self._collector.to_assessment()
        self._collector = None
        overrides = (
            {c: self.budget for c in self.controller.camera_ids}
            if self.budget is not None
            else None
        )
        decision = self.controller.select(
            assessment, budget_overrides=overrides
        )
        self.decisions.append(decision)
        for camera_id in self.controller.camera_ids:
            algorithm = decision.assignment.get(camera_id)
            threshold = float("nan")
            if algorithm is not None:
                state = self.controller.camera(camera_id)
                item = self.controller.library.get(state.matched_item)
                threshold = item.profile(algorithm).threshold
            self.send(
                AlgorithmAssignment(
                    sender=self.node_id,
                    recipient=camera_id,
                    algorithm=algorithm,
                    threshold=threshold,
                )
            )

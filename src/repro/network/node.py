"""Camera-sensor and controller nodes speaking the EECS protocol.

These nodes run the paper's Fig. 2 interaction over the discrete-event
simulator: sensors upload features and energy reports at startup, the
controller requests assessments, sensors stream detection metadata,
and the controller pushes algorithm assignments back.  Energy for both
processing and transmission is drawn from each sensor's battery.

Fault tolerance (all opt-in; with ``reliable=False`` and no heartbeats
the behaviour is identical to the fault-free protocol):

* ``reliable=True`` routes protocol messages through a
  :class:`~repro.network.reliability.ReliableTransport` — sequence
  numbers, acks, timeout/backoff retransmission (each attempt charged
  to the sender's battery) and duplicate suppression;
* cameras emit periodic :class:`~repro.network.messages.Heartbeat`
  beacons (:meth:`CameraSensorNode.start_heartbeats`) and stop
  processing and transmitting once crashed or battery-depleted;
* the controller tracks heartbeats
  (:meth:`ControllerNode.enable_liveness`), declares cameras dead
  after a miss threshold, and *re-selects* — re-runs greedy camera
  subset selection and algorithm downgrade over the survivors using
  the last assessment's metadata — so global accuracy degrades
  gracefully instead of silently counting on dead cameras.  Every
  declaration and re-selection is appended to a structured
  :class:`~repro.faults.events.FaultLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.controller import CAMERA_QUARANTINED, EECSController
from repro.core.selection import AssessmentData
from repro.detection.base import Detection, Detector
from repro.energy.battery import Battery
from repro.energy.model import ProcessingEnergyModel
from repro.faults.events import FaultLog
from repro.network.messages import (
    Ack,
    AlgorithmAssignment,
    AssessmentRequest,
    DetectionMetadata,
    EnergyReport,
    FeatureUpload,
    Heartbeat,
    Message,
)
from repro.network.reliability import ReliableTransport, node_seed
from repro.network.simulator import Node
from repro.world.renderer import FrameObservation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.resilience.ladder import ResilienceCoordinator
    from repro.telemetry.core import Telemetry


class CameraSensorNode(Node):
    """A battery-operated camera sensor.

    The node owns its frame stream (pre-rendered observations), its
    pre-installed detectors, and its battery.  It answers assessment
    requests by running the requested algorithms over the next frames
    and streaming metadata back, and otherwise runs whatever algorithm
    the controller assigned.  A crashed (``alive=False``) or
    battery-depleted node processes nothing and transmits nothing.
    """

    def __init__(
        self,
        node_id: str,
        controller_id: str,
        observations: list[FrameObservation],
        detectors: dict[str, Detector],
        thresholds: dict[str, float],
        energy_model: ProcessingEnergyModel,
        battery: Battery | None = None,
        rng: np.random.Generator | None = None,
        reliable: bool = False,
        telemetry: "Telemetry | None" = None,
        fault_log: FaultLog | None = None,
    ) -> None:
        super().__init__(node_id)
        self.controller_id = controller_id
        self.observations = observations
        self.detectors = detectors
        self.thresholds = thresholds
        self.energy_model = energy_model
        self.battery = battery or Battery()
        # Unconfigured nodes must not share one rng stream: derive the
        # default seed from the node id instead of a constant.
        self.rng = (
            rng
            if rng is not None
            else np.random.default_rng(node_seed(node_id))
        )
        self.telemetry = telemetry
        if telemetry is not None:
            self.battery.instrument(
                telemetry, node_id, clock=self._sim_now
            )
        self.transport = (
            ReliableTransport(self, telemetry=telemetry, fault_log=fault_log)
            if reliable
            else None
        )
        self.cursor = 0
        self.active_algorithm: str | None = None
        #: True after the controller explicitly assigned ``None`` —
        #: the camera idles but its frame cursor keeps pace.
        self.standby = False
        self.frames_processed = 0
        self.alive = True
        self.suppressed_sends = 0
        self.corrupted_received = 0
        #: Last healthy (observation, detections) pair — what a stuck
        #: sensor replays while its fault window is active.
        self._stuck_cache: tuple[FrameObservation, list[Detection]] | None = (
            None
        )
        self._heartbeat_interval: float | None = None
        self._heartbeat_until: float | None = None
        self._operation_until: float | None = None

    # ------------------------------------------------------------------
    # Energy accounting hooks
    # ------------------------------------------------------------------
    def _sim_now(self) -> float:
        return self.simulator.now if self.simulator is not None else 0.0

    def on_transmit(self, num_bytes: int, energy_joules: float) -> None:
        drawn = self.battery.draw(energy_joules)
        if self.telemetry is not None:
            from repro.energy.meter import EnergyMeter

            # Radio energy spent inside a transport resend is the price
            # of the lossy link, not of the protocol proper — keep the
            # categories separate so chaos runs show the split.
            category = (
                EnergyMeter.RETRANSMISSION
                if self.transport is not None
                and self.transport.is_retransmitting
                else EnergyMeter.COMMUNICATION
            )
            self.telemetry.energy_counter().inc(
                drawn, node=self.node_id, category=category
            )

    def _run_algorithm(
        self, observation: FrameObservation, algorithm: str
    ) -> list[Detection]:
        drawn = self.battery.draw(
            self.energy_model.energy_per_frame(algorithm)
        )
        if self.telemetry is None:
            return self.detectors[algorithm].detect(
                observation,
                self.rng,
                threshold=self.thresholds.get(algorithm),
            )
        from repro.energy.meter import EnergyMeter

        self.telemetry.energy_counter().inc(
            drawn, node=self.node_id, category=EnergyMeter.PROCESSING
        )
        with self.telemetry.tracer.span(
            "camera_op",
            node=self.node_id,
            algorithm=algorithm,
            frame=observation.frame_index,
            sim_time_s=self._sim_now(),
        ):
            detections = self.detectors[algorithm].detect(
                observation,
                self.rng,
                threshold=self.thresholds.get(algorithm),
            )
        self.telemetry.observe_detections(
            self.node_id, algorithm, detections
        )
        return detections

    def _injector(self) -> "FaultInjector | None":
        sim = self.simulator
        return sim.fault_injector if sim is not None else None

    def _interval_scale(self) -> float:
        """Clock-skew multiplier for locally scheduled intervals."""
        injector = self._injector()
        if injector is None:
            return 1.0
        return injector.clock_scale(self.node_id, self._sim_now())

    def _charge_processing(self, algorithm: str) -> None:
        drawn = self.battery.draw(
            self.energy_model.energy_per_frame(algorithm)
        )
        if self.telemetry is not None:
            from repro.energy.meter import EnergyMeter

            self.telemetry.energy_counter().inc(
                drawn, node=self.node_id, category=EnergyMeter.PROCESSING
            )

    def _sense(
        self, observation: FrameObservation, algorithm: str
    ) -> tuple[FrameObservation, list[Detection]]:
        """Run the detector through the sensor-fault lens.

        Returns the observation actually *sensed* plus its detections.
        A stuck sensor replays its last healthy frame wholesale (the
        pipeline still runs — and still drains the battery — but sees
        a frozen frame, so scores and frame index repeat verbatim:
        exactly the signature health scoring detects).  Otherwise the
        detector output passes through the injector's noise /
        fabrication / drift perturbations.  Without an injector, or
        with no matching fault, this is exactly
        :meth:`_run_algorithm`.
        """
        injector = self._injector()
        if injector is None:
            return observation, self._run_algorithm(observation, algorithm)
        now = self._sim_now()
        if (
            injector.stuck_active(self.node_id, now)
            and self._stuck_cache is not None
        ):
            frozen, cached = self._stuck_cache
            self._charge_processing(algorithm)
            return frozen, [
                replace(det, algorithm=algorithm) for det in cached
            ]
        detections = self._run_algorithm(observation, algorithm)
        self._stuck_cache = (observation, list(detections))
        return observation, injector.perturb_detections(
            self.node_id, now, detections, self.thresholds.get(algorithm)
        )

    @property
    def is_operational(self) -> bool:
        return self.alive and not self.battery.is_depleted

    # ------------------------------------------------------------------
    # Fault hooks (driven by the FaultInjector)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power loss: stop processing; the radio goes silent."""
        self.alive = False

    def reboot(self) -> None:
        """Come back up and announce ourselves to the controller."""
        self.alive = True
        if self.simulator is not None and self.is_operational:
            self.report_energy()
            if self._heartbeat_interval is not None:
                self._emit_heartbeat()

    def send(self, message: Message) -> None:
        """Transmit unless crashed or depleted (the radio has no power)."""
        if not self.is_operational:
            self.suppressed_sends += 1
            return
        super().send(message)

    def _send(self, message: Message) -> None:
        """Protocol send: reliable when a transport is configured."""
        if self.transport is not None:
            self.transport.send(message)
        else:
            self.send(message)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def start(self, features: np.ndarray | None = None) -> None:
        """Startup: upload features (optional) and the energy report."""
        if features is not None:
            self._send(
                FeatureUpload(
                    sender=self.node_id,
                    recipient=self.controller_id,
                    features=features,
                )
            )
        self.report_energy()

    def report_energy(self) -> None:
        self._send(
            EnergyReport(
                sender=self.node_id,
                recipient=self.controller_id,
                residual_joules=self.battery.residual,
            )
        )

    # ------------------------------------------------------------------
    # Heartbeats and autonomous operation
    # ------------------------------------------------------------------
    def start_heartbeats(
        self, interval_s: float, until: float | None = None
    ) -> None:
        """Beacon liveness every ``interval_s`` simulated seconds.

        Pass ``until`` (absolute simulated time) to bound the schedule
        — without it the simulator's queue never drains on ``run()``.
        Beacons are fire-and-forget: a missed heartbeat is exactly the
        signal the controller's liveness monitor consumes.
        """
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        self._heartbeat_interval = interval_s
        self._heartbeat_until = until
        self._heartbeat_tick()

    def _emit_heartbeat(self) -> None:
        self.send(
            Heartbeat(
                sender=self.node_id,
                recipient=self.controller_id,
                residual_joules=self.battery.residual,
            )
        )

    def _heartbeat_tick(self) -> None:
        sim = self.simulator
        if sim is None or self._heartbeat_interval is None:
            return
        if (
            self._heartbeat_until is not None
            and sim.now > self._heartbeat_until
        ):
            return
        # self.send is a no-op while crashed/depleted; the schedule
        # keeps ticking so a rebooted node resumes beaconing.  A skewed
        # local clock stretches (or shrinks) the interval — late
        # beacons are exactly how the controller notices the skew.
        self._emit_heartbeat()
        sim.schedule(
            self._heartbeat_interval * self._interval_scale(),
            self._heartbeat_tick,
        )

    def start_operation(
        self, interval_s: float, until: float | None = None
    ) -> None:
        """Process one frame every ``interval_s`` (the paper's cadence).

        Each tick runs :meth:`process_next_frame`, which is a no-op
        until the controller assigns an algorithm, and after a crash
        or battery exhaustion.
        """
        if interval_s <= 0:
            raise ValueError("operation interval must be positive")
        self._operation_until = until
        self._operation_tick(interval_s)

    def _operation_tick(self, interval_s: float) -> None:
        sim = self.simulator
        if sim is None:
            return
        if (
            self._operation_until is not None
            and sim.now > self._operation_until
        ):
            return
        self.process_next_frame()
        sim.schedule(
            interval_s * self._interval_scale(),
            lambda: self._operation_tick(interval_s),
        )

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def receive(self, message: Message) -> None:
        if not self.alive:
            return  # crashed hardware hears nothing
        if message.corrupted:
            # Checksum failure: discard without acking, so the sender
            # retransmits exactly as if the packet had been lost.
            self.corrupted_received += 1
            return
        if isinstance(message, Ack):
            if self.transport is not None:
                self.transport.handle_ack(message)
            return
        if self.transport is not None and not self.transport.accept(message):
            return  # duplicate of an already-processed message
        if isinstance(message, AssessmentRequest):
            self._handle_assessment(message)
        elif isinstance(message, AlgorithmAssignment):
            self.active_algorithm = message.algorithm
            self.standby = message.algorithm is None
        else:
            raise TypeError(
                f"camera {self.node_id!r} cannot handle {message.kind}"
            )

    def _handle_assessment(self, request: AssessmentRequest) -> None:
        for _ in range(request.num_frames):
            if self.cursor >= len(self.observations):
                break
            if self.battery.is_depleted:
                break
            observation = self.observations[self.cursor]
            self.cursor += 1
            self.frames_processed += 1
            for algorithm in request.algorithms:
                sensed, detections = self._sense(observation, algorithm)
                self._send(
                    DetectionMetadata(
                        sender=self.node_id,
                        recipient=self.controller_id,
                        frame_index=sensed.frame_index,
                        algorithm=algorithm,
                        detections=detections,
                    )
                )

    def process_next_frame(self) -> bool:
        """Operational tick: run the assigned algorithm on one frame.

        Returns False when the stream is exhausted, the node is idle,
        crashed, or its battery is depleted.
        """
        if not self.is_operational:
            return False
        if self.active_algorithm is None:
            # A camera explicitly told to stand by keeps pace with the
            # live stream (the sensor keeps streaming; it just skips
            # detection), so a later (re)activation starts at the
            # *current* frame instead of replaying everything it
            # ignored while idle.  Before the first assignment the
            # cursor stays put — those frames belong to assessment.
            if self.standby and self.cursor < len(self.observations):
                self.cursor += 1
            return False
        if self.cursor >= len(self.observations):
            return False
        observation = self.observations[self.cursor]
        self.cursor += 1
        self.frames_processed += 1
        sensed, detections = self._sense(observation, self.active_algorithm)
        self._send(
            DetectionMetadata(
                sender=self.node_id,
                recipient=self.controller_id,
                frame_index=sensed.frame_index,
                algorithm=self.active_algorithm,
                detections=detections,
            )
        )
        return True


@dataclass
class _AssessmentCollector:
    """Accumulates metadata messages into an AssessmentData."""

    expected_frames: int
    by_frame: dict[int, dict[str, dict[str, list[Detection]]]] = field(
        default_factory=dict
    )

    def add(self, message: DetectionMetadata) -> None:
        frame = self.by_frame.setdefault(message.frame_index, {})
        camera = frame.setdefault(message.sender, {})
        camera[message.algorithm] = list(message.detections)

    def to_assessment(self) -> AssessmentData:
        ordered = [self.by_frame[k] for k in sorted(self.by_frame)]
        return AssessmentData(frames=ordered)


class ControllerNode(Node):
    """The central controller as a network node.

    With ``reliable=True`` plus :meth:`enable_liveness` the controller
    tolerates lossy links and dying cameras: assessment rounds finish
    on partial data (give-ups and timeouts release pending cameras),
    heartbeat silence marks cameras dead, and every liveness change
    triggers a re-selection over the surviving fleet.
    """

    def __init__(
        self,
        node_id: str,
        controller: EECSController,
        assessment_frames: int = 4,
        budget: float | None = None,
        reliable: bool = False,
        fault_log: FaultLog | None = None,
        telemetry: "Telemetry | None" = None,
        resilience: "ResilienceCoordinator | None" = None,
    ) -> None:
        super().__init__(node_id)
        self.controller = controller
        self.assessment_frames = assessment_frames
        self.budget = budget
        self.telemetry = telemetry
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self.resilience = resilience
        if resilience is not None:
            if resilience.fault_log is None:
                resilience.fault_log = self.fault_log
            for camera_id in controller.camera_ids:
                resilience.register(camera_id)
        self.transport = (
            ReliableTransport(
                self,
                on_give_up=self._on_give_up,
                telemetry=telemetry,
                fault_log=self.fault_log,
                breaker_for=(
                    resilience.breaker if resilience is not None else None
                ),
            )
            if reliable
            else None
        )
        self.corrupted_received = 0
        self._round_span = None
        self._phase_span = None
        self._round_index = 0
        self.energy_reports: dict[str, float] = {}
        self.last_heartbeat: dict[str, float] = {}
        self.operational_metadata: list[DetectionMetadata] = []
        self.decisions = []
        self.last_assessment: AssessmentData | None = None
        self._collector: _AssessmentCollector | None = None
        self._pending_cameras: set[str] = set()
        self._pending_algorithms: dict[str, int] = {}
        self._assessment_deadline: float | None = None
        self._liveness_interval: float | None = None
        self._liveness_misses = 3
        self._liveness_until: float | None = None

    def _send(self, message: Message) -> None:
        if self.transport is not None:
            self.transport.send(message)
        else:
            self.send(message)

    # ------------------------------------------------------------------
    # Telemetry span lifecycle (run → round → phase)
    # ------------------------------------------------------------------
    def _sim_now(self) -> float:
        return self.simulator.now if self.simulator is not None else 0.0

    def _enter_phase(self, name: str) -> None:
        """Close the current phase span and open the next one."""
        if self.telemetry is None:
            return
        tracer = self.telemetry.tracer
        if self._phase_span is not None:
            tracer.end(self._phase_span)
        self._phase_span = tracer.begin(name, sim_time_s=self._sim_now())

    def close_telemetry(self) -> None:
        """End any open round/phase spans (end-of-run cleanup)."""
        if self.telemetry is None:
            return
        tracer = self.telemetry.tracer
        if self._phase_span is not None:
            tracer.end(self._phase_span)
            self._phase_span = None
        if self._round_span is not None:
            tracer.end(self._round_span)
            self._round_span = None

    def receive(self, message: Message) -> None:
        if message.corrupted:
            # Checksum failure: discard without acking (the sender
            # retransmits as if lost) — but the garbled payload itself
            # is a health signal about the sending camera.
            self.corrupted_received += 1
            self.fault_log.fault(
                self._sim_now(),
                "message_corrupted",
                message.sender,
                message.kind,
            )
            if self.resilience is not None:
                self.resilience.monitor.observe_corruption(message.sender)
            return
        if isinstance(message, Ack):
            if self.transport is not None:
                self.transport.handle_ack(message)
            return
        if isinstance(message, Heartbeat):
            self._handle_heartbeat(message)
            return
        if self.transport is not None and not self.transport.accept(message):
            return  # duplicate of an already-processed message
        if isinstance(message, FeatureUpload):
            if self.controller.comparator is not None:
                self.controller.receive_features(
                    message.sender, message.features
                )
        elif isinstance(message, EnergyReport):
            self.energy_reports[message.sender] = message.residual_joules
        elif isinstance(message, DetectionMetadata):
            self._handle_metadata(message)
        else:
            raise TypeError(
                f"controller cannot handle {message.kind}"
            )

    # ------------------------------------------------------------------
    # Liveness: heartbeats, dead declarations, re-selection
    # ------------------------------------------------------------------
    def enable_liveness(
        self,
        heartbeat_interval_s: float,
        miss_threshold: int = 3,
        until: float | None = None,
    ) -> None:
        """Watch camera heartbeats and react to silence.

        A camera unheard for ``miss_threshold`` heartbeat intervals is
        marked dead and the current selection is re-run over the
        survivors.  ``until`` bounds the monitoring schedule in
        absolute simulated time.
        """
        if self.simulator is None:
            raise RuntimeError("attach the controller to a simulator first")
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self._liveness_interval = heartbeat_interval_s
        self._liveness_misses = miss_threshold
        self._liveness_until = until
        now = self.simulator.now
        for camera_id in self.controller.camera_ids:
            self.last_heartbeat.setdefault(camera_id, now)
        self.simulator.schedule(heartbeat_interval_s, self._liveness_check)

    def _handle_heartbeat(self, message: Heartbeat) -> None:
        if self.simulator is not None:
            self.last_heartbeat[message.sender] = self.simulator.now
        self.energy_reports[message.sender] = message.residual_joules
        if self.resilience is not None:
            self.resilience.monitor.observe_heartbeat(
                message.sender, self._sim_now(), message.residual_joules
            )
        if message.sender in self.controller.camera_ids:
            state = self.controller.camera(message.sender)
            if not state.alive:
                self.controller.mark_camera_alive(message.sender)
                self.fault_log.recovery(
                    self.simulator.now if self.simulator else 0.0,
                    "camera_marked_alive",
                    message.sender,
                )
                self._reselect(f"camera {message.sender} returned")

    def _liveness_check(self) -> None:
        sim = self.simulator
        if sim is None or self._liveness_interval is None:
            return
        deadline = self._liveness_misses * self._liveness_interval
        newly_dead = []
        for camera_id in self.controller.camera_ids:
            state = self.controller.camera(camera_id)
            if not state.alive:
                continue
            silent_for = sim.now - self.last_heartbeat.get(camera_id, 0.0)
            if silent_for > deadline:
                self.controller.mark_camera_dead(camera_id)
                newly_dead.append(camera_id)
                self.fault_log.fault(
                    sim.now,
                    "camera_marked_dead",
                    camera_id,
                    f"no heartbeat for {silent_for:.2f} s",
                )
            elif (
                self.resilience is not None
                and silent_for > self._liveness_interval
            ):
                # Late but not yet dead: a *weak* health signal (clock
                # skew and transient loss both look like this).
                self.resilience.monitor.observe_miss(camera_id)
        if newly_dead:
            for camera_id in newly_dead:
                self._release_pending(camera_id)
            self._reselect(f"cameras died: {', '.join(newly_dead)}")
        if self.resilience is not None:
            self._apply_resilience(sim.now)
        if self._liveness_until is None or sim.now <= self._liveness_until:
            sim.schedule(self._liveness_interval, self._liveness_check)

    # ------------------------------------------------------------------
    # Resilience: degradation ladder, quarantine probes
    # ------------------------------------------------------------------
    def _apply_resilience(self, now: float) -> None:
        """Advance the health ladder and act on its transitions."""
        coordinator = self.resilience
        transitions = coordinator.evaluate(now)
        for transition in transitions:
            self.controller.set_camera_mode(
                transition.camera_id, transition.new_mode
            )
            if transition.new_mode == CAMERA_QUARANTINED:
                # Stop waiting on a quarantined camera's assessment
                # contribution — its data is suspect anyway.
                self._release_pending(transition.camera_id)
        for camera_id in coordinator.due_probes(now):
            self._send_probe(camera_id, now)
        if transitions:
            moved = ", ".join(
                f"{t.camera_id}->{t.new_mode}" for t in transitions
            )
            self._reselect(f"health transitions: {moved}")

    def _cheapest_algorithm(self, camera_id: str) -> str | None:
        state = self.controller.camera(camera_id)
        if state.matched_item is None:
            return None
        item = self.controller.library.get(state.matched_item)
        cheapest = min(
            item.profiles.values(),
            key=lambda p: (p.energy_per_frame, p.algorithm),
        )
        return cheapest.algorithm

    def _send_probe(self, camera_id: str, now: float) -> None:
        """Cheap re-admission probe: one frame, cheapest algorithm."""
        state = self.controller.camera(camera_id)
        if not state.alive:
            return  # liveness owns dead cameras
        algorithm = self._cheapest_algorithm(camera_id)
        if algorithm is None:
            return
        self.fault_log.recovery(
            now, "quarantine_probe", camera_id, algorithm
        )
        self._send(
            AssessmentRequest(
                sender=self.node_id,
                recipient=camera_id,
                num_frames=self.resilience.config.probe_frames,
                algorithms=[algorithm],
            )
        )

    def _reselect(self, reason: str) -> None:
        """Re-run selection over surviving cameras on the last data."""
        if self.last_assessment is None:
            return
        now = self.simulator.now if self.simulator else 0.0
        try:
            decision = self._decide(self.last_assessment)
        except RuntimeError as exc:
            self.fault_log.fault(
                now, "reselect_failed", self.node_id, str(exc)
            )
            return
        self.decisions.append(decision)
        self.fault_log.recovery(
            now, "reselected", self.node_id,
            f"{reason}; new assignment {decision.assignment}",
        )
        self._push_assignments(decision)

    # ------------------------------------------------------------------
    # Reliability bookkeeping
    # ------------------------------------------------------------------
    def _on_give_up(self, message: Message) -> None:
        """A message exhausted its retries; release anything waiting."""
        now = self.simulator.now if self.simulator else 0.0
        self.fault_log.fault(
            now, "delivery_gave_up", message.recipient, message.kind
        )
        if self.resilience is not None:
            self.resilience.monitor.observe_give_up(message.recipient)
        if isinstance(message, AssessmentRequest):
            self._release_pending(message.recipient)

    def _release_pending(self, camera_id: str) -> None:
        """Stop waiting on a camera's assessment contribution."""
        if self._collector is None:
            return
        self._pending_cameras.discard(camera_id)
        self._pending_algorithms.pop(camera_id, None)
        if not self._pending_cameras:
            self._finish_assessment()

    # ------------------------------------------------------------------
    # Assessment round orchestration
    # ------------------------------------------------------------------
    def start_assessment(
        self,
        camera_algorithms: dict[str, list[str]],
        timeout_s: float | None = None,
    ) -> None:
        """Ask every camera to run its affordable algorithms.

        ``timeout_s`` bounds the round: if metadata is still missing
        after that many simulated seconds (lost requests, cameras dying
        mid-assessment), the round closes on whatever arrived instead
        of stalling forever.
        """
        if self.telemetry is not None:
            self.close_telemetry()
            self._round_span = self.telemetry.tracer.begin(
                "round",
                index=self._round_index,
                sim_time_s=self._sim_now(),
            )
            self._round_index += 1
            self._enter_phase("assessment")
            self.telemetry.registry.counter(
                "run_rounds_total",
                "Assessment/selection rounds executed.",
            ).inc()
        self._collector = _AssessmentCollector(
            expected_frames=self.assessment_frames
        )
        self._pending_cameras = set(camera_algorithms)
        self._pending_algorithms = {
            camera: self.assessment_frames * len(algorithms)
            for camera, algorithms in camera_algorithms.items()
        }
        if timeout_s is not None:
            if self.simulator is None:
                raise RuntimeError(
                    "attach the controller to a simulator first"
                )
            deadline = self.simulator.now + timeout_s
            self._assessment_deadline = deadline
            self.simulator.schedule(
                timeout_s, lambda: self._assessment_timeout(deadline)
            )
        for camera_id, algorithms in camera_algorithms.items():
            self._send(
                AssessmentRequest(
                    sender=self.node_id,
                    recipient=camera_id,
                    num_frames=self.assessment_frames,
                    algorithms=algorithms,
                )
            )

    def _assessment_timeout(self, deadline: float) -> None:
        if self._collector is None or self._assessment_deadline != deadline:
            return  # the round already finished (or was restarted)
        waiting = sorted(self._pending_cameras)
        self.fault_log.fault(
            self.simulator.now if self.simulator else 0.0,
            "assessment_timeout",
            self.node_id,
            f"closing round without: {', '.join(waiting)}",
        )
        self._finish_assessment()

    def _handle_metadata(self, message: DetectionMetadata) -> None:
        if self.resilience is not None:
            # Every metadata message — assessment, operational, or a
            # quarantine probe reply — feeds the health baselines.
            self.resilience.monitor.observe_detections(
                message.sender,
                message.algorithm,
                message.frame_index,
                [det.score for det in message.detections],
            )
        if (
            self._collector is not None
            and message.sender in self._pending_cameras
        ):
            self.controller.calibrate_probabilities(
                message.sender, message.detections
            )
            self._collector.add(message)
            self._pending_algorithms[message.sender] -= 1
            if self._pending_algorithms[message.sender] <= 0:
                self._pending_cameras.discard(message.sender)
            if not self._pending_cameras:
                self._finish_assessment()
        else:
            if (
                self.resilience is not None
                and self.resilience.mode(message.sender)
                == CAMERA_QUARANTINED
            ):
                # Quarantined data informs health but never accuracy:
                # probe replies stop here.
                return
            self.operational_metadata.append(message)

    def _decide(self, assessment: AssessmentData):
        overrides = (
            {c: self.budget for c in self.controller.camera_ids}
            if self.budget is not None
            else None
        )
        return self.controller.select(
            assessment, budget_overrides=overrides
        )

    def _finish_assessment(self) -> None:
        self._enter_phase("selection")
        try:
            assessment = self._collector.to_assessment()
            self._collector = None
            self._assessment_deadline = None
            if not assessment.frames:
                self.fault_log.fault(
                    self.simulator.now if self.simulator else 0.0,
                    "assessment_empty",
                    self.node_id,
                    "no metadata arrived; keeping the previous selection",
                )
                return
            self.last_assessment = assessment
            try:
                decision = self._decide(assessment)
            except RuntimeError as exc:
                self.fault_log.fault(
                    self.simulator.now if self.simulator else 0.0,
                    "selection_failed",
                    self.node_id,
                    str(exc),
                )
                return
            self.decisions.append(decision)
            self._push_assignments(decision)
        finally:
            # Whatever happened to selection, the fleet moves on to (or
            # keeps) operating — the span tree should show that phase.
            self._enter_phase("operation")

    def _push_assignments(self, decision) -> None:
        for camera_id in self.controller.alive_camera_ids:
            algorithm = decision.assignment.get(camera_id)
            threshold = float("nan")
            if algorithm is not None:
                state = self.controller.camera(camera_id)
                item = self.controller.library.get(state.matched_item)
                threshold = item.profile(algorithm).threshold
            self._send(
                AlgorithmAssignment(
                    sender=self.node_id,
                    recipient=camera_id,
                    algorithm=algorithm,
                    threshold=threshold,
                )
            )

"""Typed messages exchanged between sensors and the controller.

Sizes follow Section V-A: a frame feature vector is 4180 floats
(~16 KB); detection metadata is 172 bytes per object (8 B bounding
box, 4 B probability, 160 B colour feature).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.base import Detection

FEATURE_BYTES_PER_FRAME = 16720
METADATA_BYTES_PER_OBJECT = 172


#: Sequence number of a message sent outside any reliable transport.
UNSEQUENCED = -1


@dataclass
class Message:
    """Base class for network messages.

    Attributes:
        sender: Node id of the originator.
        recipient: Node id of the destination.
        seq: Per-sender sequence number stamped by a reliable
            transport; ``UNSEQUENCED`` (-1) for fire-and-forget sends.
            The 64-byte header already accounts for it.
        corrupted: Set by the simulator when a fault injector garbles
            the payload in flight.  Receivers discard corrupted
            messages without acking (a checksum failure looks like a
            loss to the sender), but *observe* the corruption — it is
            a health signal.
    """

    sender: str
    recipient: str
    seq: int = UNSEQUENCED
    corrupted: bool = False

    @property
    def size_bytes(self) -> int:
        """Wire size; subclasses override with their payload size."""
        return 64  # headers only

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass
class FeatureUpload(Message):
    """Frame features uploaded for GFK matching (Section IV-B.1)."""

    features: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))

    @property
    def size_bytes(self) -> int:
        num_frames = len(np.atleast_2d(self.features))
        return 64 + num_frames * FEATURE_BYTES_PER_FRAME


@dataclass
class EnergyReport(Message):
    """Residual energy / budget notification."""

    residual_joules: float = 0.0
    budget_per_frame: float = 0.0

    @property
    def size_bytes(self) -> int:
        return 64 + 16


@dataclass
class DetectionMetadata(Message):
    """Per-frame detection metadata for accuracy assessment."""

    frame_index: int = 0
    algorithm: str = ""
    detections: list[Detection] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 64 + METADATA_BYTES_PER_OBJECT * len(self.detections)


@dataclass
class AlgorithmAssignment(Message):
    """Controller decision: which algorithm (or none) to run."""

    algorithm: str | None = None
    threshold: float = float("nan")

    @property
    def active(self) -> bool:
        return self.algorithm is not None

    @property
    def size_bytes(self) -> int:
        return 64 + 16


@dataclass
class Ack(Message):
    """Transport-level acknowledgement of one sequenced message.

    Acks are fire-and-forget (never themselves acked): a lost ack just
    triggers a retransmission that the receiver deduplicates.
    """

    acked_seq: int = UNSEQUENCED
    acked_kind: str = ""

    @property
    def size_bytes(self) -> int:
        return 64  # header-only


@dataclass
class Heartbeat(Message):
    """Periodic liveness beacon from a camera to the controller."""

    residual_joules: float = 0.0

    @property
    def size_bytes(self) -> int:
        return 64 + 8


@dataclass
class AssessmentRequest(Message):
    """Controller trigger: run all affordable algorithms and report."""

    num_frames: int = 4
    algorithms: list[str] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 64 + 4 + 8 * len(self.algorithms)


@dataclass
class CellReport(Message):
    """Cell leader -> coordinator: the cell's last selection outcome.

    The hierarchical ``cell`` policy's upward half: each
    re-calibration interval the cell leader reports how its local
    selection fared against the desired accuracy, and the coordinator
    re-allocates budget scales from the fleet-wide picture.
    """

    cell_id: str = ""
    num_cameras: int = 0
    achieved_objects: float = 0.0
    desired_objects: float = 0.0

    @property
    def size_bytes(self) -> int:
        return 64 + 8 + 4 + 8 + 8


@dataclass
class BudgetGrant(Message):
    """Coordinator -> cell leader: the cell's budget scale for the
    coming interval (the downward half of the hierarchy)."""

    cell_id: str = ""
    scale: float = 1.0

    @property
    def size_bytes(self) -> int:
        return 64 + 8 + 8


@dataclass
class PeerClaim(Message):
    """Camera -> neighbouring camera: one decentralised negotiation
    step of the ``peer`` policy (N-queens-style conflict resolution:
    a claim advertises the sender's utility and intended activation,
    and neighbours back off from locally dominated claims)."""

    negotiation_round: int = 0
    utility: float = 0.0
    active: bool = True

    @property
    def size_bytes(self) -> int:
        return 64 + 4 + 8 + 1

"""Reliable delivery over the lossy event simulator.

A :class:`ReliableTransport` wraps one node's sends with the classic
stop-and-wait machinery: every outgoing message is stamped with a
per-sender sequence number, held as pending until the peer's
:class:`~repro.network.messages.Ack` arrives, and retransmitted on
timeout with exponential backoff plus deterministic seeded jitter, up
to a retry cap.  Receivers ack every sequenced message (including
duplicates — the original ack may have been the lost packet) and
suppress duplicates by remembering seen sequence numbers per peer.

Retransmissions go through the node's normal ``send`` path, so every
attempt charges the sender's radio energy — lossy links cost Joules,
exactly the coupling the paper's energy model is about.

The transport is strictly opt-in: nodes constructed without it behave
exactly as before, and unsequenced messages (``seq == UNSEQUENCED``)
pass through an enabled receiver untouched, so reliable and legacy
nodes interoperate.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.network.messages import Ack, Message, UNSEQUENCED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.events import FaultLog
    from repro.network.simulator import Node
    from repro.resilience.breaker import CircuitBreaker
    from repro.telemetry.core import Telemetry


def node_seed(node_id: str) -> int:
    """A stable per-node seed derived from the node id.

    CRC32 rather than ``hash()`` so the stream survives interpreter
    restarts and ``PYTHONHASHSEED`` changes.
    """
    return zlib.crc32(node_id.encode("utf-8"))


@dataclass
class _Pending:
    """One in-flight message awaiting acknowledgement."""

    message: Message
    attempts: int = 0
    first_sent_at: float = 0.0


class ReliableTransport:
    """Ack/retry/dedup state machine for one node.

    Attributes:
        retransmissions: Total timeout-triggered resends.
        gave_up: Messages abandoned after the retry cap.
        duplicates_dropped: Received duplicates suppressed.
        acks_sent: Acknowledgements emitted.
    """

    def __init__(
        self,
        node: "Node",
        timeout_s: float = 0.25,
        max_retries: int = 5,
        backoff_factor: float = 2.0,
        jitter_s: float = 0.02,
        rng: np.random.Generator | None = None,
        on_give_up: Callable[[Message], None] | None = None,
        telemetry: "Telemetry | None" = None,
        fault_log: "FaultLog | None" = None,
        breaker_for: "Callable[[str], CircuitBreaker | None] | None" = None,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        self.node = node
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_factor = backoff_factor
        self.jitter_s = jitter_s
        self.on_give_up = on_give_up
        self.rng = (
            rng
            if rng is not None
            else np.random.default_rng(node_seed(node.node_id))
        )
        self.telemetry = telemetry
        self.fault_log = fault_log
        #: Optional per-recipient circuit-breaker lookup (the
        #: resilience coordinator's breakers).  ``None`` — the default
        #: — means every send is allowed, exactly the legacy behavior.
        self.breaker_for = breaker_for
        self._next_seq = 0
        self._pending: dict[int, _Pending] = {}
        self._seen: dict[str, set[int]] = {}
        self.retransmissions = 0
        self.gave_up = 0
        self.breaker_blocked = 0
        self.duplicates_dropped = 0
        self.acks_sent = 0
        #: True while this transport is re-sending a timed-out message
        #: — lets the owning node attribute the radio energy of that
        #: attempt to the "retransmission" category.
        self.is_retransmitting = False

    def _count(self, name: str, help: str) -> None:
        if self.telemetry is not None:
            self.telemetry.registry.counter(
                name, help, labels=("node",)
            ).inc(node=self.node.node_id)

    def _now(self) -> float:
        sim = self.node.simulator
        return sim.now if sim is not None else 0.0

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def _breaker(self, peer_id: str) -> "CircuitBreaker | None":
        if self.breaker_for is None:
            return None
        return self.breaker_for(peer_id)

    def send(self, message: Message) -> int:
        """Stamp, transmit, and track a message until it is acked.

        Returns the assigned sequence number.  When a circuit breaker
        guards the recipient's link and refuses the send, the message
        is abandoned immediately — no radio energy, no retry ladder —
        and the give-up callback fires as if the retries had been
        exhausted.
        """
        seq = self._next_seq
        self._next_seq += 1
        message.seq = seq
        breaker = self._breaker(message.recipient)
        if breaker is not None and not breaker.allow(self._now()):
            self.breaker_blocked += 1
            self._count(
                "network_breaker_blocked_total",
                "Sends refused outright by an open circuit breaker.",
            )
            if self.on_give_up is not None:
                self.on_give_up(message)
            return seq
        self._pending[seq] = _Pending(message, first_sent_at=self._now())
        self.node.send(message)
        self._arm_timeout(seq)
        return seq

    def _arm_timeout(self, seq: int) -> None:
        sim = self.node.simulator
        if sim is None:
            raise RuntimeError(
                f"node {self.node.node_id!r} is not attached to a simulator"
            )
        pending = self._pending[seq]
        delay = self.timeout_s * self.backoff_factor**pending.attempts
        if self.jitter_s > 0:
            delay += float(self.rng.uniform(0.0, self.jitter_s))
        sim.schedule(delay, lambda: self._on_timeout(seq))

    def _on_timeout(self, seq: int) -> None:
        pending = self._pending.get(seq)
        if pending is None:
            return  # acked in the meantime
        if pending.attempts >= self.max_retries:
            del self._pending[seq]
            self.gave_up += 1
            self._count(
                "network_give_ups_total",
                "Messages abandoned after exhausting their retry cap.",
            )
            message = pending.message
            if self.fault_log is not None:
                self.fault_log.fault(
                    self._now(),
                    "transport_give_up",
                    self.node.node_id,
                    f"{message.kind} seq={seq} to {message.recipient} "
                    f"after {pending.attempts + 1} attempts",
                )
            breaker = self._breaker(message.recipient)
            if breaker is not None:
                breaker.record_failure(self._now())
            if self.on_give_up is not None:
                self.on_give_up(message)
            return
        pending.attempts += 1
        self.retransmissions += 1
        self._count(
            "network_retransmissions_total",
            "Timeout-triggered message resends.",
        )
        self.is_retransmitting = True
        try:
            self.node.send(pending.message)
        finally:
            self.is_retransmitting = False
        self._arm_timeout(seq)

    def handle_ack(self, ack: Ack) -> bool:
        """Resolve a pending message; returns False for stale acks."""
        pending = self._pending.pop(ack.acked_seq, None)
        if pending is None:
            return False
        breaker = self._breaker(ack.sender)
        if breaker is not None:
            breaker.record_success(self._now())
        if self.telemetry is not None:
            from repro.telemetry.core import ACK_LATENCY_BUCKETS

            self.telemetry.registry.histogram(
                "network_ack_latency_seconds",
                "Simulated seconds from first transmission to ack.",
                labels=("node",),
                buckets=ACK_LATENCY_BUCKETS,
            ).observe(
                self._now() - pending.first_sent_at,
                node=self.node.node_id,
            )
        return True

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def accept(self, message: Message) -> bool:
        """Ack and deduplicate an incoming message.

        Returns True when the node should process the message, False
        for suppressed duplicates.  Unsequenced messages pass through
        without an ack.
        """
        if message.seq == UNSEQUENCED:
            return True
        self.node.send(
            Ack(
                sender=self.node.node_id,
                recipient=message.sender,
                acked_seq=message.seq,
                acked_kind=message.kind,
            )
        )
        self.acks_sent += 1
        seen = self._seen.setdefault(message.sender, set())
        if message.seq in seen:
            self.duplicates_dropped += 1
            self._count(
                "network_duplicates_total",
                "Received duplicates suppressed by sequence tracking.",
            )
            return False
        seen.add(message.seq)
        return True

"""Discrete-event simulator for the sensor network.

A minimal priority-queue event loop: callbacks are scheduled at
absolute times and executed in order; message delivery between nodes
is an event whose delay comes from the link's transfer time.  Nodes
register by id; delivery charges the sender's transmission energy.

Failure semantics (all opt-in; a simulator with no attached
:class:`~repro.faults.injector.FaultInjector`, no severed links and no
down nodes behaves exactly like the fault-free original):

* a *down* node neither transmits (radio off, no energy spent) nor
  receives — in-flight messages addressed to it are dropped on
  arrival;
* a *severed* link (:meth:`disconnect`) still lets the sender key up
  its radio — transmission energy is charged — but the message never
  arrives;
* an attached fault injector may drop or delay any transmission
  (lossy links, latency spikes).

Every undelivered message increments :attr:`dropped_messages`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.network.link import WirelessLink
from repro.network.messages import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.telemetry.core import Telemetry


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class EventSimulator:
    """Priority-queue discrete-event loop with message routing."""

    def __init__(self, telemetry: "Telemetry | None" = None) -> None:
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._nodes: dict[str, "Node"] = {}
        self._links: dict[tuple[str, str], WirelessLink] = {}
        self._severed: dict[tuple[str, str], WirelessLink] = {}
        self._down_nodes: set[str] = set()
        self.fault_injector: "FaultInjector | None" = None
        self.telemetry = telemetry
        self.delivered_messages = 0
        self.dropped_messages = 0
        self.transferred_bytes = 0
        # Instruments resolved once per simulator (per-send registry
        # lookups would dominate the telemetry cost).
        if telemetry is not None:
            from repro.telemetry.core import ACK_LATENCY_BUCKETS

            registry = telemetry.registry
            self._m_dropped = registry.counter(
                "network_messages_dropped_total",
                "Messages that never reached their recipient, by cause.",
                labels=("reason",),
            )
            self._m_sent = registry.counter(
                "network_messages_sent_total",
                "Messages keyed onto the radio, by message kind.",
                labels=("kind",),
            )
            self._m_bytes = registry.counter(
                "network_bytes_sent_total", "Payload bytes transmitted."
            )
            self._m_delivered = registry.counter(
                "network_messages_delivered_total",
                "Messages handed to their recipient, by message kind.",
                labels=("kind",),
            )
            self._m_latency = registry.histogram(
                "network_delivery_latency_seconds",
                "Link transfer time plus injected latency per delivery.",
                buckets=ACK_LATENCY_BUCKETS,
            )

    # ------------------------------------------------------------------
    # Telemetry (no-ops when no Telemetry is attached)
    # ------------------------------------------------------------------
    def _count_drop(self, reason: str) -> None:
        self.dropped_messages += 1
        if self.telemetry is not None:
            self._m_dropped.inc(reason=reason)

    def _count_send(self, message: Message, size: int) -> None:
        if self.telemetry is None:
            return
        self._m_sent.inc(kind=message.kind)
        self._m_bytes.inc(size)

    def _count_delivery(self, message: Message, latency_s: float) -> None:
        if self.telemetry is None:
            return
        self._m_delivered.inc(kind=message.kind)
        self._m_latency.observe(latency_s)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register_node(self, node: "Node") -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id!r} already registered")
        self._nodes[node.node_id] = node
        node.simulator = self

    def connect(
        self,
        node_a: str,
        node_b: str,
        link: WirelessLink | None = None,
        replace: bool = False,
    ) -> None:
        """Create a bidirectional link between two registered nodes.

        Connecting an already-linked pair raises unless ``replace=True``
        — silently swapping a link mid-run would invalidate in-flight
        transfer times without anyone noticing.
        """
        for node_id in (node_a, node_b):
            if node_id not in self._nodes:
                raise KeyError(f"node {node_id!r} not registered")
        pair = (node_a, node_b)
        if not replace and (
            pair in self._links or pair[::-1] in self._links
        ):
            raise ValueError(
                f"nodes {node_a!r} and {node_b!r} are already linked; "
                "pass replace=True to swap the link explicitly"
            )
        link = link or WirelessLink()
        self._links[pair] = link
        self._links[pair[::-1]] = link
        self._severed.pop(pair, None)
        self._severed.pop(pair[::-1], None)

    def disconnect(self, node_a: str, node_b: str) -> None:
        """Sever the link between two nodes (partition injection).

        The link object is remembered so sends into the partition can
        still be charged radio energy and :meth:`reconnect` can restore
        the exact same link parameters.
        """
        pair = (node_a, node_b)
        link = self._links.pop(pair, None) or self._links.pop(
            pair[::-1], None
        )
        self._links.pop(pair, None)
        self._links.pop(pair[::-1], None)
        if link is None:
            raise KeyError(f"no link between {node_a!r} and {node_b!r}")
        self._severed[pair] = link
        self._severed[pair[::-1]] = link

    def reconnect(self, node_a: str, node_b: str) -> None:
        """Restore a previously severed link."""
        pair = (node_a, node_b)
        link = self._severed.get(pair)
        if link is None:
            raise KeyError(
                f"no severed link between {node_a!r} and {node_b!r}"
            )
        self.connect(node_a, node_b, link, replace=True)

    def link_between(self, sender: str, recipient: str) -> WirelessLink:
        try:
            return self._links[(sender, recipient)]
        except KeyError:
            raise KeyError(
                f"no link between {sender!r} and {recipient!r}"
            ) from None

    def is_connected(self, node_a: str, node_b: str) -> bool:
        return (node_a, node_b) in self._links

    def node(self, node_id: str) -> "Node":
        return self._nodes[node_id]

    # ------------------------------------------------------------------
    # Node liveness
    # ------------------------------------------------------------------
    def set_node_down(self, node_id: str) -> None:
        """Mark a node crashed: it stops sending and receiving."""
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id!r} not registered")
        self._down_nodes.add(node_id)

    def set_node_up(self, node_id: str) -> None:
        """Bring a crashed node back."""
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id!r} not registered")
        self._down_nodes.discard(node_id)

    def is_node_down(self, node_id: str) -> bool:
        return node_id in self._down_nodes

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(
            self._queue, _Event(self._now + delay, next(self._seq), callback)
        )

    def send(self, message: Message) -> None:
        """Deliver a message over the connecting link.

        Charges the sender's radio energy immediately and schedules
        the recipient's ``receive`` after the transfer time.  The
        message is silently dropped (and counted) when the sender is
        down, the link is severed, the fault injector rules a loss, or
        the recipient is down at arrival time.
        """
        pair = (message.sender, message.recipient)
        severed = False
        link = self._links.get(pair)
        if link is None:
            link = self._severed.get(pair)
            severed = link is not None
        if link is None:
            raise KeyError(
                f"no link between {message.sender!r} and "
                f"{message.recipient!r}"
            )
        if message.sender in self._down_nodes:
            # A crashed node's radio is off: nothing leaves the antenna
            # and no transmission energy is spent.
            self._count_drop("sender_down")
            return
        sender = self._nodes[message.sender]
        recipient = self._nodes[message.recipient]
        size = message.size_bytes
        sender.on_transmit(size, link.transfer_energy(size))
        self.transferred_bytes += size
        self._count_send(message, size)

        extra_latency = 0.0
        loss = False
        corrupt = False
        if self.fault_injector is not None:
            verdict = self.fault_injector.on_send(message)
            loss = verdict.drop
            extra_latency = verdict.extra_latency_s
            corrupt = verdict.corrupt
        if severed or loss:
            self._count_drop("link_severed" if severed else "link_loss")
            return

        latency = link.transfer_time(size) + extra_latency

        def deliver(corrupt: bool = corrupt) -> None:
            if message.recipient in self._down_nodes:
                self._count_drop("recipient_down")
                return
            self.delivered_messages += 1
            self._count_delivery(message, latency)
            # The verdict is captured per delivery: a retransmission of
            # the same payload gets its own fresh ruling.
            message.corrupted = corrupt
            recipient.receive(message)

        self.schedule(latency, deliver)

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> int:
        """Drain the event queue; returns the number of events run."""
        executed = 0
        while self._queue and executed < max_events:
            if until is not None and self._queue[0].time > until:
                break
            event = heapq.heappop(self._queue)
            self._now = max(self._now, event.time)
            event.callback()
            executed += 1
        return executed


class Node:
    """Base network node; subclasses implement ``receive``."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.simulator: EventSimulator | None = None

    def send(self, message: Message) -> None:
        if self.simulator is None:
            raise RuntimeError(
                f"node {self.node_id!r} is not attached to a simulator"
            )
        self.simulator.send(message)

    def on_transmit(self, num_bytes: int, energy_joules: float) -> None:
        """Hook: sender-side accounting (default no-op)."""

    def receive(self, message: Message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

"""Discrete-event simulator for the sensor network.

A minimal priority-queue event loop: callbacks are scheduled at
absolute times and executed in order; message delivery between nodes
is an event whose delay comes from the link's transfer time.  Nodes
register by id; delivery charges the sender's transmission energy.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.network.link import WirelessLink
from repro.network.messages import Message


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class EventSimulator:
    """Priority-queue discrete-event loop with message routing."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._nodes: dict[str, "Node"] = {}
        self._links: dict[tuple[str, str], WirelessLink] = {}
        self.delivered_messages = 0
        self.transferred_bytes = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register_node(self, node: "Node") -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id!r} already registered")
        self._nodes[node.node_id] = node
        node.simulator = self

    def connect(
        self, node_a: str, node_b: str, link: WirelessLink | None = None
    ) -> None:
        """Create a bidirectional link between two registered nodes."""
        for node_id in (node_a, node_b):
            if node_id not in self._nodes:
                raise KeyError(f"node {node_id!r} not registered")
        link = link or WirelessLink()
        self._links[(node_a, node_b)] = link
        self._links[(node_b, node_a)] = link

    def link_between(self, sender: str, recipient: str) -> WirelessLink:
        try:
            return self._links[(sender, recipient)]
        except KeyError:
            raise KeyError(
                f"no link between {sender!r} and {recipient!r}"
            ) from None

    def node(self, node_id: str) -> "Node":
        return self._nodes[node_id]

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(
            self._queue, _Event(self._now + delay, next(self._seq), callback)
        )

    def send(self, message: Message) -> None:
        """Deliver a message over the connecting link.

        Charges the sender's radio energy immediately and schedules
        the recipient's ``receive`` after the transfer time.
        """
        link = self.link_between(message.sender, message.recipient)
        sender = self._nodes[message.sender]
        recipient = self._nodes[message.recipient]
        size = message.size_bytes
        sender.on_transmit(size, link.transfer_energy(size))
        self.transferred_bytes += size

        def deliver() -> None:
            self.delivered_messages += 1
            recipient.receive(message)

        self.schedule(link.transfer_time(size), deliver)

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> int:
        """Drain the event queue; returns the number of events run."""
        executed = 0
        while self._queue and executed < max_events:
            if until is not None and self._queue[0].time > until:
                break
            event = heapq.heappop(self._queue)
            self._now = max(self._now, event.time)
            event.callback()
            executed += 1
        return executed


class Node:
    """Base network node; subclasses implement ``receive``."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.simulator: EventSimulator | None = None

    def send(self, message: Message) -> None:
        if self.simulator is None:
            raise RuntimeError(
                f"node {self.node_id!r} is not attached to a simulator"
            )
        self.simulator.send(message)

    def on_transmit(self, num_bytes: int, energy_joules: float) -> None:
        """Hook: sender-side accounting (default no-op)."""

    def receive(self, message: Message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

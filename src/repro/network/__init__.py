"""Sensor-to-controller messaging substrate.

Models the wireless side of the paper's deployment (Fig. 2): camera
sensors upload frame features (~16 KB per frame), energy reports and
per-detection metadata (172 bytes per object); the controller replies
with algorithm assignments.  A small discrete-event simulator delivers
messages over links with finite bandwidth and per-byte radio energy,
so coordination overheads are accounted in both time and Joules.
"""

from repro.network.link import WirelessLink
from repro.network.messages import (
    AlgorithmAssignment,
    DetectionMetadata,
    EnergyReport,
    FeatureUpload,
    Message,
)
from repro.network.node import CameraSensorNode, ControllerNode, Node
from repro.network.simulator import EventSimulator

__all__ = [
    "WirelessLink",
    "AlgorithmAssignment",
    "DetectionMetadata",
    "EnergyReport",
    "FeatureUpload",
    "Message",
    "CameraSensorNode",
    "ControllerNode",
    "Node",
    "EventSimulator",
]

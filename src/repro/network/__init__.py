"""Sensor-to-controller messaging substrate.

Models the wireless side of the paper's deployment (Fig. 2): camera
sensors upload frame features (~16 KB per frame), energy reports and
per-detection metadata (172 bytes per object); the controller replies
with algorithm assignments.  A small discrete-event simulator delivers
messages over links with finite bandwidth and per-byte radio energy,
so coordination overheads are accounted in both time and Joules.
"""

from repro.network.link import WirelessLink
from repro.network.messages import (
    Ack,
    AlgorithmAssignment,
    DetectionMetadata,
    EnergyReport,
    FeatureUpload,
    Heartbeat,
    Message,
)
from repro.network.node import CameraSensorNode, ControllerNode, Node
from repro.network.reliability import ReliableTransport, node_seed
from repro.network.simulator import EventSimulator

__all__ = [
    "WirelessLink",
    "Ack",
    "AlgorithmAssignment",
    "DetectionMetadata",
    "EnergyReport",
    "FeatureUpload",
    "Heartbeat",
    "Message",
    "CameraSensorNode",
    "ControllerNode",
    "Node",
    "ReliableTransport",
    "node_seed",
    "EventSimulator",
]

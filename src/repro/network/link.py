"""Wireless link model.

Each camera-to-controller link has a bandwidth (measurable with
iPerf-style probing, as footnote 3 of the paper suggests), a latency,
and a per-byte transmission energy scaled by link quality.  Transfer
time and energy are what the event simulator charges when a message
crosses the link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.communication import WIFI_JOULES_PER_BYTE


@dataclass(frozen=True)
class WirelessLink:
    """Point-to-point link between a sensor and the controller.

    Attributes:
        bandwidth_bps: Achievable throughput in bits per second.
        latency_s: One-way propagation plus queueing latency.
        link_quality: >= 1; multiplies per-byte energy (weak links
            retransmit and rate-adapt downwards).
        joules_per_byte: Base radio energy per byte.
    """

    bandwidth_bps: float = 20e6
    latency_s: float = 0.005
    link_quality: float = 1.0
    joules_per_byte: float = WIFI_JOULES_PER_BYTE

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")
        if self.link_quality < 1.0:
            raise ValueError("link_quality must be >= 1")

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds to deliver ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.latency_s + 8.0 * num_bytes / self.bandwidth_bps

    def transfer_energy(self, num_bytes: int) -> float:
        """Sender-side Joules to deliver ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes * self.joules_per_byte * self.link_quality

    def estimate_bandwidth(self, probe_bytes: int, measured_s: float) -> float:
        """iPerf-style estimate: bits over measured transfer seconds."""
        if measured_s <= 0:
            raise ValueError("measured time must be positive")
        return 8.0 * probe_bytes / measured_s

"""Wall-clock timing of named code sections.

The runner wraps its phases (assessment, selection, detection,
re-identification) in :meth:`TimingReport.section` context managers;
the aggregated per-section totals back the CLI's ``--perf-report``
flag.  The aggregator is deliberately tiny — a dict of counters — so
leaving it enabled costs one ``perf_counter`` pair per section entry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class SectionStats:
    """Accumulated timing of one named section."""

    calls: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class TimingReport:
    """Per-section wall-clock aggregates."""

    def __init__(self) -> None:
        self._sections: dict[str, SectionStats] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    def record(self, name: str, seconds: float) -> None:
        """Add one timed call to a section's aggregate."""
        stats = self._sections.setdefault(name, SectionStats())
        stats.calls += 1
        stats.total_seconds += seconds

    def merge(self, other: "TimingReport") -> None:
        """Fold another report's aggregates into this one."""
        for name, stats in other.items():
            mine = self._sections.setdefault(name, SectionStats())
            mine.calls += stats.calls
            mine.total_seconds += stats.total_seconds

    def items(self) -> Iterator[tuple[str, SectionStats]]:
        """Iterate ``(name, stats)`` pairs — the public view consumed
        by :meth:`merge` and by the telemetry Tracer adapter.

        Yields copies, so callers cannot mutate the aggregates.
        """
        for name, stats in self._sections.items():
            yield name, SectionStats(
                calls=stats.calls, total_seconds=stats.total_seconds
            )

    @property
    def sections(self) -> dict[str, SectionStats]:
        return dict(self._sections)

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {
            name: {
                "calls": stats.calls,
                "total_seconds": stats.total_seconds,
                "mean_seconds": stats.mean_seconds,
            }
            for name, stats in self._sections.items()
        }

    def format_report(self) -> str:
        """Aligned text table, busiest section first."""
        if not self._sections:
            return "no timed sections"
        rows = sorted(
            self._sections.items(), key=lambda kv: -kv[1].total_seconds
        )
        name_width = max(len("section"), *(len(n) for n, _ in rows))
        header = (
            f"{'section':<{name_width}}  {'calls':>7}  "
            f"{'total (s)':>10}  {'mean (ms)':>10}"
        )
        lines = [header, "-" * len(header)]
        for name, stats in rows:
            lines.append(
                f"{name:<{name_width}}  {stats.calls:>7}  "
                f"{stats.total_seconds:>10.3f}  "
                f"{stats.mean_seconds * 1e3:>10.3f}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self._sections.clear()

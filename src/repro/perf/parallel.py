"""Chunked process-pool map with a serial fallback.

Per-camera detection work and independent experiment configurations
are embarrassingly parallel; :func:`parallel_map` fans them across a
``ProcessPoolExecutor`` while preserving input order, and degenerates
to a plain list comprehension when ``workers <= 1`` — the serial path
runs the exact same task function, so results are identical by
construction.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int = 1,
    chunksize: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    Args:
        fn: A picklable task function (module-level, not a closure).
        items: Task inputs; each must be picklable when ``workers > 1``.
        workers: Process count; ``<= 1`` runs serially in-process.
        chunksize: Tasks per pickled batch (default: spread items
            roughly four batches per worker).

    Returns:
        Results in input order, regardless of completion order.
    """
    materialised: Sequence[T] = (
        items if isinstance(items, Sequence) else list(items)
    )
    if workers <= 1 or len(materialised) <= 1:
        return [fn(item) for item in materialised]
    if chunksize is None:
        chunksize = max(1, len(materialised) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(fn, materialised, chunksize=chunksize))

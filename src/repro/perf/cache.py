"""Content-keyed memoisation of array-valued computations.

The controller recomputes the same calibration artifacts over and
over: every recalibration interval it rebuilds each training item's
PCA subspace and the geodesic-flow factors against the incoming
feature stack, even though the training stacks never change.  An
:class:`ArrayCache` keys those results on a digest of the *contents*
of the input arrays (dtype, shape and bytes), so identical inputs —
whether the same object or a fresh equal copy — hit the cache, and
any change to the data transparently misses.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np


def array_token(array: np.ndarray) -> str:
    """Digest of an array's dtype, shape and raw contents.

    Two arrays get the same token iff they are element-wise identical
    with the same dtype and shape; the token is therefore a safe memo
    key for any deterministic function of the array.
    """
    a = np.ascontiguousarray(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(a.dtype).encode())
    digest.update(str(a.shape).encode())
    digest.update(a.tobytes())
    return digest.hexdigest()


class ArrayCache:
    """LRU memo cache with hit/miss counters.

    Keys are arbitrary hashable tuples, typically built from
    :func:`array_token` digests plus scalar parameters.  Values are
    whatever the compute callback returns; callers must treat cached
    values as immutable (they are returned by reference).

    Attributes:
        hits: Number of :meth:`get_or_compute` calls served from the
            cache.
        misses: Number of calls that ran the compute callback.
        max_entries: Capacity; least-recently-used entries are evicted
            beyond it.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """The cached value for ``key``, computing it on first use."""
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._store[key] = value
            if len(self._store) > self.max_entries:
                self._store.popitem(last=False)
            return value
        self.hits += 1
        self._store.move_to_end(key)
        return value

    def stats(self) -> dict[str, int | float]:
        """Counters plus the hit rate, for reports and tests."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._store),
            "hit_rate": self.hits / total if total else 0.0,
        }

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

"""Performance layer: content-keyed caching, timing, parallel maps.

The hot paths of the reproduction — frame feature extraction, the
GFK calibration pipeline, and the per-camera frame loop — share this
package.  :mod:`repro.perf.cache` memoises expensive array-valued
computations (PCA subspaces, GFK factors) under content hashes of
their inputs; :mod:`repro.perf.timing` aggregates wall-clock time per
named section for the ``--perf-report`` CLI flag; and
:mod:`repro.perf.parallel` provides the chunked process-pool map used
by the runner and the experiment harness.
"""

from repro.perf.cache import ArrayCache, array_token
from repro.perf.parallel import parallel_map
from repro.perf.timing import TimingReport

__all__ = [
    "ArrayCache",
    "TimingReport",
    "array_token",
    "parallel_map",
]

"""The predictive wake-up coordination policy.

EECS assesses every camera every round: each assessment period, every
camera runs all affordable algorithms and uploads metadata, even if
the controller then leaves it out of the operating subset.  On quiet
cameras that standing assessment cost dominates the energy bill and
caps network lifetime.

``predictive`` keeps the EECS selection machinery intact but gates the
assessment itself with per-camera online regressors
(:mod:`repro.predictive`): a camera whose predicted activity falls
below the wake threshold sleeps through the round — no detection, no
upload, no energy — and a periodic probe bounds how stale its
regressor can get.  A warmup floor keeps every camera awake until its
regressor has observed enough rounds; with a warmup longer than the
run, the policy never skips and reproduces ``subset`` bit for bit
(the ``entropy_alias`` below shares subset's rng stream, exactly as
the hierarchical cell policy does at one cell).

Every wake/skip decision is emitted as a telemetry event
(``camera_wake`` / ``camera_skip``, see :mod:`repro.telemetry.schema`)
so a live dashboard can audit what the regressors are doing.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.controller import SelectionDecision
from repro.engine.policy import RoundPlan, SubsetPolicy, register_policy
from repro.predictive import (
    PredictiveConfig,
    PredictorBank,
    camera_activity,
    low_energy_algorithm,
)


@register_policy
class PredictivePolicy(SubsetPolicy):
    """EECS subset selection behind a learned wake-up gate."""

    name = "predictive"
    #: Warmup rounds (and every woken round) must reproduce subset's
    #: detections exactly, so the policy shares subset's rng stream.
    entropy_alias = "subset"
    enable_downgrade = False

    def __init__(self, config: PredictiveConfig | None = None) -> None:
        self.config = config or PredictiveConfig()
        self._bank: PredictorBank | None = None
        #: Consecutive rounds each camera has slept.
        self._sleep: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Round planning: subset's schedule, plus fresh per-run state
    # ------------------------------------------------------------------
    def plan_rounds(self, engine, records, budget, assignment):
        self._bank = PredictorBank(
            list(engine.dataset.camera_ids),
            forgetting=self.config.forgetting,
            seed=self.config.seed,
        )
        self._sleep = {c: 0 for c in engine.dataset.camera_ids}
        return super().plan_rounds(engine, records, budget, assignment)

    # ------------------------------------------------------------------
    # The wake-up gate
    # ------------------------------------------------------------------
    def refine_round(
        self, engine, round_plan: RoundPlan, round_index: int
    ) -> RoundPlan:
        config = self.config
        predictions: dict[str, float] = {}
        reasons: dict[str, str] = {}
        skips: list[str] = []
        for camera_id in engine.dataset.camera_ids:
            predictor = self._bank.predictor(camera_id)
            predicted = predictor.predict_next()
            if predicted is not None:
                predictions[camera_id] = predicted
            if not predictor.ready(config.predictor_warmup):
                reasons[camera_id] = "warmup"
            elif self._sleep[camera_id] + 1 >= config.probe_every:
                reasons[camera_id] = "probe"
            elif predicted < config.wake_threshold:
                skips.append(camera_id)
            else:
                reasons[camera_id] = "predicted_active"
        if (
            config.max_sleepers is not None
            and len(skips) > config.max_sleepers
        ):
            # Sleep rationing: only the cameras the regressors are most
            # confident about (lowest predicted activity) win the sleep
            # slots; the rest stay awake so fused coverage never loses
            # more than max_sleepers views at once.
            ranked = sorted(
                skips, key=lambda c: (predictions.get(c, 0.0), c)
            )
            for camera_id in ranked[config.max_sleepers :]:
                reasons[camera_id] = "rationed"
            skips = ranked[: config.max_sleepers]
        if skips and len(skips) == len(engine.dataset.camera_ids):
            # Never sleep the whole fleet: selection needs at least one
            # assessed camera.  Rescue the likeliest-active sleeper.
            rescued = max(
                skips, key=lambda c: (predictions.get(c, 0.0), c)
            )
            skips.remove(rescued)
            reasons[rescued] = "quorum"

        for camera_id in engine.dataset.camera_ids:
            if camera_id in reasons:
                self._sleep[camera_id] = 0
            else:
                self._sleep[camera_id] += 1
        if engine.telemetry is not None:
            for camera_id in engine.dataset.camera_ids:
                woken = camera_id in reasons
                engine.telemetry.event(
                    "camera_wake" if woken else "camera_skip",
                    time_s=engine.clock.now_s,
                    node_id=camera_id,
                    round=round_index,
                    predicted=predictions.get(camera_id),
                    threshold=config.wake_threshold,
                    reason=reasons.get(camera_id, "predicted_idle"),
                )
        if not skips:
            return round_plan
        return replace(round_plan, skip_cameras=tuple(sorted(skips)))

    # ------------------------------------------------------------------
    # Selection: subset's decision, plus observation and low-energy
    # ------------------------------------------------------------------
    def select(self, engine, assessment, budget_overrides, meter=None):
        decision = super().select(
            engine, assessment, budget_overrides, meter
        )
        # Feed the regressors first (observation uses the *assessed*
        # activity), so the low-energy gate below sees fresh
        # predictions for the round's operational tail.
        for camera_id in assessment.camera_ids:
            observation = camera_activity(assessment, camera_id)
            if observation is not None:
                self._bank.predictor(camera_id).observe(*observation)
        if self.config.low_energy_below is not None:
            decision = self._apply_low_energy(
                engine, assessment, decision, budget_overrides
            )
        return decision

    def _apply_low_energy(
        self, engine, assessment, decision, budget_overrides
    ) -> SelectionDecision:
        """Pin marginally-active woken cameras to their cheapest
        affordable detector (the PCA-RECT-style companion profile)."""
        threshold = self.config.low_energy_below
        assignment = dict(decision.assignment)
        rewrites: list[tuple[str, str, str, float]] = []
        for camera_id, algorithm in assignment.items():
            predictor = self._bank.predictor(camera_id)
            if not predictor.ready(self.config.predictor_warmup):
                continue
            predicted = predictor.predict_next()
            if predicted is None or predicted >= threshold:
                continue
            override = (
                budget_overrides.get(camera_id)
                if budget_overrides is not None
                else None
            )
            plan = engine.controller.camera_plan(camera_id, override)
            if plan is None:
                continue
            cheap = low_energy_algorithm(
                plan.item,
                plan.budget,
                plan.communication_cost,
                set(assessment.algorithms_for(camera_id)),
            )
            if cheap is not None and cheap != algorithm:
                rewrites.append((camera_id, algorithm, cheap, predicted))
        if not rewrites:
            return decision
        for camera_id, _, cheap, _ in rewrites:
            assignment[camera_id] = cheap
        achieved = engine.controller.engine.global_accuracy(
            assessment, assignment
        )
        if engine.telemetry is not None:
            for camera_id, previous, cheap, predicted in rewrites:
                engine.telemetry.event(
                    "camera_low_energy",
                    time_s=engine.clock.now_s,
                    node_id=camera_id,
                    predicted=predicted,
                    threshold=threshold,
                    previous=previous,
                    algorithm=cheap,
                )
        return replace(
            decision, assignment=assignment, achieved=achieved
        )

    # ------------------------------------------------------------------
    # Checkpoint participation
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict | None:
        if self._bank is None:
            return None
        return {
            "version": 1,
            "sleep": dict(self._sleep),
            "bank": self._bank.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        bank_state = state["bank"]
        if self._bank is None:
            self._bank = PredictorBank(
                list(bank_state),
                forgetting=self.config.forgetting,
                seed=self.config.seed,
            )
        self._bank.restore(bank_state)
        self._sleep = {
            camera_id: int(count)
            for camera_id, count in state["sleep"].items()
        }

    def config_fingerprint(self) -> dict | None:
        return self.config.to_dict()

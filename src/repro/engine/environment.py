"""Execution environments: where a deployment engine's fleet runs.

The engine knows the EECS protocol; an :class:`Environment` decides
the conditions under which the trained fleet executes it:

* :class:`IdealEnvironment` — the in-process frame loop: every frame
  arrives, every message is delivered, the only costs are the modelled
  processing and communication energy.  Produces a
  :class:`~repro.engine.core.RunResult`.
* :class:`FaultInjectedEnvironment` — the discrete-event network:
  reliable transport, heartbeats, liveness tracking, with a
  :class:`~repro.faults.plan.FaultPlan` injecting packet loss and
  camera crashes.  Produces a :class:`NetworkOutcome` measured on what
  the controller actually received.

Both environments read the same shared engine (library, matcher,
detectors, energy model) and provision their own controller and
batteries through :meth:`~repro.engine.core.DeploymentEngine.build_controller`,
so a trained engine stays pristine across deployments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.checkpoint.codec import (
    fault_event_to_dict,
    rng_state_to_dict,
    verify_event_prefix,
)
from repro.checkpoint.hooks import CheckpointConfig, RunCheckpointer
from repro.checkpoint.store import CheckpointError
from repro.datasets.groundtruth import persons_in_any_view
from repro.engine.core import DeploymentEngine, RunResult, count_true_detections
from repro.faults.events import FaultEvent, RecoveryEvent
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.network.node import CameraSensorNode, ControllerNode
from repro.network.simulator import EventSimulator
from repro.resilience.ladder import ResilienceConfig, build_coordinator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.policy import CoordinationPolicy
    from repro.telemetry.core import Telemetry


class Environment(ABC):
    """Conditions under which an engine deploys its fleet."""

    @abstractmethod
    def execute(self, engine: DeploymentEngine):
        """Run one deployment of ``engine`` in this environment."""


@dataclass
class IdealEnvironment(Environment):
    """The idealised in-process frame feed (no network, no faults)."""

    policy: "CoordinationPolicy | str" = "full"
    budget: float | None = None
    assignment: dict[str, str] | None = None
    start: int | None = None
    end: int | None = None
    workers: int | None = None

    def execute(self, engine: DeploymentEngine) -> RunResult:
        return engine.run(
            self.policy,
            budget=self.budget,
            assignment=self.assignment,
            start=self.start,
            end=self.end,
            workers=self.workers,
        )


@dataclass(frozen=True)
class NetworkConditions:
    """The resolved parameters of one fault-injected deployment.

    A concrete description — the fault plan is already built — so the
    environment depends only on the engine, not on experiment-level
    spec types.

    Attributes:
        plan: The fault plan to inject (loss model plus crashes).
        start: First dataset frame of the deployment window.
        num_frames: Ground-truth frames in the window; the first
            ``assessment_frames`` feed the assessment round.
        assessment_frames: Frames per accuracy assessment.
        budget: Per-frame energy budget applied to every camera.
        seconds_per_frame: Operational cadence.
        heartbeat_s: Camera liveness beacon interval.
        miss_threshold: Heartbeats missed before a camera is declared
            dead.
        assessment_timeout_s: Deadline for closing an assessment round
            on partial data.
        horizon_s: Simulated duration of the deployment.
        seed / loss_rate / crash_count: Provenance, recorded on the
            run span for traceability.
        resilience: Graceful-degradation configuration; ``None`` (or
            ``enabled=False``) deploys without the resilience layer —
            the bit-identical legacy behavior.
    """

    plan: FaultPlan
    start: int
    num_frames: int
    assessment_frames: int
    budget: float
    seconds_per_frame: float
    heartbeat_s: float
    miss_threshold: int
    assessment_timeout_s: float
    horizon_s: float
    seed: int = 0
    loss_rate: float = 0.0
    crash_count: int = 0
    resilience: ResilienceConfig | None = None


@dataclass
class NetworkOutcome:
    """What a networked deployment measured.

    Experiment-level wrappers (``ChaosResult``) combine this with the
    spec that produced it.
    """

    humans_detected: int
    humans_present: int
    delivered_messages: int
    dropped_messages: int
    retransmissions: int
    gave_up: int
    duplicates_dropped: int
    suppressed_sends: int
    battery_by_camera: dict[str, float]
    num_decisions: int
    final_assignment: dict[str, str]
    fault_events: list[FaultEvent] = field(default_factory=list)
    recovery_events: list[RecoveryEvent] = field(default_factory=list)
    simulated_s: float = 0.0
    corrupted_received: int = 0
    breaker_blocked: int = 0
    camera_modes: dict[str, str] = field(default_factory=dict)


def _verify_chaos_replay(recorded: dict, sim, injector) -> None:
    """Prove a replayed chaos run retraced the checkpointed trajectory.

    Seeded replay is only a valid resume if it reproduces what the
    crashed process already observed: the recorded fault and recovery
    events must be an exact prefix of the replayed logs, and the
    replay must have advanced at least as far as the checkpoint.
    """
    try:
        verify_event_prefix(
            recorded.get("fault_events", []), injector.log.faults, "fault"
        )
        verify_event_prefix(
            recorded.get("recovery_events", []),
            injector.log.recoveries,
            "recovery",
        )
    except ValueError as exc:
        raise CheckpointError(str(exc)) from exc
    if recorded["sim_now"] > sim.now + 1e-9:
        raise CheckpointError(
            f"replayed run ended at t={sim.now} s but the checkpoint "
            f"was taken at t={recorded['sim_now']} s: the resumed run "
            f"did not reach the checkpointed progress"
        )
    marker = recorded.get("injector", {})
    replayed = injector.position()
    diverged = {
        key: (value, replayed[key])
        for key, value in marker.items()
        if replayed.get(key, 0) < value
    }
    if diverged:
        raise CheckpointError(
            "replayed fault-injector position fell short of the "
            f"checkpoint: {diverged} (recorded, replayed)"
        )


@dataclass
class FaultInjectedEnvironment(Environment):
    """The discrete-event network with injected faults.

    Deploys the engine's trained fleet over
    :class:`~repro.network.simulator.EventSimulator` — lossy links
    force retransmissions (paid in Joules), crashed cameras go silent
    until the controller declares them dead and re-selects over the
    survivors — and measures accuracy on the metadata the controller
    actually received.

    With a :class:`~repro.telemetry.core.Telemetry` attached, the run
    emits the full observability surface — network/energy/controller
    metrics, a run → round → phase → camera-op span tree, and
    structured events mirroring the fault log — without perturbing any
    rng stream: the faulty trajectory is bit-identical either way.

    With a :class:`~repro.checkpoint.hooks.CheckpointConfig` attached,
    the run snapshots a *progress marker* (simulated time, message and
    fault-log counters, injector rng state, battery totals) every ``K``
    frame ticks.  The event queue itself — closures over live node
    state — is not serialisable, so a resumed chaos run continues by
    **deterministic replay**: every stream is seeded, so re-executing
    from ``t = 0`` retraces the checkpointed trajectory exactly, and
    the environment verifies that by checking the recorded fault and
    recovery logs are a prefix of the replayed ones (a mismatch raises
    :class:`~repro.checkpoint.store.CheckpointError`).  Checkpoint
    ticks never draw from any rng and never mutate simulator state, so
    a checkpointed run is bit-identical to an unobserved one.
    """

    conditions: NetworkConditions
    telemetry: "Telemetry | None" = None
    checkpoint: CheckpointConfig | None = None

    def execute(self, engine: DeploymentEngine) -> NetworkOutcome:
        conditions = self.conditions
        telemetry = self.telemetry
        dataset = engine.dataset
        end = conditions.start + conditions.num_frames * dataset.spec.gt_every
        records = dataset.frames(
            conditions.start, end, only_ground_truth=True
        )
        records = records[: conditions.num_frames]

        sim = EventSimulator(telemetry=telemetry)
        controller = engine.build_controller(
            telemetry=telemetry, now_fn=lambda: sim.now
        )

        injector = FaultInjector(conditions.plan)
        if telemetry is not None:
            telemetry.attach_fault_log(injector.log)
        coordinator = build_coordinator(
            conditions.resilience,
            dataset.camera_ids,
            fault_log=injector.log,
        )
        controller_node = ControllerNode(
            "controller",
            controller,
            assessment_frames=conditions.assessment_frames,
            budget=conditions.budget,
            reliable=True,
            fault_log=injector.log,
            telemetry=telemetry,
            resilience=coordinator,
        )
        sim.register_node(controller_node)

        cameras: dict[str, CameraSensorNode] = {}
        for camera_id in dataset.camera_ids:
            item = engine.library.get(f"T-{camera_id}")
            node = CameraSensorNode(
                node_id=camera_id,
                controller_id="controller",
                observations=[r.observation(camera_id) for r in records],
                detectors=engine.detectors,
                thresholds={
                    n: p.threshold for n, p in item.profiles.items()
                },
                energy_model=engine.energy_model,
                reliable=True,
                telemetry=telemetry,
                fault_log=injector.log,
            )
            cameras[camera_id] = node
            sim.register_node(node)
            sim.connect(camera_id, "controller")
        injector.attach(sim)

        checkpointer = (
            RunCheckpointer(self.checkpoint)
            if self.checkpoint is not None
            else None
        )
        resume_state = None
        if checkpointer is not None:
            resume_state = checkpointer.begin(
                "chaos",
                {
                    "dataset": dataset.spec.name,
                    "plan": conditions.plan.to_dict(),
                    "start": conditions.start,
                    "num_frames": conditions.num_frames,
                    "assessment_frames": conditions.assessment_frames,
                    "budget": conditions.budget,
                    "seconds_per_frame": conditions.seconds_per_frame,
                    "heartbeat_s": conditions.heartbeat_s,
                    "miss_threshold": conditions.miss_threshold,
                    "assessment_timeout_s": conditions.assessment_timeout_s,
                    "horizon_s": conditions.horizon_s,
                    "seed": conditions.seed,
                },
            )
            if resume_state is not None and telemetry is not None:
                # Chaos resumes by seeded replay from t = 0, which
                # re-emits every tick's flush; truncate the stream so
                # the replay rebuilds it without duplicates.
                telemetry.prepare_resume(0)

        def _flush_tick(tick: int) -> None:
            # Live flush *before* the checkpoint callback on the same
            # tick, so a crash after the save finds every covered tick
            # already streamed (same ordering the run loop uses).
            if coordinator is not None and telemetry.live_enabled:
                coordinator.record_metrics(telemetry)
            telemetry.flush_round(tick, sim.now)

        def _progress() -> dict:
            # Replay markers, not resumable state: what a seeded
            # re-execution must reproduce to prove it is the same
            # trajectory.  The metrics snapshot rides along for
            # operators; replay regenerates telemetry from scratch, so
            # it is never merged back.
            state = {
                "sim_now": sim.now,
                "delivered_messages": sim.delivered_messages,
                "dropped_messages": sim.dropped_messages,
                "injector": injector.position(),
                "injector_rng": rng_state_to_dict(injector.rng),
                "fault_events": [
                    fault_event_to_dict(e) for e in injector.log.faults
                ],
                "recovery_events": [
                    fault_event_to_dict(e) for e in injector.log.recoveries
                ],
                "battery_by_camera": {
                    camera_id: node.battery.consumed
                    for camera_id, node in cameras.items()
                },
                "num_decisions": len(controller_node.decisions),
                "operational_metadata": len(
                    controller_node.operational_metadata
                ),
            }
            if coordinator is not None:
                # Informational (resume is by seeded replay, which
                # rebuilds this state; ladder transitions join the
                # fault-event prefix verification above).
                state["resilience"] = coordinator.snapshot()
            if telemetry is not None:
                state["metrics"] = telemetry.registry.snapshot()
            return state

        run_span = (
            telemetry.tracer.begin(
                "run",
                mode="chaos",
                seed=conditions.seed,
                loss_rate=conditions.loss_rate,
                crash_count=conditions.crash_count,
                frames=conditions.num_frames,
            )
            if telemetry is not None
            else None
        )
        try:
            horizon = conditions.horizon_s
            for node in cameras.values():
                node.start()
                node.start_heartbeats(conditions.heartbeat_s, until=horizon)
                node.start_operation(
                    conditions.seconds_per_frame, until=horizon
                )
            controller_node.enable_liveness(
                conditions.heartbeat_s,
                miss_threshold=conditions.miss_threshold,
                until=horizon,
            )

            camera_algorithms = {}
            for camera_id in dataset.camera_ids:
                cam_plan = controller.camera_plan(
                    camera_id, conditions.budget
                )
                if cam_plan is None:
                    continue
                camera_algorithms[camera_id] = sorted(
                    p.algorithm
                    for p in cam_plan.item.profiles.values()
                    if p.energy_per_frame + cam_plan.communication_cost
                    <= cam_plan.budget
                )
            controller_node.start_assessment(
                camera_algorithms, timeout_s=conditions.assessment_timeout_s
            )

            if checkpointer is not None or telemetry is not None:
                spf = conditions.seconds_per_frame
                total_ticks = max(1, int(horizon / spf))

                def _tick(t: int) -> None:
                    if telemetry is not None:
                        _flush_tick(t)
                    if checkpointer is not None:
                        checkpointer.unit_complete(
                            t, total_ticks, _progress
                        )

                for tick in range(total_ticks):
                    sim.schedule(
                        (tick + 1) * spf - sim.now,
                        lambda t=tick: _tick(t),
                    )

            sim.run(until=horizon + conditions.seconds_per_frame)
        finally:
            if checkpointer is not None:
                checkpointer.finish()
            if telemetry is not None:
                controller_node.close_telemetry()
                telemetry.tracer.end(run_span, simulated_s=sim.now)

        if resume_state is not None:
            _verify_chaos_replay(resume_state, sim, injector)

        # Accuracy over the operational window, measured on what the
        # controller actually received: metadata from crashed cameras
        # or lost beyond the retry cap never arrives, and that is the
        # point.
        by_frame: dict[int, list] = {}
        for metadata in controller_node.operational_metadata:
            by_frame.setdefault(metadata.frame_index, []).extend(
                metadata.detections
            )
        detected_total = 0
        present_total = 0
        for idx, record in enumerate(records):
            if idx < conditions.assessment_frames:
                continue
            present = persons_in_any_view(record.observations)
            present_total += len(present)
            groups = engine.matcher.group(
                by_frame.get(record.frame_index, [])
            )
            detected_total += count_true_detections(groups, present)

        transports = [controller_node.transport] + [
            c.transport for c in cameras.values()
        ]
        return NetworkOutcome(
            humans_detected=detected_total,
            humans_present=present_total,
            delivered_messages=sim.delivered_messages,
            dropped_messages=sim.dropped_messages,
            retransmissions=sum(t.retransmissions for t in transports),
            gave_up=sum(t.gave_up for t in transports),
            duplicates_dropped=sum(t.duplicates_dropped for t in transports),
            suppressed_sends=sum(
                c.suppressed_sends for c in cameras.values()
            ),
            battery_by_camera={
                camera_id: node.battery.consumed
                for camera_id, node in cameras.items()
            },
            num_decisions=len(controller_node.decisions),
            final_assignment=(
                dict(controller_node.decisions[-1].assignment)
                if controller_node.decisions
                else {}
            ),
            fault_events=list(injector.log.faults),
            recovery_events=list(injector.log.recoveries),
            simulated_s=sim.now,
            corrupted_received=controller_node.corrupted_received
            + sum(c.corrupted_received for c in cameras.values()),
            breaker_blocked=sum(
                t.breaker_blocked for t in transports if t is not None
            ),
            camera_modes=(
                dict(coordinator.modes) if coordinator is not None else {}
            ),
        )

"""The trained substrate a deployment engine runs on.

Offline training (profiling every algorithm on every camera's training
segment, Section IV-A) and colour-metric fitting are the expensive,
deterministic part of building a deployment: ~seconds per dataset,
identical for every run that shares a training seed.  A
:class:`DeploymentContext` bundles those artefacts — dataset, config,
detectors, training library, re-identification matcher, energy model —
as an immutable unit that any number of engines can share.

:func:`shared_context` is the engine-owned construction cache that
replaced the old module-level runner cache in
``repro.experiments.harness``: contexts are safe to share because they
hold no per-run state (controllers, batteries, meters and rng streams
are built fresh per engine), so repeated specs can no longer leak
state across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import (
    TrainingItem,
    TrainingLibrary,
    profile_algorithm,
)
from repro.core.config import EECSConfig
from repro.datasets.groundtruth import ground_truth_boxes
from repro.datasets.synthetic import SyntheticDataset
from repro.detection.base import Detector
from repro.detection.detectors import make_detector_suite
from repro.energy.model import ProcessingEnergyModel
from repro.perf.timing import TimingReport
from repro.reid.mahalanobis import MahalanobisMetric
from repro.reid.matcher import CrossCameraMatcher

#: Seed base for shared contexts, matching the historical harness
#: convention (dataset N trains from ``2017 + N``).
DEFAULT_TRAIN_SEED_BASE = 2017


def offline_train_camera(
    dataset: SyntheticDataset,
    camera_id: str,
    detectors: dict[str, Detector],
    energy_model: ProcessingEnergyModel,
    rng: np.random.Generator,
    item_name: str | None = None,
) -> TrainingItem:
    """Profile every algorithm on one camera's training segment."""
    segment = dataset.training_segment()
    profiles = {}
    for name, detector in detectors.items():
        frames = []
        for record in segment.frames:
            observation = record.observation(camera_id)
            detections = detector.detect(observation, rng)
            frames.append((detections, ground_truth_boxes(observation)))
        profiles[name] = profile_algorithm(
            detector, frames, item_name or f"T-{camera_id}", energy_model
        )
    return TrainingItem(
        name=item_name or f"T-{camera_id}", profiles=profiles
    )


def build_training_library(
    dataset: SyntheticDataset,
    detectors: dict[str, Detector],
    rng: np.random.Generator,
) -> TrainingLibrary:
    """Offline training over all of a dataset's cameras."""
    env = dataset.environment
    energy_model = ProcessingEnergyModel(width=env.width, height=env.height)
    library = TrainingLibrary()
    for camera_id in dataset.camera_ids:
        library.add(
            offline_train_camera(
                dataset, camera_id, detectors, energy_model, rng
            )
        )
    return library


def fit_color_metric(
    dataset: SyntheticDataset,
    detectors: dict[str, Detector],
    rng: np.random.Generator,
    num_frames: int = 8,
) -> MahalanobisMetric:
    """Fit the re-identification colour metric on training detections."""
    segment = dataset.training_segment()
    samples = []
    any_detector = next(iter(detectors.values()))
    for record in segment.frames[:num_frames]:
        for camera_id in dataset.camera_ids:
            observation = record.observation(camera_id)
            for det in any_detector.detect(observation, rng):
                samples.append(det.color_feature)
    if len(samples) < 2:
        raise RuntimeError("too few detections to fit the colour metric")
    return MahalanobisMetric(n_components=None, shrinkage=0.2).fit(
        np.stack(samples)
    )


@dataclass
class DeploymentContext:
    """Immutable trained artefacts shared by engines on one dataset."""

    dataset: SyntheticDataset
    config: EECSConfig
    detectors: dict[str, Detector]
    library: TrainingLibrary
    matcher: CrossCameraMatcher
    energy_model: ProcessingEnergyModel

    @classmethod
    def build(
        cls,
        dataset: SyntheticDataset,
        config: EECSConfig | None = None,
        detectors: dict[str, Detector] | None = None,
        library: TrainingLibrary | None = None,
        rng: np.random.Generator | None = None,
        timing: TimingReport | None = None,
    ) -> "DeploymentContext":
        """Train (or adopt) everything a deployment needs.

        The draw order on ``rng`` — training first, colour metric
        second — is load-bearing: it reproduces the historical runner
        construction bit for bit.
        """
        config = config or EECSConfig()
        rng = rng if rng is not None else np.random.default_rng(2017)
        timing = timing if timing is not None else TimingReport()
        env = dataset.environment
        detectors = detectors or make_detector_suite(env)
        energy_model = ProcessingEnergyModel(
            width=env.width, height=env.height
        )
        if library is None:
            with timing.section("offline_training"):
                library = build_training_library(dataset, detectors, rng)
        color_metric = fit_color_metric(dataset, detectors, rng)
        matcher = CrossCameraMatcher(
            image_to_ground=dataset.ground_homographies(),
            ground_radius=config.ground_radius_m,
            color_metric=color_metric,
            color_threshold=config.color_threshold,
        )
        return cls(
            dataset=dataset,
            config=config,
            detectors=detectors,
            library=library,
            matcher=matcher,
            energy_model=energy_model,
        )


_CONTEXTS: dict[tuple, DeploymentContext] = {}


def shared_context(
    dataset_number: int,
    config: EECSConfig | None = None,
    train_seed: int | None = None,
    timing: TimingReport | None = None,
) -> DeploymentContext:
    """The engine-owned shared context for a dataset (trained once per
    process and per (dataset, config, seed) combination).

    Contexts are immutable, so sharing is safe; everything mutable is
    per-engine.  ``timing`` only observes a cache miss's training cost.
    """
    if train_seed is None:
        train_seed = DEFAULT_TRAIN_SEED_BASE + dataset_number
    key = (dataset_number, train_seed, config)
    if key not in _CONTEXTS:
        from repro.datasets.synthetic import make_dataset

        _CONTEXTS[key] = DeploymentContext.build(
            make_dataset(dataset_number),
            config=config,
            rng=np.random.default_rng(train_seed),
            timing=timing,
        )
    return _CONTEXTS[key]


def clear_shared_contexts() -> None:
    """Testing hook: drop every cached context."""
    _CONTEXTS.clear()

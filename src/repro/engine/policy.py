"""Coordination policies: who runs what, decided how.

The paper evaluates four coordination strategies (Section VI-E): the
all-best baseline, EECS camera-subset selection, full EECS with
algorithm downgrade, and static caller-supplied assignments.  Each is
a :class:`CoordinationPolicy`: it partitions the deployment window
into rounds (:class:`RoundPlan`) and, for assessing policies, turns an
assessment period's metadata into a
:class:`~repro.core.controller.SelectionDecision`.

The engine never branches on policy names — adding a strategy is a new
subclass plus :func:`register_policy`; the engine's phase loop and
both execution environments pick it up unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from repro.core.controller import SelectionDecision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.selection import AssessmentData
    from repro.datasets.base import FrameRecord
    from repro.energy.meter import EnergyMeter
    from repro.engine.core import DeploymentEngine


@dataclass(frozen=True)
class RoundPlan:
    """One scheduling unit of a deployment.

    Attributes:
        records: The round's ground-truth frames, in order.
        assess_count: How many leading frames feed the accuracy
            assessment (0 for non-assessing policies: the whole round
            is operational).
        static_assignments: Per-record camera->algorithm maps for
            rounds that operate without a selection decision; ``None``
            when the assignment comes from :meth:`CoordinationPolicy.select`.
        skip_cameras: Cameras excluded from this round's assessment —
            they run nothing, upload nothing and are charged nothing.
            Normally empty; the ``predictive`` policy's
            :meth:`CoordinationPolicy.refine_round` fills it with the
            cameras its regressors predict idle.
    """

    records: list["FrameRecord"]
    assess_count: int = 0
    static_assignments: list[dict[str, str]] | None = None
    skip_cameras: tuple[str, ...] = ()


class CoordinationPolicy(ABC):
    """Strategy for scheduling assessment and choosing assignments."""

    #: Registry key; also feeds the run entropy (via
    #: :meth:`entropy_token`) and ``RunResult.mode``, so renaming a
    #: policy changes its rng stream.
    name: ClassVar[str]

    #: Policy whose rng stream this one shares; ``None`` means the
    #: policy has its own stream keyed by :attr:`name`.  A policy that
    #: must reproduce another policy's detections exactly — the
    #: hierarchical ``cell`` policy collapses to flat ``subset`` at one
    #: cell — aliases that policy's entropy instead of forking a new
    #: stream.
    entropy_alias: ClassVar[str | None] = None

    #: Whether :meth:`plan_rounds` needs a caller-supplied assignment.
    requires_assignment: ClassVar[bool] = False

    #: Whether selection may downgrade algorithms (Section IV-B.4).
    enable_downgrade: ClassVar[bool] = False

    def entropy_token(self) -> int:
        """The policy's contribution to the run entropy."""
        return sum((self.entropy_alias or self.name).encode())

    def validate(self, assignment: dict[str, str] | None) -> None:
        """Reject configurations the policy cannot run."""
        if self.requires_assignment and not assignment:
            raise ValueError(
                f"policy {self.name!r} needs an explicit assignment"
            )

    @abstractmethod
    def plan_rounds(
        self,
        engine: "DeploymentEngine",
        records: list["FrameRecord"],
        budget: float | None,
        assignment: dict[str, str] | None,
    ) -> list[RoundPlan]:
        """Partition the deployment window into rounds."""

    def refine_round(
        self,
        engine: "DeploymentEngine",
        round_plan: RoundPlan,
        round_index: int,
    ) -> RoundPlan:
        """Last-moment adjustment of one round, at its start.

        Called by the engine at every assessed round boundary (after
        the clock has advanced to the round's first frame, before any
        detection runs).  A policy that schedules per-round — the
        ``predictive`` policy fills :attr:`RoundPlan.skip_cameras`
        from its regressors here — returns an adjusted plan; it must
        preserve ``records`` and ``assess_count`` (the phase schedule
        belongs to :meth:`plan_rounds`).  The default is the identity.
        """
        return round_plan

    def snapshot_state(self) -> dict | None:
        """Per-run mutable policy state as exact JSON values.

        ``None`` (the default for stateless policies) keeps the
        checkpoint payload unchanged, so pre-existing checkpoints and
        their fingerprints are untouched.  Stateful policies — the
        ``predictive`` policy snapshots its regressor bank and sleep
        counters — return a dict that :meth:`restore_state` can adopt
        bit for bit.
        """
        return None

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`snapshot_state` payload (default: no-op)."""

    def config_fingerprint(self) -> dict | None:
        """Configuration that must match for a checkpoint resume.

        ``None`` (the default) adds nothing to the checkpoint
        fingerprint; policies whose tunables change the trajectory
        (wake thresholds, warmup) return them here so a resume under a
        different configuration is refused instead of silently
        diverging.
        """
        return None

    def select(
        self,
        engine: "DeploymentEngine",
        assessment: "AssessmentData",
        budget_overrides: dict[str, float] | None,
        meter: "EnergyMeter | None" = None,
    ) -> SelectionDecision:
        """Turn assessment metadata into the round's assignment.

        ``meter`` is the run's energy meter: policies whose selection
        itself costs radio energy (cell-coordinator messaging, peer
        negotiation) charge it here; the paper's centralised policies
        ignore it.
        """
        raise NotImplementedError(
            f"policy {self.name!r} does not assess"
        )  # pragma: no cover - non-assessing policies plan assess_count=0


_REGISTRY: dict[str, type[CoordinationPolicy]] = {}


def register_policy(
    cls: type[CoordinationPolicy],
) -> type[CoordinationPolicy]:
    """Class decorator: make a policy constructible by name."""
    _REGISTRY[cls.name] = cls
    return cls


def available_policies() -> tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_REGISTRY))


def validate_policy_name(name: str) -> None:
    """Raise a ``ValueError`` listing valid policies for bad names."""
    if name not in _REGISTRY:
        valid = ", ".join(repr(n) for n in available_policies())
        raise ValueError(
            f"unknown policy {name!r}; valid policies are {valid}"
        )


def resolve_policy(policy: "CoordinationPolicy | str") -> CoordinationPolicy:
    """An instance from a name (or pass an instance through)."""
    if isinstance(policy, CoordinationPolicy):
        return policy
    validate_policy_name(policy)
    return _REGISTRY[policy]()


@register_policy
class FixedAssignmentPolicy(CoordinationPolicy):
    """A caller-supplied static camera->algorithm map, no assessment
    (the Fig. 4 trade-off points)."""

    name = "fixed"
    requires_assignment = True

    def plan_rounds(self, engine, records, budget, assignment):
        return [
            RoundPlan(
                records=records,
                static_assignments=[assignment] * len(records),
            )
        ]


@register_policy
class AllBestPolicy(CoordinationPolicy):
    """Every camera on its most accurate affordable algorithm every
    frame (the paper's baseline, left bars of Fig. 5)."""

    name = "all_best"

    def plan_rounds(self, engine, records, budget, assignment):
        return [
            RoundPlan(
                records=records,
                static_assignments=[
                    engine.all_best_assignment(budget) for _ in records
                ],
            )
        ]


@register_policy
class SubsetPolicy(CoordinationPolicy):
    """EECS camera-subset selection with best algorithms kept
    (the middle bars of Fig. 5)."""

    name = "subset"
    enable_downgrade = False

    def plan_rounds(self, engine, records, budget, assignment):
        per_round = engine.gt_frames_per_round
        per_assessment = engine.gt_frames_per_assessment
        return [
            RoundPlan(
                records=records[start : start + per_round],
                assess_count=per_assessment,
            )
            for start in range(0, len(records), per_round)
        ]

    def select(self, engine, assessment, budget_overrides, meter=None):
        return engine.controller.select(
            assessment,
            enable_subset=True,
            enable_downgrade=self.enable_downgrade,
            budget_overrides=budget_overrides,
        )


@register_policy
class FullEECSPolicy(SubsetPolicy):
    """Subset selection plus algorithm downgrade (right bars of
    Fig. 5): the paper's full protocol."""

    name = "full"
    enable_downgrade = True

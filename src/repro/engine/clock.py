"""Simulated time for the deployment engine.

The frame-loop deployment advances time in whole rounds: simulated
time is a pure function of the frame index and the processing cadence
(one frame every ``seconds_per_frame``, Section VI-E).  The clock is
the single time source the engine wires into everything that
timestamps — the controller's decision events and the instrumented
batteries — replacing the ad-hoc ``_sim_time_s`` attribute the runner
used to thread around.

The discrete-event network environment does not use this clock: there
the :class:`~repro.network.simulator.EventSimulator`'s ``now`` is the
authoritative time source, and the engine wires *that* into the
controller instead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SimulationClock:
    """Frame-cadence simulated time.

    Attributes:
        seconds_per_frame: Operational cadence (paper: 2 s/frame).
        now_s: Current simulated time in seconds.
    """

    seconds_per_frame: float = 2.0
    now_s: float = 0.0

    def time_at_frame(self, frame_index: int) -> float:
        """Simulated time at which ``frame_index`` is processed."""
        return frame_index * self.seconds_per_frame

    def advance_to_frame(self, frame_index: int) -> float:
        """Move the clock to a frame's processing time and return it."""
        self.now_s = self.time_at_frame(frame_index)
        return self.now_s

    def reset(self) -> None:
        self.now_s = 0.0

    def snapshot(self) -> dict:
        """Checkpointable state (cadence included for validation)."""
        return {
            "seconds_per_frame": self.seconds_per_frame,
            "now_s": self.now_s,
        }

    def restore(self, state: dict) -> None:
        """Adopt a :meth:`snapshot` payload (checkpoint resume)."""
        self.seconds_per_frame = float(state["seconds_per_frame"])
        self.now_s = float(state["now_s"])

"""Declarative deployment specs: one object describes one run.

A :class:`DeploymentSpec` is the single construction path the harness
and the CLI share: it names the dataset, the coordination policy and
the run parameters, validates them eagerly (a typo'd policy fails at
spec construction, not minutes into training), and knows how to build
the engine that executes it — training through the shared
:func:`~repro.engine.context.shared_context` cache so each dataset is
trained once per process.

Specs are frozen and picklable, so batches fan out over worker
processes; every run reseeds from its own configuration inside the
engine, making serial and parallel execution bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checkpoint.hooks import CheckpointConfig, RunCheckpointer
from repro.core.config import EECSConfig
from repro.datasets.synthetic import DATASET_SPECS
from repro.engine.context import shared_context
from repro.engine.core import DeploymentEngine, RunResult
from repro.engine.executor import make_executor, validate_executor_name
from repro.engine.fleet import fleet_context
from repro.engine.policy import resolve_policy
from repro.fleet.cells import validate_cells_value
from repro.perf.timing import TimingReport
from repro.resilience.ladder import ResilienceConfig


@dataclass(frozen=True)
class DeploymentSpec:
    """One fully described deployment run.

    Attributes:
        dataset_number: Which synthetic dataset to deploy on.
        policy: Registered coordination policy name (validated at
            construction).
        budget: Per-frame energy budget for every camera.
        start / end: Frame window (``None`` = dataset defaults).
        assignment: Static camera->algorithm pairs for
            assignment-taking policies, as a tuple of pairs to keep
            the spec hashable.
        seed: Run-entropy seed (feeds every detection task's rng).
        train_seed: Offline-training seed; ``None`` uses the shared
            per-dataset convention (``2017 + dataset_number``).
        workers: Detection executor backend width (1 = serial).
        executor: Executor backend name (``"serial"``, ``"pool"`` or
            ``"shm"``; validated at construction).  ``None`` keeps the
            historical convention: serial for ``workers == 1``, the
            process pool otherwise.  Like ``workers``, the backend is
            absent from the checkpoint fingerprint — every backend
            reproduces the serial run bit for bit, so a deployment may
            resume under a different one.
        checkpoint_dir: Directory for crash-safe run checkpoints
            (``None`` disables checkpointing).
        checkpoint_every: Snapshot cadence in completed rounds.
        resume: Restore from ``checkpoint_dir``'s snapshot instead of
            starting fresh (no snapshot on disk = fresh start).
        resilience: Graceful-degradation layer configuration; ``None``
            (or ``enabled=False``) keeps the layer off.  On the ideal
            feed the layer is provably inert — results are identical
            either way — but enabling it here keeps one spec valid for
            both execution environments.
        fleet_cameras: Tile the trained dataset into a synthetic fleet
            of this many cameras (``None`` = the dataset's own
            cameras).  Training cost does not grow with fleet size —
            tiles alias the base profiles.
        cells: Fleet cell layout for cell-aware policies: a cell
            count, or an explicit tuple of camera-id tuples (kept as
            tuples so the spec stays hashable).  ``None`` lets the
            ``cell`` policy default to one fleet-wide cell; flat
            policies ignore it.
        wake_threshold / predictor_warmup / wake_probe_every /
        max_sleepers / low_energy_below: Tunables of the
            ``predictive`` policy (see
            :class:`~repro.predictive.PredictiveConfig`); ``None``
            keeps each default.  ``max_sleepers=0`` spells "uncapped".
            Any of them set with a different policy is a spec error.
    """

    dataset_number: int
    policy: str = "full"
    budget: float | None = None
    start: int | None = None
    end: int | None = None
    assignment: tuple[tuple[str, str], ...] | None = None
    seed: int = 2017
    train_seed: int | None = None
    workers: int = 1
    executor: str | None = None
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    resume: bool = False
    resilience: ResilienceConfig | None = None
    fleet_cameras: int | None = None
    cells: int | tuple[tuple[str, ...], ...] | None = None
    wake_threshold: float | None = None
    predictor_warmup: int | None = None
    wake_probe_every: int | None = None
    max_sleepers: int | None = None
    low_energy_below: float | None = None

    def __post_init__(self) -> None:
        # Fail fast: resolve_policy raises the "valid policies are ..."
        # ValueError for unknown names; the policy then checks its own
        # requirements (e.g. "fixed" without an assignment).
        policy = resolve_policy(self.policy)
        policy.validate(
            dict(self.assignment) if self.assignment else None
        )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.executor is not None:
            # Same fail-fast contract as the policy name: an unknown
            # backend (or an impossible backend/workers pairing) must
            # surface at spec construction, not after training.
            validate_executor_name(self.executor)
            if self.executor == "serial" and self.workers > 1:
                raise ValueError(
                    "serial backend runs in-process; workers must be 1, "
                    f"got {self.workers}"
                )
            if self.executor in ("pool", "shm") and self.workers < 2:
                raise ValueError(
                    f"{self.executor!r} backend needs workers >= 2, "
                    f"got {self.workers}"
                )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume requires checkpoint_dir")
        if self.resilience is not None and not isinstance(
            self.resilience, ResilienceConfig
        ):
            raise TypeError(
                "resilience must be a ResilienceConfig, got "
                f"{type(self.resilience).__name__}"
            )
        if self.fleet_cameras is not None and self.fleet_cameras < 1:
            raise ValueError(
                f"fleet_cameras must be >= 1, got {self.fleet_cameras}"
            )
        if self.cells is not None:
            # Same fail-fast contract: a malformed layout (duplicate
            # camera ids, empty cells, more cells than cameras) must
            # surface at spec construction, not after training.
            base = DATASET_SPECS.get(self.dataset_number)
            num_cameras = (
                self.fleet_cameras
                if self.fleet_cameras is not None
                else (base.num_cameras if base is not None else None)
            )
            validate_cells_value(
                self.cells, field="cells", num_cameras=num_cameras
            )
        predictive_fields = {
            "wake_threshold": self.wake_threshold,
            "predictor_warmup": self.predictor_warmup,
            "wake_probe_every": self.wake_probe_every,
            "max_sleepers": self.max_sleepers,
            "low_energy_below": self.low_energy_below,
        }
        set_fields = [k for k, v in predictive_fields.items() if v is not None]
        if set_fields and self.policy != "predictive":
            raise ValueError(
                f"{', '.join(set_fields)} require(s) policy "
                f"'predictive', got {self.policy!r}"
            )
        if self.policy == "predictive":
            # Fail fast: a bad wake configuration (negative threshold,
            # zero warmup) surfaces at spec construction, not after
            # training.  The same construction happens again in
            # execute(), so the two can never disagree.
            self._predictive_config()

    def _predictive_config(self):
        """The :class:`~repro.predictive.PredictiveConfig` this spec
        describes (policy ``"predictive"`` only)."""
        from repro.predictive import PredictiveConfig

        return PredictiveConfig.from_overrides(
            wake_threshold=self.wake_threshold,
            predictor_warmup=self.predictor_warmup,
            probe_every=self.wake_probe_every,
            max_sleepers=self.max_sleepers,
            low_energy_below=self.low_energy_below,
            seed=self.seed,
        )

    def _runtime_policy(self):
        """The policy instance :meth:`execute` hands to the engine.

        Plain names pass through (the engine resolves them);
        ``predictive`` is constructed here so the spec's wake tunables
        reach the policy.
        """
        if self.policy != "predictive":
            return self.policy
        from repro.engine.predictive import PredictivePolicy

        return PredictivePolicy(self._predictive_config())

    def make_checkpointer(self) -> RunCheckpointer | None:
        """The checkpoint driver this spec asks for (``None`` = off)."""
        if self.checkpoint_dir is None:
            return None
        return RunCheckpointer(
            CheckpointConfig(
                directory=self.checkpoint_dir,
                every=self.checkpoint_every,
                resume=self.resume,
            )
        )

    def build_engine(
        self,
        config: EECSConfig | None = None,
        telemetry=None,
        timing: TimingReport | None = None,
    ) -> DeploymentEngine:
        """An engine over the shared trained context for this spec."""
        if self.fleet_cameras is not None:
            context = fleet_context(
                self.fleet_cameras,
                base_number=self.dataset_number,
                config=config,
                train_seed=self.train_seed,
                timing=timing,
            )
        else:
            context = shared_context(
                self.dataset_number,
                config=config,
                train_seed=self.train_seed,
                timing=timing,
            )
        return DeploymentEngine(
            context,
            seed=self.seed,
            executor=make_executor(self.workers, backend=self.executor),
            timing=timing,
            telemetry=telemetry,
        )

    def execute(
        self,
        engine: DeploymentEngine | None = None,
        config: EECSConfig | None = None,
        telemetry=None,
        checkpointer: RunCheckpointer | None = None,
    ) -> RunResult:
        """Run this spec (building the engine unless one is supplied).

        ``checkpointer`` overrides the spec's own checkpoint fields —
        the hook tests and the CLI use it to attach a ``crash_after``
        crash-injection config.
        """
        owns_engine = engine is None
        if engine is None:
            engine = self.build_engine(config=config, telemetry=telemetry)
        if checkpointer is None:
            checkpointer = self.make_checkpointer()
        try:
            return engine.run(
                self._runtime_policy(),
                budget=self.budget,
                assignment=dict(self.assignment) if self.assignment else None,
                start=self.start,
                end=self.end,
                checkpointer=checkpointer,
                resilience=self.resilience,
                cells=self.cells,
            )
        finally:
            if owns_engine:
                # A spec-built engine owns its executor backend; close
                # it so pools and shared segments never outlive the run.
                engine.close()

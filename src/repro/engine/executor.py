"""Detection execution backends.

The engine expresses every phase's detection work as one
:class:`~repro.detection.batch.DetectionBatch` — a round's (frame,
camera, algorithm) tasks as plain data; a :class:`DetectionExecutor`
decides where that batch runs.  Because each task seeds its own
generator from the run entropy plus its coordinates, every backend
produces bit-identical results — the serial backend is the reference,
the process-pool backend fans chunks over workers, and the
shared-memory backend additionally publishes frame arrays once to
``multiprocessing.shared_memory`` segments so workers read them
zero-copy: tasks ship only a ``(segment, offset, shape, dtype)``
reference plus the small per-view metadata.

Adding a backend means implementing ``execute`` with order-preserving
semantics over a batch; nothing else in the engine changes.  Backends
are registered by name (``serial`` / ``pool`` / ``shm``) and validated
with :func:`validate_executor_name`, mirroring the policy registry's
fail-fast style.
"""

from __future__ import annotations

import math
import signal
import threading
import weakref
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Mapping, Sequence

import numpy as np

from repro.detection.base import Detection, Detector
from repro.detection.batch import DetectionBatch, DetectionTask, run_batch
from repro.world.renderer import FrameObservation

#: Registered backend names, in documentation order.
EXECUTOR_BACKENDS = ("serial", "pool", "shm")


def validate_executor_name(name: str) -> str:
    """Fail fast on a typo'd backend name (policy-registry style).

    Returns the name unchanged so callers can validate inline.
    """
    if name not in EXECUTOR_BACKENDS:
        valid = ", ".join(EXECUTOR_BACKENDS)
        raise ValueError(
            f"unknown executor backend {name!r}; valid backends are: "
            f"{valid}"
        )
    return name


class DetectionExecutor(ABC):
    """Where a detection batch executes."""

    #: Registry name of the backend (used as a telemetry label).
    name: str = "abstract"

    #: Nominal degree of parallelism (1 for the serial backend).
    workers: int = 1

    @abstractmethod
    def execute(
        self,
        batch: DetectionBatch,
        detectors: Mapping[str, Detector],
    ) -> list[list[Detection]]:
        """Run every task of ``batch``, results in task order."""

    def close(self) -> None:
        """Release backend resources (pools, shared segments)."""

    def drain_stats(self) -> dict[str, int | float]:
        """Return and reset backend counters (empty when stateless)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialDetectionExecutor(DetectionExecutor):
    """In-process reference backend: the batch runs where it was built."""

    name = "serial"
    workers = 1

    def execute(
        self,
        batch: DetectionBatch,
        detectors: Mapping[str, Detector],
    ) -> list[list[Detection]]:
        return run_batch(detectors, batch.tasks)


# ----------------------------------------------------------------------
# Worker-process state (populated by pool initializers; each worker is
# its own process, so module globals are per-worker, not shared).
# ----------------------------------------------------------------------
_WORKER_DETECTORS: Mapping[str, Detector] | None = None
_WORKER_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}


def _init_pool_worker(detectors: Mapping[str, Detector]) -> None:
    """Pool initializer: ship the detector suite once per worker."""
    global _WORKER_DETECTORS
    _WORKER_DETECTORS = detectors


def _run_task_chunk(tasks: Sequence[DetectionTask]) -> list[list[Detection]]:
    """Worker-side entry point: run one contiguous slice of a batch."""
    return run_batch(_WORKER_DETECTORS, tasks)


def _chunk_evenly(items: Sequence, parts: int) -> list[Sequence]:
    """Contiguous, order-preserving chunks of near-equal size."""
    parts = max(1, min(parts, len(items)))
    size = math.ceil(len(items) / parts)
    return [items[i : i + size] for i in range(0, len(items), size)]


class ProcessPoolDetectionExecutor(DetectionExecutor):
    """Fan batch chunks over a persistent process pool.

    The pool is created lazily on the first batch and reused until
    :meth:`close` — the initializer ships the detector suite once per
    worker instead of pickling it with every task.  Results are
    identical to serial execution; batches too small to amortise the
    fan-out run in-process.
    """

    name = "pool"

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError(
                f"process-pool backend needs workers >= 2, got {workers}"
            )
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None
        self._pool_detectors: Mapping[str, Detector] | None = None

    def _ensure_pool(
        self, detectors: Mapping[str, Detector]
    ) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_detectors is not detectors:
            # A different suite invalidates the initializer-shipped
            # copy; engines keep one suite for life, so this is rare.
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_pool_worker,
                initargs=(detectors,),
            )
            self._pool_detectors = detectors
        return self._pool

    def _encode_tasks(
        self, batch: DetectionBatch
    ) -> Sequence[DetectionTask]:
        """What the workers receive; overridden by the shm backend."""
        return batch.tasks

    def execute(
        self,
        batch: DetectionBatch,
        detectors: Mapping[str, Detector],
    ) -> list[list[Detection]]:
        if len(batch) <= 1:
            # Nothing to amortise the IPC against; the in-process path
            # is bit-identical by construction.
            return run_batch(detectors, batch.tasks)
        pool = self._ensure_pool(detectors)
        chunks = _chunk_evenly(self._encode_tasks(batch), self.workers)
        results: list[list[Detection]] = []
        for part in pool.map(_run_task_chunk, chunks):
            results.extend(part)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_detectors = None


# ----------------------------------------------------------------------
# Shared-memory backend
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedFrameRef:
    """Zero-copy handle to a frame image inside a shared segment."""

    segment: str
    offset: int
    shape: tuple[int, ...]
    dtype: str

    @property
    def count(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1


@dataclass(frozen=True)
class _ShmTask:
    """A :class:`DetectionTask` with its frame image swapped for a
    :class:`SharedFrameRef`; everything else pickles as-is (the object
    views and clutter boxes are a few hundred bytes, the image is the
    payload worth sharing)."""

    algorithm: str
    entropy: tuple[int, ...]
    threshold: float | None
    camera_id: str
    frame_index: int
    objects: tuple
    clutter_regions: tuple
    image_scale: float
    frame: SharedFrameRef


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Worker-side segment cache: attach once, reuse for the run.

    The attach must not register with the resource tracker: the parent
    owns the segment's lifetime, and with a fork-context pool all
    processes share one tracker whose per-name cache is a set — a
    worker-side registration would either unlink the segment early or
    unbalance the parent's final unregister.  Python 3.13's
    ``track=False`` expresses this directly; on 3.11 the registration
    is suppressed for the duration of the attach.
    """
    segment = _WORKER_SEGMENTS.get(name)
    if segment is None:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        _WORKER_SEGMENTS[name] = segment
    return segment


def _run_shm_chunk(tasks: Sequence[_ShmTask]) -> list[list[Detection]]:
    """Worker-side entry point for the shm backend: rebuild each
    task's observation around a zero-copy view into the shared
    segment, then run the standard batch path."""
    resolved: list[DetectionTask] = []
    for task in tasks:
        ref = task.frame
        segment = _attach_segment(ref.segment)
        image = np.frombuffer(
            segment.buf,
            dtype=np.dtype(ref.dtype),
            count=ref.count,
            offset=ref.offset,
        ).reshape(ref.shape)
        observation = FrameObservation(
            camera_id=task.camera_id,
            frame_index=task.frame_index,
            objects=list(task.objects),
            clutter_regions=list(task.clutter_regions),
            image=image,
            image_scale=task.image_scale,
        )
        resolved.append(
            DetectionTask(
                algorithm=task.algorithm,
                observation=observation,
                entropy=task.entropy,
                threshold=task.threshold,
            )
        )
    return run_batch(_WORKER_DETECTORS, resolved)


def _release_segments(
    segments: list[shared_memory.SharedMemory],
) -> None:
    """Close and unlink every segment, tolerating repeat calls."""
    while segments:
        segment = segments.pop()
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


_sigterm_hooked = False


def _hook_sigterm_cleanup() -> None:
    """Convert a default-action SIGTERM into ``SystemExit`` so
    ``finally`` blocks and finalizers run and shared segments are
    unlinked.  Installed once, only over ``SIG_DFL`` — an existing
    handler (e.g. the checkpointer's) already unwinds the stack."""
    global _sigterm_hooked
    if _sigterm_hooked or threading.current_thread() is not threading.main_thread():
        return
    _sigterm_hooked = True
    try:
        if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
            signal.signal(
                signal.SIGTERM,
                lambda signum, frame: (_ for _ in ()).throw(
                    SystemExit(128 + signum)
                ),
            )
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass


class SharedFrameStore:
    """Parent-side arena of shared-memory segments holding frame images.

    Frames are published once per ``(camera_id, frame_index)`` — a
    bump allocator packs them into fixed-size segments, and repeat
    publishes of the same frame return the existing reference (the
    ``hits`` counter).  ``close()`` (or garbage collection, or normal
    interpreter exit via the finalizer) unlinks every segment.
    """

    #: 64-byte alignment keeps worker-side views cache-line aligned.
    _ALIGN = 64

    def __init__(self, segment_bytes: int = 8 << 20) -> None:
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be positive")
        self.segment_bytes = segment_bytes
        self._segments: list[shared_memory.SharedMemory] = []
        self._cursor = 0
        self._refs: dict[tuple[str, int], SharedFrameRef] = {}
        self._hits = 0
        self._misses = 0
        self._published_bytes = 0
        self._finalizer = weakref.finalize(
            self, _release_segments, self._segments
        )
        _hook_sigterm_cleanup()

    def put(self, observation: FrameObservation) -> SharedFrameRef:
        """Publish a frame image, deduplicating by frame identity."""
        key = (observation.camera_id, observation.frame_index)
        ref = self._refs.get(key)
        if ref is not None:
            self._hits += 1
            return ref
        self._misses += 1
        image = np.ascontiguousarray(observation.image)
        nbytes = image.nbytes
        segment, offset = self._allocate(nbytes)
        view = np.frombuffer(
            segment.buf, dtype=image.dtype, count=image.size, offset=offset
        )
        view[:] = image.ravel()
        self._published_bytes += nbytes
        ref = SharedFrameRef(
            segment=segment.name,
            offset=offset,
            shape=tuple(image.shape),
            dtype=image.dtype.str,
        )
        self._refs[key] = ref
        return ref

    def _allocate(
        self, nbytes: int
    ) -> tuple[shared_memory.SharedMemory, int]:
        """Bump-allocate ``nbytes`` in the current segment, opening a
        new one when it does not fit."""
        aligned = max(self._ALIGN, nbytes)
        if self._segments:
            segment = self._segments[-1]
            offset = -(-self._cursor // self._ALIGN) * self._ALIGN
            if offset + nbytes <= segment.size:
                self._cursor = offset + nbytes
                return segment, offset
        segment = shared_memory.SharedMemory(
            create=True, size=max(self.segment_bytes, aligned)
        )
        self._segments.append(segment)
        self._cursor = nbytes
        return segment, 0

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def drain_stats(self) -> dict[str, int | float]:
        """Return and reset the hit/miss counters; segment totals are
        reported as current state, not deltas."""
        stats = {
            "shm_hits": self._hits,
            "shm_misses": self._misses,
            "shm_segments": len(self._segments),
            "shm_published_bytes": self._published_bytes,
        }
        self._hits = 0
        self._misses = 0
        return stats

    def close(self) -> None:
        """Unlink every segment; safe to call more than once."""
        self._refs.clear()
        self._finalizer()


class SharedMemoryDetectionExecutor(ProcessPoolDetectionExecutor):
    """Process-pool backend whose workers read frames zero-copy.

    Frame images are published to a :class:`SharedFrameStore` once per
    frame; the pickled tasks carry only ``(segment, offset, shape,
    dtype)`` references plus per-view metadata, so the per-batch IPC
    payload is independent of image size.
    """

    name = "shm"

    def __init__(self, workers: int, segment_bytes: int = 8 << 20) -> None:
        if workers < 2:
            raise ValueError(
                f"shared-memory backend needs workers >= 2, got {workers}"
            )
        super().__init__(workers)
        self.store = SharedFrameStore(segment_bytes=segment_bytes)

    def _encode_tasks(self, batch: DetectionBatch) -> Sequence[_ShmTask]:
        encoded = []
        for task in batch.tasks:
            observation = task.observation
            encoded.append(
                _ShmTask(
                    algorithm=task.algorithm,
                    entropy=task.entropy,
                    threshold=task.threshold,
                    camera_id=observation.camera_id,
                    frame_index=observation.frame_index,
                    objects=tuple(observation.objects),
                    clutter_regions=tuple(observation.clutter_regions),
                    image_scale=observation.image_scale,
                    frame=self.store.put(observation),
                )
            )
        return encoded

    def execute(
        self,
        batch: DetectionBatch,
        detectors: Mapping[str, Detector],
    ) -> list[list[Detection]]:
        if len(batch) <= 1:
            return run_batch(detectors, batch.tasks)
        pool = self._ensure_pool(detectors)
        chunks = _chunk_evenly(self._encode_tasks(batch), self.workers)
        results: list[list[Detection]] = []
        for part in pool.map(_run_shm_chunk, chunks):
            results.extend(part)
        return results

    def drain_stats(self) -> dict[str, int | float]:
        return self.store.drain_stats()

    def close(self) -> None:
        super().close()
        self.store.close()


def make_executor(
    workers: int, backend: str | None = None
) -> DetectionExecutor:
    """The backend for a worker count and optional backend name.

    ``backend=None`` keeps the historical convention: ``workers <= 1``
    means serial, more means the process pool.  Explicit names are
    validated (:func:`validate_executor_name`) and cross-checked
    against the worker count — the serial backend is single-process by
    definition, the parallel backends need at least two workers.
    """
    if backend is None:
        if workers <= 1:
            return SerialDetectionExecutor()
        return ProcessPoolDetectionExecutor(workers)
    validate_executor_name(backend)
    if backend == "serial":
        if workers > 1:
            raise ValueError(
                "serial backend runs in-process; workers must be 1, "
                f"got {workers}"
            )
        return SerialDetectionExecutor()
    if backend == "pool":
        return ProcessPoolDetectionExecutor(workers)
    return SharedMemoryDetectionExecutor(workers)

"""Detection execution backends.

The engine expresses every phase's detection work as an ordered list
of self-contained tasks (see ``_detect_task`` in
:mod:`repro.engine.core`); a :class:`DetectionExecutor` decides where
those tasks run.  Because each task seeds its own generator from the
run entropy plus its (frame, camera, algorithm) coordinates, every
backend produces bit-identical results — the serial backend is the
reference, the process-pool backend is the throughput option.

Adding a backend means implementing ``map`` with order-preserving
semantics over picklable tasks; nothing else in the engine changes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence, TypeVar

from repro.perf.parallel import parallel_map

T = TypeVar("T")
R = TypeVar("R")


class DetectionExecutor(ABC):
    """Where detection tasks execute."""

    #: Nominal degree of parallelism (1 for the serial backend).
    workers: int = 1

    @abstractmethod
    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Run ``fn`` over ``tasks``, preserving input order."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialDetectionExecutor(DetectionExecutor):
    """In-process reference backend: a plain ordered loop."""

    workers = 1

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return [fn(task) for task in tasks]


class ProcessPoolDetectionExecutor(DetectionExecutor):
    """Fan tasks over a process pool (results identical to serial).

    Tasks and the task function must be picklable; single-task batches
    degenerate to the in-process path to avoid pool overhead.
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError(
                f"process-pool backend needs workers >= 2, got {workers}"
            )
        self.workers = workers

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        return parallel_map(fn, tasks, workers=self.workers)


def make_executor(workers: int) -> DetectionExecutor:
    """The backend for a worker count (``<= 1`` means serial)."""
    if workers <= 1:
        return SerialDetectionExecutor()
    return ProcessPoolDetectionExecutor(workers)

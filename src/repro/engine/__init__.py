"""The unified deployment engine.

One simulation core behind every way the repo runs a deployment:

* :mod:`repro.engine.core` — :class:`DeploymentEngine`, the single
  phase-scheduling loop (assessment periods, re-calibration
  intervals, per-frame operation) and :class:`RunResult`.
* :mod:`repro.engine.policy` — pluggable
  :class:`CoordinationPolicy` strategies (all-best, subset, full
  EECS, fixed) with a by-name registry.
* :mod:`repro.engine.executor` — :class:`DetectionExecutor`
  backends (serial reference, process pool, zero-copy shared
  memory), bit-identical by construction.
* :mod:`repro.engine.environment` — :class:`Environment` seam:
  ideal in-process frame feed vs. the fault-injected network.
* :mod:`repro.engine.context` — the immutable trained substrate
  (:class:`DeploymentContext`) and the engine-owned
  :func:`shared_context` cache.
* :mod:`repro.engine.spec` — :class:`DeploymentSpec`, the
  declarative construction path shared by harness and CLI.
* :mod:`repro.engine.clock` — :class:`SimulationClock`, explicit
  frame-cadence simulated time.

Layering contract (enforced by ``tests/test_layer_contract.py`` in
CI): this package never imports from ``repro.experiments`` or
``repro.cli`` — experiments and the CLI sit *above* the engine.
"""

from repro.engine.clock import SimulationClock
from repro.engine.context import (
    DeploymentContext,
    clear_shared_contexts,
    shared_context,
)
from repro.engine.core import DeploymentEngine, RunResult
from repro.engine.fleet import (
    CellPolicy,
    FullCellPolicy,
    PeerPolicy,
    clear_fleet_contexts,
    fleet_context,
)
from repro.engine.environment import (
    Environment,
    FaultInjectedEnvironment,
    IdealEnvironment,
    NetworkConditions,
    NetworkOutcome,
)
from repro.engine.executor import (
    EXECUTOR_BACKENDS,
    DetectionExecutor,
    ProcessPoolDetectionExecutor,
    SerialDetectionExecutor,
    SharedFrameStore,
    SharedMemoryDetectionExecutor,
    make_executor,
    validate_executor_name,
)
from repro.engine.predictive import PredictivePolicy
from repro.engine.policy import (
    AllBestPolicy,
    CoordinationPolicy,
    FixedAssignmentPolicy,
    FullEECSPolicy,
    RoundPlan,
    SubsetPolicy,
    available_policies,
    register_policy,
    resolve_policy,
    validate_policy_name,
)
from repro.engine.spec import DeploymentSpec

__all__ = [
    "AllBestPolicy",
    "CellPolicy",
    "CoordinationPolicy",
    "DeploymentContext",
    "DeploymentEngine",
    "DeploymentSpec",
    "DetectionExecutor",
    "EXECUTOR_BACKENDS",
    "Environment",
    "FaultInjectedEnvironment",
    "FixedAssignmentPolicy",
    "FullCellPolicy",
    "FullEECSPolicy",
    "IdealEnvironment",
    "PeerPolicy",
    "PredictivePolicy",
    "NetworkConditions",
    "NetworkOutcome",
    "ProcessPoolDetectionExecutor",
    "RoundPlan",
    "RunResult",
    "SerialDetectionExecutor",
    "SharedFrameStore",
    "SharedMemoryDetectionExecutor",
    "SimulationClock",
    "SubsetPolicy",
    "available_policies",
    "clear_fleet_contexts",
    "clear_shared_contexts",
    "fleet_context",
    "make_executor",
    "register_policy",
    "resolve_policy",
    "shared_context",
    "validate_executor_name",
    "validate_policy_name",
]

"""Fleet-scale policies and the fleet deployment context.

Two coordination strategies for fleets the flat protocol does not
scale to, both registered as ordinary
:class:`~repro.engine.policy.CoordinationPolicy` entries (the engine
loop never branches on either):

* ``cell`` — the fleet is sharded into cells, each running the
  existing greedy selection under a local controller, beneath a
  top-level :class:`~repro.fleet.coordinator.BudgetCoordinator` that
  re-allocates per-cell budget scales every re-calibration interval.
  With one cell the hierarchy collapses to flat ``subset`` bit for
  bit, which is why the policy aliases ``subset``'s entropy stream.
* ``peer`` — no controller at all: cameras negotiate activation
  among themselves over the network layer
  (:func:`~repro.fleet.peer.negotiate_activation`), and the decision
  is assembled from the surviving claims.

:func:`fleet_context` is the fleet analogue of
:func:`~repro.engine.context.shared_context`: it tiles the trained
4-camera substrate into a 50/200/1000-camera world without retraining
(profiles and frame images are shared with the base scene).
"""

from __future__ import annotations

from repro.core.accuracy import DesiredAccuracy
from repro.core.config import EECSConfig
from repro.core.controller import CAMERA_QUARANTINED, SelectionDecision
from repro.engine.context import DeploymentContext, shared_context
from repro.engine.policy import (
    CoordinationPolicy,
    RoundPlan,
    register_policy,
)
from repro.fleet.cells import normalize_cells
from repro.fleet.peer import negotiate_activation
from repro.fleet.runtime import FleetRuntime
from repro.fleet.world import TiledFleetDataset, tile_training_library
from repro.perf.timing import TimingReport
from repro.reid.matcher import CrossCameraMatcher


def _chunk_rounds(engine, records) -> list[RoundPlan]:
    """The assessing policies' round schedule (same chunking as
    ``subset``: one assessment period per re-calibration interval)."""
    per_round = engine.gt_frames_per_round
    per_assessment = engine.gt_frames_per_assessment
    return [
        RoundPlan(
            records=records[start : start + per_round],
            assess_count=per_assessment,
        )
        for start in range(0, len(records), per_round)
    ]


@register_policy
class CellPolicy(CoordinationPolicy):
    """Sharded cells under a hierarchical budget coordinator.

    ``plan_rounds`` builds the per-run
    :class:`~repro.fleet.runtime.FleetRuntime` — one scoped controller
    per cell from the engine's layout (``run(cells=...)``; defaults to
    a single fleet-wide cell) — and attaches it to the engine;
    ``select`` delegates the whole hierarchical round to it.
    """

    name = "cell"
    #: One cell *is* flat subset selection — same controllers, same
    #: greedy pipeline — so it must draw the same detection rng.
    entropy_alias = "subset"
    enable_downgrade = False

    def plan_rounds(self, engine, records, budget, assignment):
        layout = engine.cell_layout
        if layout is None:
            layout = normalize_cells(None, engine.dataset.camera_ids)
            engine.cell_layout = layout
        now_fn = lambda: engine.clock.now_s  # noqa: E731
        runtime = FleetRuntime(
            layout,
            controller_factory=lambda camera_ids: engine.build_controller(
                telemetry=engine.telemetry,
                now_fn=now_fn if engine.telemetry else None,
                camera_ids=camera_ids,
            ),
            enable_downgrade=self.enable_downgrade,
            telemetry=engine.telemetry,
            now_fn=now_fn,
        )
        engine.attach_fleet(runtime)
        return _chunk_rounds(engine, records)

    def select(self, engine, assessment, budget_overrides, meter=None):
        return engine._fleet.select_round(
            assessment, budget_overrides, meter
        )


@register_policy
class FullCellPolicy(CellPolicy):
    """Cells with algorithm downgrade inside each cell (the fleet
    analogue of the ``full`` policy)."""

    name = "cell_full"
    entropy_alias = "full"
    enable_downgrade = True


@register_policy
class PeerPolicy(CoordinationPolicy):
    """Decentralised activation: cameras negotiate, nobody decides.

    Each serviceable camera derives its own utility (its standalone
    accuracy proxy on the assessment) and the fleet settles which
    cameras stay active by peer negotiation over the network layer —
    radio Joules land in the run's meter.  The decision mirrors the
    centralised shape (baseline, gamma-scaled desired floor, achieved
    accuracy of the surviving set) so downstream accounting and
    checkpoint codecs apply unchanged.
    """

    name = "peer"
    enable_downgrade = False

    def plan_rounds(self, engine, records, budget, assignment):
        return _chunk_rounds(engine, records)

    def select(self, engine, assessment, budget_overrides, meter=None):
        controller = engine.controller
        overrides = budget_overrides or {}
        plans: dict[str, str] = {}
        for camera_id in controller.camera_ids:
            state = controller.camera(camera_id)
            if not state.alive or state.mode == CAMERA_QUARANTINED:
                continue
            plan = controller.camera_plan(camera_id, overrides.get(camera_id))
            if plan is None:
                continue
            available = set(assessment.algorithms_for(camera_id))
            algorithm = plan.best_algorithm
            if algorithm not in available:
                candidates = [
                    p
                    for p in plan.item.profiles.values()
                    if p.algorithm in available
                    and p.energy_per_frame + plan.communication_cost
                    <= plan.budget
                ]
                if not candidates:
                    continue
                algorithm = max(
                    candidates, key=lambda p: p.f_score
                ).algorithm
            plans[camera_id] = algorithm
        if not plans:
            raise RuntimeError(
                "no camera has an affordable algorithm within budget"
            )

        selection = controller.engine
        utilities = {
            camera_id: selection.individual_accuracy(
                assessment, camera_id, algorithm
            )
            for camera_id, algorithm in plans.items()
        }
        outcome = negotiate_activation(
            list(plans), utilities, telemetry=engine.telemetry
        )
        if meter is not None:
            for camera_id, joules in outcome.energy_by_camera.items():
                meter.record_communication(camera_id, joules)

        assignment = {
            camera_id: algorithm
            for camera_id, algorithm in plans.items()
            if outcome.active[camera_id]
        }
        baseline = selection.global_accuracy(assessment, plans)
        achieved = selection.global_accuracy(assessment, assignment)
        desired = DesiredAccuracy.from_baseline(
            baseline, engine.config.gamma_n, engine.config.gamma_p
        )
        ranked = sorted(
            plans,
            key=lambda camera_id: (utilities[camera_id], camera_id),
            reverse=True,
        )
        if engine.telemetry is not None:
            registry = engine.telemetry.registry
            registry.counter(
                "peer_negotiation_claims_total",
                "Peer activation claims transmitted.",
            ).inc(outcome.claims_sent)
            registry.counter(
                "peer_negotiation_rounds_total",
                "Peer negotiation rounds run.",
            ).inc(outcome.rounds)
            registry.counter(
                "peer_negotiation_joules_total",
                "Radio Joules spent on peer negotiation.",
            ).inc(sum(outcome.energy_by_camera.values()))
            registry.gauge(
                "peer_active_cameras",
                "Cameras left active by the latest negotiation.",
            ).set(len(assignment))
        return SelectionDecision(
            assignment=assignment,
            baseline=baseline,
            desired=desired,
            achieved=achieved,
            ranked_camera_ids=ranked,
        )


# ----------------------------------------------------------------------
# Fleet deployment contexts
# ----------------------------------------------------------------------
_FLEET_CONTEXTS: dict[tuple, DeploymentContext] = {}


def fleet_context(
    num_cameras: int,
    base_number: int = 1,
    config: EECSConfig | None = None,
    train_seed: int | None = None,
    timing: TimingReport | None = None,
) -> DeploymentContext:
    """A trained fleet-scale context tiled from a base dataset.

    Trains (or reuses) the base :func:`shared_context`, then tiles its
    scene into a :class:`~repro.fleet.world.TiledFleetDataset` of
    ``num_cameras`` cameras: the training library aliases the base
    per-camera profiles and the matcher composes each tile's ground
    translation onto the base homographies, so a 1000-camera context
    costs the same offline training as a 4-camera one.
    """
    key = (num_cameras, base_number, train_seed, config)
    if key not in _FLEET_CONTEXTS:
        base = shared_context(
            base_number, config=config, train_seed=train_seed, timing=timing
        )
        dataset = TiledFleetDataset(base.dataset, num_cameras)
        library = tile_training_library(
            base.library,
            {
                camera_id: f"T-{dataset.base_camera_of(camera_id)}"
                for camera_id in dataset.camera_ids
            },
        )
        matcher = CrossCameraMatcher(
            image_to_ground=dataset.ground_homographies(),
            ground_radius=base.config.ground_radius_m,
            color_metric=base.matcher.color_metric,
            color_threshold=base.config.color_threshold,
            use_color=base.matcher.use_color,
        )
        _FLEET_CONTEXTS[key] = DeploymentContext(
            dataset=dataset,
            config=base.config,
            detectors=base.detectors,
            library=library,
            matcher=matcher,
            energy_model=base.energy_model,
        )
    return _FLEET_CONTEXTS[key]


def clear_fleet_contexts() -> None:
    """Testing hook: drop every cached fleet context."""
    _FLEET_CONTEXTS.clear()

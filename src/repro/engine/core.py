"""The deployment engine: one loop for every coordination strategy.

Reproduces the paper's evaluation protocol (Section VI-E): only
ground-truth-annotated frames are processed; the controller assesses
accuracy on the metadata of one assessment period, selects cameras and
algorithms, and the selection runs until the next re-calibration
interval.  Energy is accounted per camera per frame through the fitted
processing model plus the communication model; detected humans are
counted after cross-camera re-identification.

The engine owns the *phase schedule* — assessment periods,
re-calibration intervals, per-frame operation — paced by an explicit
:class:`~repro.engine.clock.SimulationClock`.  Everything else is
pluggable:

* **what runs where** comes from a
  :class:`~repro.engine.policy.CoordinationPolicy` (no mode-string
  branching: a policy plans rounds and turns assessments into
  decisions);
* **how detection executes** comes from a
  :class:`~repro.engine.executor.DetectionExecutor`: the engine packs
  a round's (frame, camera, algorithm) triples into one
  :class:`~repro.detection.batch.DetectionBatch` and hands it to the
  backend (serial reference, process pool, or zero-copy shared-memory
  pool) — bit-identical by construction, because every task seeds its
  own generator from the run entropy plus its coordinates;
* **where the deployment runs** comes from an
  :class:`~repro.engine.environment.Environment` (ideal in-process
  frame feed, or the fault-injected discrete-event network).

Telemetry and energy accounting hook the engine's phase boundaries:
the run/round span tree, phase timing sections and per-camera energy
metering all live here, once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.checkpoint.codec import (
    controller_state_to_dict,
    decision_from_dict,
    decision_to_dict,
    live_telemetry_to_dict,
    policy_state_to_dict,
    restore_controller_state,
    restore_live_telemetry,
    restore_policy_state,
    restore_rng_state,
    rng_state_to_dict,
)
from repro.core.config import EECSConfig
from repro.core.controller import (
    CAMERA_ACTIVE,
    EECSController,
    SelectionDecision,
)
from repro.core.selection import AssessmentData
from repro.datasets.base import FrameRecord
from repro.datasets.groundtruth import persons_in_any_view
from repro.detection.base import Detection
from repro.detection.batch import DetectionBatch, DetectionTask
from repro.energy.battery import Battery
from repro.energy.communication import CommunicationEnergyModel
from repro.energy.meter import EnergyMeter
from repro.engine.clock import SimulationClock
from repro.engine.context import DeploymentContext
from repro.engine.executor import DetectionExecutor, make_executor
from repro.engine.policy import CoordinationPolicy, resolve_policy
from repro.faults.events import FaultLog
from repro.fleet.cells import CellLayout, normalize_cells
from repro.perf.timing import TimingReport
from repro.resilience.ladder import (
    ResilienceConfig,
    ResilienceCoordinator,
    build_coordinator,
)
from repro.telemetry.trace import TracingTimingReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.checkpoint.hooks import RunCheckpointer
    from repro.engine.environment import Environment
    from repro.fleet.runtime import FleetRuntime
    from repro.telemetry.core import Telemetry


@dataclass
class RunResult:
    """Outcome of one simulated deployment run."""

    mode: str
    humans_detected: int
    humans_present: int
    energy_joules: float
    processing_joules: float
    communication_joules: float
    energy_by_camera: dict[str, float]
    mean_fused_probability: float
    frames_evaluated: int
    decisions: list[SelectionDecision] = field(default_factory=list)
    processing_seconds: float = 0.0

    @property
    def detection_rate(self) -> float:
        """Fraction of present humans that were detected."""
        if self.humans_present == 0:
            return 0.0
        return self.humans_detected / self.humans_present

    def max_latency_per_frame(self) -> float:
        """Mean per-camera processing seconds per evaluated frame.

        The paper processes one frame every ``seconds_per_frame``
        (2 s); a deployment whose per-frame latency exceeds that
        cadence cannot keep up in real time — the stated reason LSVM
        is excluded despite its accuracy (Section VI-A).
        """
        if self.frames_evaluated == 0:
            return 0.0
        return self.processing_seconds / self.frames_evaluated


def count_true_detections(groups, present: set) -> int:
    """Distinct ground-truth persons confirmed by fused groups.

    Shared by the ideal frame loop and the networked environment's
    post-hoc scoring, so "detected" means the same thing under both.
    """
    detected_ids = {
        group.majority_truth_id for group in groups if group.is_true_object
    }
    return len(detected_ids & present)


class DeploymentEngine:
    """Drives one trained context through the EECS control loop."""

    def __init__(
        self,
        context: DeploymentContext,
        seed: int = 2017,
        rng: np.random.Generator | None = None,
        executor: DetectionExecutor | None = None,
        timing: TimingReport | None = None,
        telemetry: "Telemetry | None" = None,
        clock: SimulationClock | None = None,
    ) -> None:
        self.context = context
        # Per-engine references (assignable without touching the
        # shared context): the substrate a run reads.
        self.dataset = context.dataset
        self.config = context.config
        self.detectors = context.detectors
        self.library = context.library
        self.matcher = context.matcher
        self.energy_model = context.energy_model

        self._seed = seed
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.telemetry = telemetry
        self.clock = clock or SimulationClock(
            seconds_per_frame=self.config.seconds_per_frame
        )
        if timing is not None:
            self.timing = timing
        elif telemetry is not None:
            # Phase sections double as spans in the telemetry trace.
            self.timing = TracingTimingReport(telemetry.tracer)
        else:
            self.timing = TimingReport()
        self.executor = executor or make_executor(1)
        self._active_executor = self.executor
        self._latency_seconds = 0.0
        # Per-run resilience coordinator (None = layer off, the inert
        # default); assigned at run start, cleared when the run ends.
        self._resilience: ResilienceCoordinator | None = None
        # Per-run fleet runtime (cell controllers + budget
        # coordinator), attached by fleet-aware policies during
        # plan_rounds and cleared when the run ends.  The engine loop
        # never branches on it beyond mirroring camera-mode
        # transitions and folding its state into checkpoints.
        self._fleet: "FleetRuntime | None" = None
        # The run's requested cell layout (normalised in run()); None
        # for flat policies that ignore cells.
        self.cell_layout: CellLayout | None = None

        self.controller = self.build_controller(
            telemetry=telemetry,
            now_fn=(lambda: self.clock.now_s) if telemetry else None,
            battery_factory=(
                self._instrumented_battery if telemetry else None
            ),
        )
        self._camera_order = {
            camera_id: index
            for index, camera_id in enumerate(self.dataset.camera_ids)
        }
        self._algorithm_order = {
            name: index for index, name in enumerate(sorted(self.detectors))
        }
        self._run_entropy: tuple[int, ...] = (seed,)

    def close(self) -> None:
        """Release the engine's executor backend (pools, shared
        segments).  Safe to call more than once; the serial backend
        makes this a no-op."""
        self.executor.close()

    def _instrumented_battery(self, camera_id: str) -> Battery:
        battery = Battery()
        battery.instrument(
            self.telemetry, camera_id, clock=lambda: self.clock.now_s
        )
        return battery

    def build_controller(
        self,
        telemetry: "Telemetry | None" = None,
        now_fn: Callable[[], float] | None = None,
        battery_factory: Callable[[str], Battery] | None = None,
        camera_ids: list[str] | None = None,
    ) -> EECSController:
        """A fresh controller with every camera registered.

        Used for the engine's own in-process controller, by the
        networked environment (which provisions an independent
        controller per deployment so shared engines stay pristine),
        and by the fleet runtime, which passes ``camera_ids`` to scope
        a controller to one cell's cameras.
        """
        controller = EECSController(
            self.config, self.library, self.matcher, telemetry=telemetry
        )
        if now_fn is not None:
            controller.now_fn = now_fn
        env = self.dataset.environment
        if camera_ids is None:
            camera_ids = self.dataset.camera_ids
        for camera_id in camera_ids:
            battery = (
                battery_factory(camera_id) if battery_factory else Battery()
            )
            controller.register_camera(
                camera_id,
                processing_model=self.energy_model,
                communication_model=CommunicationEnergyModel(
                    width=env.width, height=env.height
                ),
                battery=battery,
            )
            controller.assign_training_item(camera_id, f"T-{camera_id}")
        return controller

    # ------------------------------------------------------------------
    # Phase-schedule parameters
    # ------------------------------------------------------------------
    @property
    def gt_frames_per_round(self) -> int:
        """Ground-truth frames per re-calibration interval."""
        return max(
            1,
            self.config.recalibration_interval // self.dataset.spec.gt_every,
        )

    @property
    def gt_frames_per_assessment(self) -> int:
        """Ground-truth frames per assessment period."""
        return max(
            1, self.config.assessment_period // self.dataset.spec.gt_every
        )

    # ------------------------------------------------------------------
    # Per-frame primitives
    # ------------------------------------------------------------------
    def _task_entropy(
        self, record: FrameRecord, camera_id: str, algorithm: str
    ) -> tuple[int, ...]:
        """Seed entropy of one detection task.

        A pure function of the run configuration and the task's
        (frame, camera, algorithm) coordinates — never of execution
        order — which is what makes any executor backend reproduce the
        serial run exactly.
        """
        return (
            *self._run_entropy,
            record.frame_index,
            self._camera_order[camera_id],
            self._algorithm_order[algorithm],
        )

    def _batch_detections(
        self,
        requests: list[tuple[FrameRecord, str, str]],
        meter: EnergyMeter,
    ) -> dict[tuple[int, str, str], list[Detection]]:
        """Detect every requested (frame, camera, algorithm) triple.

        Detection itself fans out over the active executor backend;
        accounting (probability calibration, energy metering, latency)
        runs serially afterwards in request order.

        Returns detections keyed by
        ``(frame_index, camera_id, algorithm)``.
        """
        tasks: list[DetectionTask] = []
        for record, camera_id, algorithm in requests:
            threshold = (
                self.library.get(f"T-{camera_id}")
                .profile(algorithm)
                .threshold
            )
            tasks.append(
                DetectionTask(
                    algorithm=algorithm,
                    observation=record.observation(camera_id),
                    entropy=self._task_entropy(record, camera_id, algorithm),
                    threshold=threshold,
                )
            )
        batch = DetectionBatch(tasks=tuple(tasks))
        with self.timing.section("detection"):
            elapsed = time.perf_counter()
            results = self._active_executor.execute(batch, self.detectors)
            elapsed = time.perf_counter() - elapsed
        if self.telemetry is not None:
            self._record_batch_metrics(batch, elapsed)
        out: dict[tuple[int, str, str], list[Detection]] = {}
        for (record, camera_id, algorithm), detections in zip(
            requests, results
        ):
            self.controller.calibrate_probabilities(camera_id, detections)
            if self._resilience is not None:
                # Same stream the networked controller scores from its
                # metadata messages; pure bookkeeping, no rng.
                self._resilience.monitor.observe_detections(
                    camera_id,
                    algorithm,
                    record.frame_index,
                    [det.score for det in detections],
                )
            if self.telemetry is not None:
                # Recorded here, in the serial accounting loop, so the
                # counters are identical for any executor backend.
                self.telemetry.observe_detections(
                    camera_id, algorithm, detections
                )
            meter.record_processing(
                camera_id, self.energy_model.energy_per_frame(algorithm)
            )
            self._latency_seconds += self.energy_model.time_per_frame(
                algorithm
            )
            comm = self.controller.camera(camera_id).communication_model
            meter.record_communication(
                camera_id, comm.metadata_cost(len(detections))
            )
            out[(record.frame_index, camera_id, algorithm)] = detections
        return out

    def _record_batch_metrics(
        self, batch: DetectionBatch, elapsed: float
    ) -> None:
        """Wire one executed batch into the telemetry registry."""
        registry = self.telemetry.registry
        backend = self._active_executor.name
        registry.counter(
            "detection_batches_total",
            "Detection batches handed to the executor.",
            labels=("backend",),
        ).inc(backend=backend)
        registry.counter(
            "detection_batch_tasks_total",
            "Detection tasks executed via batches.",
            labels=("backend",),
        ).inc(len(batch), backend=backend)
        registry.counter(
            "detection_execute_seconds_total",
            "Wall-clock seconds spent inside executor.execute().",
            labels=("backend",),
        ).inc(elapsed, backend=backend)
        stats = self._active_executor.drain_stats()
        if stats:
            registry.counter(
                "shm_frame_publishes_total",
                "Shared-memory frame store lookups.",
                labels=("outcome",),
            ).inc(stats.get("shm_hits", 0), outcome="hit")
            registry.counter(
                "shm_frame_publishes_total",
                "Shared-memory frame store lookups.",
                labels=("outcome",),
            ).inc(stats.get("shm_misses", 0), outcome="miss")
            registry.gauge(
                "shm_segments",
                "Shared-memory segments currently allocated.",
            ).set(stats.get("shm_segments", 0))
            registry.gauge(
                "shm_published_bytes",
                "Total frame bytes published to shared memory.",
            ).set(stats.get("shm_published_bytes", 0))

    def affordable_algorithms(
        self, camera_id: str, budget: float | None
    ) -> list[str]:
        """Algorithms within a camera's per-frame budget."""
        plan = self.controller.camera_plan(camera_id, budget)
        if plan is None:
            return []
        comm = plan.communication_cost
        return [
            p.algorithm
            for p in plan.item.profiles.values()
            if p.energy_per_frame + comm <= plan.budget
        ]

    def collect_assessment(
        self,
        records: list[FrameRecord],
        budget: float | None,
        meter: EnergyMeter,
        skip_cameras: tuple[str, ...] = (),
    ) -> AssessmentData:
        """Run all affordable algorithms on the assessment frames.

        Cameras in ``skip_cameras`` (a predictive round's sleepers)
        contribute no assessment metadata and, because the meter only
        ever sees executed requests, are charged nothing.
        """
        skipped = set(skip_cameras)
        plan: list[tuple[FrameRecord, dict[str, list[str]]]] = []
        requests: list[tuple[FrameRecord, str, str]] = []
        for record in records:
            per_camera: dict[str, list[str]] = {}
            for camera_id in self.dataset.camera_ids:
                if camera_id in skipped:
                    continue
                algorithms = self.affordable_algorithms(camera_id, budget)
                if not algorithms:
                    continue
                per_camera[camera_id] = algorithms
                requests.extend(
                    (record, camera_id, algorithm)
                    for algorithm in algorithms
                )
            plan.append((record, per_camera))
        detections = self._batch_detections(requests, meter)
        assessment = AssessmentData()
        for record, per_camera in plan:
            assessment.frames.append({
                camera_id: {
                    algorithm: detections[
                        (record.frame_index, camera_id, algorithm)
                    ]
                    for algorithm in algorithms
                }
                for camera_id, algorithms in per_camera.items()
            })
        return assessment

    def _evaluate_frame(
        self,
        record: FrameRecord,
        assignment: dict[str, str],
        meter: EnergyMeter,
        detections_cache: dict[str, list[Detection]] | None = None,
    ) -> tuple[int, int, list[float]]:
        """Detect with the active assignment, fuse, count humans.

        Returns (detected, present, fused probabilities).
        """
        missing = [
            (record, camera_id, algorithm)
            for camera_id, algorithm in assignment.items()
            if detections_cache is None or camera_id not in detections_cache
        ]
        computed = (
            self._batch_detections(missing, meter) if missing else {}
        )
        detections: list[Detection] = []
        for camera_id, algorithm in assignment.items():
            if detections_cache is not None and camera_id in detections_cache:
                detections.extend(detections_cache[camera_id])
            else:
                detections.extend(
                    computed[(record.frame_index, camera_id, algorithm)]
                )
        with self.timing.section("reid_grouping"):
            groups = self.matcher.group(detections)
        present = persons_in_any_view(record.observations)
        probabilities = [g.fused_probability for g in groups]
        return (
            count_true_detections(groups, present),
            len(present),
            probabilities,
        )

    def _evaluate_batch(
        self,
        records: list[FrameRecord],
        assignments: list[dict[str, str]],
        meter: EnergyMeter,
    ) -> tuple[int, int, list[float]]:
        """Evaluate many frames, detecting them all in one fan-out."""
        requests = [
            (record, camera_id, algorithm)
            for record, assignment in zip(records, assignments)
            for camera_id, algorithm in assignment.items()
        ]
        detections = self._batch_detections(requests, meter)
        detected_total = 0
        present_total = 0
        probabilities: list[float] = []
        for record, assignment in zip(records, assignments):
            cache = {
                camera_id: detections[
                    (record.frame_index, camera_id, algorithm)
                ]
                for camera_id, algorithm in assignment.items()
            }
            detected, present, probs = self._evaluate_frame(
                record, assignment, meter, detections_cache=cache
            )
            detected_total += detected
            present_total += present
            probabilities.extend(probs)
        return detected_total, present_total, probabilities

    # ------------------------------------------------------------------
    # Fleet seam
    # ------------------------------------------------------------------
    def attach_fleet(self, runtime: "FleetRuntime") -> None:
        """Adopt a fleet runtime for the duration of the current run.

        Called by cell-aware policies from ``plan_rounds``.  The
        engine loop stays policy-agnostic: it only mirrors camera-mode
        transitions into the runtime (so the resilience ladder reaches
        cell controllers) and folds its state into checkpoints.
        """
        self._fleet = runtime

    def _set_camera_mode(self, camera_id: str, mode: str) -> None:
        """Apply a mode transition to the engine controller and, when
        a fleet runtime is attached, to the owning cell controller."""
        self.controller.set_camera_mode(camera_id, mode)
        if self._fleet is not None:
            self._fleet.set_camera_mode(camera_id, mode)

    def all_best_assignment(self, budget: float | None) -> dict[str, str]:
        """Every camera on its most accurate affordable algorithm."""
        assignment = {}
        for camera_id in self.dataset.camera_ids:
            plan = self.controller.camera_plan(camera_id, budget)
            if plan is not None:
                assignment[camera_id] = plan.best_algorithm
        if not assignment:
            raise RuntimeError("no camera can afford any algorithm")
        return assignment

    # ------------------------------------------------------------------
    # The deployment loop
    # ------------------------------------------------------------------
    def run(
        self,
        policy: CoordinationPolicy | str = "full",
        budget: float | None = None,
        assignment: dict[str, str] | None = None,
        start: int | None = None,
        end: int | None = None,
        workers: int | None = None,
        checkpointer: "RunCheckpointer | None" = None,
        resilience: ResilienceConfig | None = None,
        cells: int | tuple | list | None = None,
    ) -> RunResult:
        """Simulate a deployment over the dataset's test segment.

        Args:
            policy: A registered policy name (``"all_best"``,
                ``"subset"``, ``"full"``, ``"fixed"``) or a
                :class:`~repro.engine.policy.CoordinationPolicy`
                instance.
            budget: Per-frame energy budget applied to every camera
                (``None`` derives it from the battery as in the paper).
            assignment: Required by assignment-taking policies
                (``"fixed"``): the static camera -> algorithm map.
            start: First frame (defaults to the test segment start).
            end: One past the last frame (defaults to the dataset end).
            workers: Override the engine's executor for this run with
                a worker count.  Any backend yields identical results;
                ``> 1`` fans detection work over a process pool.
            checkpointer: Crash-safe checkpoint/resume driver.  The
                run snapshots its full state every ``K`` completed
                rounds (and on SIGTERM); a resumed run restores the
                snapshot and skips the completed rounds, finishing
                bit-identically to an uninterrupted run.  ``workers``
                is deliberately absent from the checkpoint
                fingerprint: any backend reproduces the serial run, so
                a deployment may resume with a different worker count.
            resilience: Graceful-degradation layer configuration
                (``None`` or ``enabled=False`` keeps the layer off).
                The ideal feed has no radio and no fault source, so
                the monitor only ever sees the clean detection stream:
                health stays at 1.0, every camera stays active, and
                the run is bit-identical to a resilience-off run — the
                layer's inertness guarantee.  Mode transitions, were
                the thresholds tightened enough to force them, apply
                to the controller exactly as in the networked
                environment.
            cells: Fleet cell layout for cell-aware policies: a cell
                count, an explicit tuple of camera-id tuples, or
                ``None`` (flat policies ignore it; the ``cell`` policy
                defaults to one cell spanning the fleet).
        """
        policy = resolve_policy(policy)
        policy.validate(assignment)
        self.cell_layout = (
            normalize_cells(cells, self.dataset.camera_ids)
            if cells is not None
            else None
        )
        run_executor: DetectionExecutor | None = None
        if workers is not None:
            # Per-run override owns its backend: closed when the run
            # finishes so pools and shared segments never leak.
            run_executor = make_executor(workers)
            self._active_executor = run_executor
        else:
            self._active_executor = self.executor

        # Reseed per run configuration so results are independent of
        # how many runs preceded this one on the shared engine.  The
        # same entropy also seeds every per-task generator, keyed by
        # its (frame, camera, algorithm) coordinates.
        self._run_entropy = (
            self._seed,
            policy.entropy_token(),
            0 if start is None else start,
            0 if budget is None else int(budget * 1000),
        )
        self.rng = np.random.default_rng(list(self._run_entropy))

        spec = self.dataset.spec
        start = spec.train_end if start is None else start
        end = spec.total_frames if end is None else end
        records = self.dataset.frames(start, end, only_ground_truth=True)

        meter = EnergyMeter(telemetry=self.telemetry)
        self._latency_seconds = 0.0
        detected_total = 0
        present_total = 0
        probabilities: list[float] = []
        decisions: list[SelectionDecision] = []

        rounds = policy.plan_rounds(self, records, budget, assignment)
        budget_overrides = (
            {c: budget for c in self.dataset.camera_ids}
            if budget is not None
            else None
        )

        self._resilience = build_coordinator(
            resilience, list(self.dataset.camera_ids), fault_log=FaultLog()
        )
        # Every run starts with a fully admitted fleet; a prior run's
        # ladder decisions must not leak through the shared controller.
        for camera_id in self.dataset.camera_ids:
            self._set_camera_mode(camera_id, CAMERA_ACTIVE)

        first_round = 0
        if checkpointer is not None:
            metadata = {
                "dataset": spec.name,
                "policy": policy.name,
                "seed": self._seed,
                "budget": budget,
                "start": start,
                "end": end,
                "assignment": assignment,
                "num_rounds": len(rounds),
                "cameras": list(self.dataset.camera_ids),
                "resilience": (
                    resilience.to_dict() if resilience is not None
                    else None
                ),
            }
            if self.cell_layout is not None:
                # Only present for cell-aware runs so pre-fleet
                # checkpoint fingerprints are unchanged.
                metadata["cells"] = self.cell_layout.to_dict()
            policy_config = policy.config_fingerprint()
            if policy_config is not None:
                # Only present for configured policies (predictive's
                # wake tunables) so pre-existing checkpoint
                # fingerprints are unchanged — and a resume under a
                # different wake configuration is refused.
                metadata["policy_config"] = policy_config
            resume_state = checkpointer.begin("run", metadata)
            if resume_state is not None:
                (
                    first_round,
                    detected_total,
                    present_total,
                    probabilities,
                    decisions,
                ) = self._restore_checkpoint(resume_state, meter, policy)
                if self.telemetry is not None:
                    # Stitch the live stream: sinks drop every round
                    # this resumed run will flush again, so the final
                    # stream is gap-free with no duplicates.
                    self.telemetry.prepare_resume(first_round)

        run_span = None
        if self.telemetry is not None:
            run_span = self.telemetry.tracer.begin(
                "run",
                mode=policy.name,
                seed=self._seed,
                budget=budget,
                frames=len(records),
            )
        try:
            for round_index, round_plan in enumerate(rounds):
                if round_index < first_round:
                    continue
                if round_plan.assess_count:
                    detected, present, probs, decision = (
                        self._run_assessed_round(
                            round_plan, round_index, policy,
                            budget, budget_overrides, meter,
                        )
                    )
                    decisions.append(decision)
                else:
                    with self.timing.section("operation"):
                        detected, present, probs = self._evaluate_batch(
                            round_plan.records,
                            round_plan.static_assignments,
                            meter,
                        )
                detected_total += detected
                present_total += present
                probabilities.extend(probs)
                if self._resilience is not None:
                    # Round boundary = this path's liveness tick: walk
                    # the ladder and mirror transitions into selection.
                    for transition in self._resilience.evaluate(
                        self.clock.now_s
                    ):
                        self._set_camera_mode(
                            transition.camera_id, transition.new_mode
                        )
                if self.telemetry is not None:
                    # Live flush *before* the checkpoint decision: a
                    # crash right after the save then finds every
                    # round <= the checkpoint already streamed, which
                    # is what resume stitching assumes.
                    if (
                        self._resilience is not None
                        and self.telemetry.live_enabled
                    ):
                        self._resilience.record_metrics(self.telemetry)
                    self.telemetry.flush_round(
                        round_index, self.clock.now_s
                    )
                if checkpointer is not None:
                    checkpointer.unit_complete(
                        round_index,
                        len(rounds),
                        lambda: self._capture_checkpoint(
                            round_index + 1,
                            detected_total,
                            present_total,
                            probabilities,
                            decisions,
                            meter,
                            policy,
                        ),
                    )
        finally:
            if run_span is not None:
                self.telemetry.tracer.end(run_span)
            if checkpointer is not None:
                checkpointer.finish()
            if run_executor is not None:
                run_executor.close()
                self._active_executor = self.executor
            self._resilience = None
            self._fleet = None

        if self.telemetry is not None:
            self._record_run_metrics(
                len(records), detected_total, present_total, probabilities
            )

        return RunResult(
            mode=policy.name,
            humans_detected=detected_total,
            humans_present=present_total,
            energy_joules=meter.total(),
            processing_joules=meter.total_by_category(EnergyMeter.PROCESSING),
            communication_joules=meter.total_by_category(
                EnergyMeter.COMMUNICATION
            ),
            energy_by_camera={
                camera_id: meter.total(camera_id)
                for camera_id in meter.camera_ids
            },
            mean_fused_probability=(
                float(np.mean(probabilities)) if probabilities else 0.0
            ),
            frames_evaluated=len(records),
            decisions=decisions,
            processing_seconds=self._latency_seconds,
        )

    def _run_assessed_round(
        self,
        round_plan,
        round_index: int,
        policy: CoordinationPolicy,
        budget: float | None,
        budget_overrides: dict[str, float] | None,
        meter: EnergyMeter,
    ) -> tuple[int, int, list[float], SelectionDecision]:
        """One assess -> select -> operate round of the protocol."""
        self.clock.advance_to_frame(round_plan.records[0].frame_index)
        # Per-round policy adjustment (predictive wake/skip decisions)
        # happens after the clock advance so emitted events carry the
        # round's simulation time, and before any detection runs.
        round_plan = policy.refine_round(self, round_plan, round_index)
        assess_records = round_plan.records[: round_plan.assess_count]
        operate_records = round_plan.records[round_plan.assess_count :]

        round_span = None
        if self.telemetry is not None:
            round_span = self.telemetry.tracer.begin(
                "round",
                index=round_index,
                sim_time_s=self.clock.now_s,
            )
            self.telemetry.registry.counter(
                "run_rounds_total",
                "Assessment/selection rounds executed.",
            ).inc()
        try:
            with self.timing.section("assessment"):
                assessment = self.collect_assessment(
                    assess_records,
                    budget,
                    meter,
                    skip_cameras=round_plan.skip_cameras,
                )
            with self.timing.section("selection"):
                decision = policy.select(
                    self, assessment, budget_overrides, meter
                )

            detected_total = 0
            present_total = 0
            probabilities: list[float] = []
            # Assessment frames are also operational: the all-best
            # detections are already available, reuse them.
            for idx, record in enumerate(assess_records):
                cache = {
                    camera_id: assessment.detections(
                        idx, camera_id, algorithm
                    )
                    for camera_id, algorithm
                    in decision.assignment.items()
                }
                detected, present, probs = self._evaluate_frame(
                    record,
                    decision.assignment,
                    meter,
                    detections_cache=cache,
                )
                detected_total += detected
                present_total += present
                probabilities.extend(probs)

            with self.timing.section("operation"):
                detected, present, probs = self._evaluate_batch(
                    operate_records,
                    [decision.assignment] * len(operate_records),
                    meter,
                )
            detected_total += detected
            present_total += present
            probabilities.extend(probs)
            return detected_total, present_total, probabilities, decision
        finally:
            if round_span is not None:
                self.telemetry.tracer.end(round_span)

    # ------------------------------------------------------------------
    # Checkpoint capture / restore
    # ------------------------------------------------------------------
    def _capture_checkpoint(
        self,
        next_round: int,
        detected_total: int,
        present_total: int,
        probabilities: list[float],
        decisions: list[SelectionDecision],
        meter: EnergyMeter,
        policy: CoordinationPolicy | None = None,
    ) -> dict:
        """Everything :meth:`run` mutates, as exact JSON values."""
        state = {
            "next_round": next_round,
            "clock": self.clock.snapshot(),
            "rng": rng_state_to_dict(self.rng),
            "meter": meter.snapshot(),
            "latency_seconds": self._latency_seconds,
            "detected_total": detected_total,
            "present_total": present_total,
            "probabilities": list(probabilities),
            "decisions": [decision_to_dict(d) for d in decisions],
            "controller": controller_state_to_dict(self.controller),
        }
        if self._resilience is not None:
            state["resilience"] = self._resilience.snapshot()
        if self._fleet is not None:
            state["fleet"] = self._fleet.snapshot()
        if policy is not None:
            policy_state = policy_state_to_dict(policy)
            if policy_state is not None:
                # Only stateful policies (predictive's regressor bank)
                # add this key, so stateless-policy checkpoints keep
                # their pre-existing byte layout.
                state["policy"] = policy_state
        if self.telemetry is not None:
            state["metrics"] = self.telemetry.registry.snapshot()
            state["live"] = live_telemetry_to_dict(self.telemetry)
        return state

    def _restore_checkpoint(
        self,
        state: dict,
        meter: EnergyMeter,
        policy: CoordinationPolicy | None = None,
    ) -> tuple[int, int, int, list[float], list[SelectionDecision]]:
        """Adopt a :meth:`_capture_checkpoint` payload.

        Returns the loop-local accumulators ``(first_round,
        detected_total, present_total, probabilities, decisions)``;
        engine-owned state (clock, rng, controller, meter, telemetry
        counters) is restored in place.
        """
        self.clock.restore(state["clock"])
        restore_rng_state(self.rng, state["rng"])
        meter.restore(state["meter"])
        self._latency_seconds = float(state["latency_seconds"])
        restore_controller_state(self.controller, state["controller"])
        if self._resilience is not None and state.get("resilience"):
            self._resilience.restore(state["resilience"])
        if self._fleet is not None and state.get("fleet"):
            self._fleet.restore(state["fleet"])
        if policy is not None:
            restore_policy_state(policy, state.get("policy"))
        if self.telemetry is not None and state.get("metrics"):
            self.telemetry.registry.merge(state["metrics"])
        if self.telemetry is not None and state.get("live"):
            restore_live_telemetry(self.telemetry, state["live"])
        return (
            int(state["next_round"]),
            int(state["detected_total"]),
            int(state["present_total"]),
            [float(p) for p in state["probabilities"]],
            [decision_from_dict(d) for d in state["decisions"]],
        )

    def _record_run_metrics(
        self,
        frames: int,
        detected_total: int,
        present_total: int,
        probabilities: list[float],
    ) -> None:
        """Mirror one run's outcome into the metrics registry."""
        registry = self.telemetry.registry
        registry.counter(
            "run_frames_total", "Ground-truth frames evaluated."
        ).inc(frames)
        registry.counter(
            "run_humans_detected_total",
            "Humans detected after cross-camera fusion.",
        ).inc(detected_total)
        registry.counter(
            "run_humans_present_total",
            "Humans present in any view on evaluated frames.",
        ).inc(present_total)
        registry.gauge(
            "run_mean_fused_probability",
            "Mean fused detection probability of the latest run.",
        ).set(float(np.mean(probabilities)) if probabilities else 0.0)

    # ------------------------------------------------------------------
    # Environments
    # ------------------------------------------------------------------
    def deploy(self, environment: "Environment"):
        """Execute a deployment in an execution environment.

        The ideal in-process environment returns a
        :class:`RunResult`; the fault-injected network environment
        returns a :class:`~repro.engine.environment.NetworkOutcome`.
        """
        return environment.execute(self)

"""Per-frame processing cost models.

Each algorithm's energy and latency per frame follow a power law in
the frame's megapixel count, ``cost = a * MP^b``, with ``(a, b)``
fitted to the two resolutions the paper measured on the Asus Zen II
testbed: 360x288 (datasets #1/#3, Table II) and 1024x768 (dataset #2,
Table III).  At those resolutions the model reproduces the paper's
Joules and seconds per frame exactly; in between it interpolates.

Fitted behaviour worth noting: C4's cost is nearly resolution-flat
(its contour extraction dominates), LSVM scales ~linearly, ACF is
sub-linear (channel pyramids), HOG slightly super-linear.
"""

from __future__ import annotations

from dataclasses import dataclass

# (a, b) per algorithm for energy in Joules per frame.
_ENERGY_PARAMS: dict[str, tuple[float, float]] = {
    "HOG": (12.83, 1.0914),
    "ACF": (0.3766, 0.7423),
    "C4": (5.641, 0.0604),
    "LSVM": (31.85, 0.9989),
}

# (a, b) per algorithm for latency in seconds per frame.
_TIME_PARAMS: dict[str, tuple[float, float]] = {
    "HOG": (3.746, 0.4038),
    "ACF": (0.4715, 0.6842),
    "C4": (7.695, 0.5140),
    "LSVM": (39.13, 0.8130),
}


def _power_law(params: tuple[float, float], megapixels: float) -> float:
    a, b = params
    return a * megapixels**b


def processing_energy(algorithm: str, megapixels: float) -> float:
    """Joules to process one frame of ``megapixels`` with ``algorithm``."""
    if megapixels <= 0:
        raise ValueError(f"megapixels must be positive, got {megapixels}")
    try:
        params = _ENERGY_PARAMS[algorithm]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; "
            f"known: {sorted(_ENERGY_PARAMS)}"
        ) from None
    return _power_law(params, megapixels)


def processing_time(algorithm: str, megapixels: float) -> float:
    """Seconds to process one frame of ``megapixels`` with ``algorithm``."""
    if megapixels <= 0:
        raise ValueError(f"megapixels must be positive, got {megapixels}")
    try:
        params = _TIME_PARAMS[algorithm]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; "
            f"known: {sorted(_TIME_PARAMS)}"
        ) from None
    return _power_law(params, megapixels)


@dataclass(frozen=True)
class ProcessingEnergyModel:
    """Energy/latency model bound to one capture resolution.

    Attributes:
        width: Frame width in pixels.
        height: Frame height in pixels.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("resolution must be positive")

    @property
    def megapixels(self) -> float:
        return self.width * self.height / 1e6

    def energy_per_frame(self, algorithm: str) -> float:
        """Joules per frame for ``algorithm`` at this resolution."""
        return processing_energy(algorithm, self.megapixels)

    def time_per_frame(self, algorithm: str) -> float:
        """Seconds per frame for ``algorithm`` at this resolution."""
        return processing_time(algorithm, self.megapixels)

    def cheapest(self, algorithms: list[str]) -> str:
        """The lowest-energy algorithm among ``algorithms``."""
        if not algorithms:
            raise ValueError("algorithms list is empty")
        return min(algorithms, key=self.energy_per_frame)

    def affordable(
        self, algorithms: list[str], budget: float, communication: float = 0.0
    ) -> list[str]:
        """Algorithms whose total per-frame cost fits in ``budget``.

        Implements the paper's constraint ``c(A_j) + C_j <= B_j``.
        """
        return [
            name
            for name in algorithms
            if self.energy_per_frame(name) + communication <= budget
        ]

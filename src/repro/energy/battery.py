"""Battery state and per-frame energy budgets.

Section VI: "the energy budget is computed by first defining an
expected operation time (e.g., 6 hours) and an expected frame rate
(e.g., image frames are processed every 2 seconds) ... the residual
energy capacity is divided by the number of frames to compute the
energy budget for each frame."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.core import Telemetry


def frame_budget(
    residual_joules: float,
    operation_time_s: float,
    seconds_per_frame: float,
) -> float:
    """Per-frame energy budget ``B_j``.

    Args:
        residual_joules: Remaining battery capacity.
        operation_time_s: Required remaining operation time.
        seconds_per_frame: Processing cadence (e.g. one frame every 2 s).

    Returns:
        Joules available per processed frame.
    """
    if residual_joules < 0:
        raise ValueError("residual energy cannot be negative")
    if operation_time_s <= 0 or seconds_per_frame <= 0:
        raise ValueError("operation time and cadence must be positive")
    frames_needed = operation_time_s / seconds_per_frame
    return residual_joules / frames_needed


class Battery:
    """A camera sensor's battery with draw accounting.

    A typical smartphone battery holds ~10 Wh = 36 kJ; the default
    matches the Asus Zen II's ~3000 mAh pack.

    With a :class:`~repro.telemetry.core.Telemetry` attached (see
    :meth:`instrument`), every draw updates the per-node
    ``battery_fraction_remaining`` gauge, and downward crossings of
    the configured fraction thresholds emit a ``battery_threshold``
    event plus a ``battery_threshold_crossings_total`` increment.
    Instrumentation never alters the drawn amounts.
    """

    def __init__(self, capacity_joules: float = 41000.0) -> None:
        if capacity_joules <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_joules = capacity_joules
        self._consumed = 0.0
        self._telemetry: "Telemetry | None" = None
        self._node_id = ""
        self._clock: Callable[[], float] | None = None
        self._thresholds: tuple[float, ...] = ()
        self._gauge = None

    def instrument(
        self,
        telemetry: "Telemetry",
        node_id: str,
        clock: Callable[[], float] | None = None,
        thresholds: tuple[float, ...] | None = None,
    ) -> "Battery":
        """Attach telemetry; returns ``self`` for chaining.

        Args:
            telemetry: Sink for the gauge, counter and events.
            node_id: Label value identifying this battery's node.
            clock: Simulated-time source for threshold events
                (defaults to a constant 0.0).
            thresholds: Remaining-fraction levels to watch; defaults
                to :data:`repro.telemetry.core.BATTERY_THRESHOLDS`.
        """
        from repro.telemetry.core import BATTERY_THRESHOLDS

        self._telemetry = telemetry
        self._node_id = node_id
        self._clock = clock
        self._thresholds = tuple(
            sorted(
                BATTERY_THRESHOLDS if thresholds is None else thresholds,
                reverse=True,
            )
        )
        self._gauge = telemetry.battery_gauge()
        self._gauge.set(self.fraction_remaining, node=node_id)
        return self

    def _observe_draw(self, before_fraction: float) -> None:
        telemetry = self._telemetry
        if telemetry is None:
            return
        after = self.fraction_remaining
        self._gauge.set(after, node=self._node_id)
        for threshold in self._thresholds:
            if after < threshold <= before_fraction:
                now = self._clock() if self._clock is not None else 0.0
                telemetry.registry.counter(
                    "battery_threshold_crossings_total",
                    "Downward battery-fraction threshold crossings.",
                    labels=("node", "threshold"),
                ).inc(node=self._node_id, threshold=f"{threshold:g}")
                telemetry.event(
                    "battery_threshold",
                    time_s=now,
                    node_id=self._node_id,
                    threshold=threshold,
                    residual_joules=self.residual,
                )

    @property
    def consumed(self) -> float:
        return self._consumed

    @property
    def residual(self) -> float:
        return max(0.0, self.capacity_joules - self._consumed)

    @property
    def is_depleted(self) -> bool:
        return self.residual <= 0.0

    @property
    def fraction_remaining(self) -> float:
        return self.residual / self.capacity_joules

    def draw(self, joules: float) -> float:
        """Consume energy; returns the amount actually drawn (clamped
        at the residual capacity).

        Overdraw never goes negative: a draw larger than the residual
        depletes the battery exactly, and callers can tell from the
        shortfall in the return value (and from :attr:`is_depleted`)
        that the node must stop processing and transmitting.
        """
        if joules < 0:
            raise ValueError("cannot draw negative energy")
        before = self.fraction_remaining
        drawn = min(joules, self.residual)
        self._consumed += drawn
        if self._telemetry is not None:
            self._observe_draw(before)
        return drawn

    def deplete(self) -> float:
        """Drain whatever is left (premature-exhaustion injection)."""
        return self.draw(self.residual)

    def restore_consumed(self, joules: float) -> None:
        """Adopt a checkpointed consumed total without re-drawing.

        Resume support: the energy was drawn (and its telemetry
        emitted) by the original process, so restoring must not run
        the draw path again — it would double-count threshold events.
        Only the gauge is refreshed to the restored level.
        """
        if joules < 0:
            raise ValueError("consumed energy cannot be negative")
        if joules > self.capacity_joules:
            raise ValueError(
                f"consumed {joules} J exceeds capacity "
                f"{self.capacity_joules} J"
            )
        self._consumed = joules
        if self._gauge is not None:
            self._gauge.set(self.fraction_remaining, node=self._node_id)

    def budget_for(
        self, operation_time_s: float, seconds_per_frame: float
    ) -> float:
        """Current per-frame budget given the residual capacity."""
        return frame_budget(self.residual, operation_time_s, seconds_per_frame)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Battery(residual={self.residual:.0f} J of "
            f"{self.capacity_joules:.0f} J)"
        )

"""Battery state and per-frame energy budgets.

Section VI: "the energy budget is computed by first defining an
expected operation time (e.g., 6 hours) and an expected frame rate
(e.g., image frames are processed every 2 seconds) ... the residual
energy capacity is divided by the number of frames to compute the
energy budget for each frame."
"""

from __future__ import annotations


def frame_budget(
    residual_joules: float,
    operation_time_s: float,
    seconds_per_frame: float,
) -> float:
    """Per-frame energy budget ``B_j``.

    Args:
        residual_joules: Remaining battery capacity.
        operation_time_s: Required remaining operation time.
        seconds_per_frame: Processing cadence (e.g. one frame every 2 s).

    Returns:
        Joules available per processed frame.
    """
    if residual_joules < 0:
        raise ValueError("residual energy cannot be negative")
    if operation_time_s <= 0 or seconds_per_frame <= 0:
        raise ValueError("operation time and cadence must be positive")
    frames_needed = operation_time_s / seconds_per_frame
    return residual_joules / frames_needed


class Battery:
    """A camera sensor's battery with draw accounting.

    A typical smartphone battery holds ~10 Wh = 36 kJ; the default
    matches the Asus Zen II's ~3000 mAh pack.
    """

    def __init__(self, capacity_joules: float = 41000.0) -> None:
        if capacity_joules <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_joules = capacity_joules
        self._consumed = 0.0

    @property
    def consumed(self) -> float:
        return self._consumed

    @property
    def residual(self) -> float:
        return max(0.0, self.capacity_joules - self._consumed)

    @property
    def is_depleted(self) -> bool:
        return self.residual <= 0.0

    @property
    def fraction_remaining(self) -> float:
        return self.residual / self.capacity_joules

    def draw(self, joules: float) -> float:
        """Consume energy; returns the amount actually drawn (clamped
        at the residual capacity).

        Overdraw never goes negative: a draw larger than the residual
        depletes the battery exactly, and callers can tell from the
        shortfall in the return value (and from :attr:`is_depleted`)
        that the node must stop processing and transmitting.
        """
        if joules < 0:
            raise ValueError("cannot draw negative energy")
        drawn = min(joules, self.residual)
        self._consumed += drawn
        return drawn

    def deplete(self) -> float:
        """Drain whatever is left (premature-exhaustion injection)."""
        return self.draw(self.residual)

    def budget_for(
        self, operation_time_s: float, seconds_per_frame: float
    ) -> float:
        """Current per-frame budget given the residual capacity."""
        return frame_budget(self.residual, operation_time_s, seconds_per_frame)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Battery(residual={self.residual:.0f} J of "
            f"{self.capacity_joules:.0f} J)"
        )

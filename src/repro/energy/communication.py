"""Communication energy model.

The paper estimates each camera's communication cost ``C_j`` by
transferring JPEG-compressed frames over WiFi in good conditions and
monitoring the consumed energy; since sensors actually transfer only
cropped detection areas, using the whole frame gives a conservative
upper bound (Section VI, "Computing energy costs and budget").  ``C_j``
is independent of the assigned algorithm but depends on the capture
resolution and the link quality.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Effective JPEG compression: bytes per pixel for surveillance-style
#: content at default quality.
JPEG_BYTES_PER_PIXEL = 0.15

#: WiFi transmission energy per byte on a smartphone radio in good
#: conditions (order of magnitude from PowerTutor-style measurements).
WIFI_JOULES_PER_BYTE = 5.0e-7


def jpeg_frame_bytes(width: int, height: int) -> int:
    """Approximate JPEG size of a full frame."""
    if width <= 0 or height <= 0:
        raise ValueError("resolution must be positive")
    return int(round(width * height * JPEG_BYTES_PER_PIXEL))


@dataclass(frozen=True)
class CommunicationEnergyModel:
    """Per-camera communication cost model.

    Attributes:
        width: Capture width in pixels.
        height: Capture height in pixels.
        link_quality: Multiplier >= 1 on the per-byte energy; 1.0 means
            the paper's "good conditions", larger values model weaker
            links that need retransmissions/lower rates.
        joules_per_byte: Base radio energy per byte.
    """

    width: int
    height: int
    link_quality: float = 1.0
    joules_per_byte: float = WIFI_JOULES_PER_BYTE

    def __post_init__(self) -> None:
        if self.link_quality < 1.0:
            raise ValueError(
                f"link_quality must be >= 1, got {self.link_quality}"
            )
        if self.joules_per_byte <= 0:
            raise ValueError("joules_per_byte must be positive")

    def transfer_energy(self, num_bytes: int) -> float:
        """Joules to ship ``num_bytes`` to the controller."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes * self.joules_per_byte * self.link_quality

    def per_frame_cost(self) -> float:
        """The conservative per-frame bound ``C_j``: one full JPEG frame."""
        return self.transfer_energy(jpeg_frame_bytes(self.width, self.height))

    def metadata_cost(self, num_objects: int) -> float:
        """Energy to upload detection metadata: 172 bytes per object."""
        if num_objects < 0:
            raise ValueError("num_objects must be non-negative")
        return self.transfer_energy(172 * num_objects)

    def feature_upload_cost(self, num_frames: int, bytes_per_frame: int = 16720) -> float:
        """Energy to upload frame features (~16 KB per frame: the
        4180-dim float vector of Section V-A)."""
        if num_frames < 0:
            raise ValueError("num_frames must be non-negative")
        return self.transfer_energy(num_frames * bytes_per_frame)

"""Energy substrate.

Models the three energy quantities EECS optimises against (Sections
IV and VI): per-frame processing cost of each detection algorithm
(resolution-dependent, fitted to the Joule figures of Tables II-III),
algorithm-independent communication cost of shipping detections to the
controller, and per-camera batteries with per-frame budgets derived
from the desired operation time and frame rate.
"""

from repro.energy.battery import Battery, frame_budget
from repro.energy.communication import (
    CommunicationEnergyModel,
    jpeg_frame_bytes,
)
from repro.energy.meter import EnergyLedger, EnergyMeter
from repro.energy.model import (
    ProcessingEnergyModel,
    processing_energy,
    processing_time,
)

__all__ = [
    "Battery",
    "frame_budget",
    "CommunicationEnergyModel",
    "jpeg_frame_bytes",
    "EnergyLedger",
    "EnergyMeter",
    "ProcessingEnergyModel",
    "processing_energy",
    "processing_time",
]

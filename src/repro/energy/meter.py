"""Energy metering and ledgers.

A PowerTutor-style accounting layer: every Joule spent anywhere in a
simulation is recorded against a (camera, category) pair so that
experiment harnesses can report totals, per-camera breakdowns and
processing/communication splits — the quantities plotted in
Figs. 4-6 of the paper.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.core import Telemetry


@dataclass
class EnergyLedger:
    """Energy record for one camera."""

    camera_id: str
    by_category: dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )

    @property
    def total(self) -> float:
        return sum(self.by_category.values())

    def record(self, category: str, joules: float) -> None:
        if joules < 0:
            raise ValueError("cannot record negative energy")
        self.by_category[category] += joules


class EnergyMeter:
    """Network-wide energy accounting.

    With a :class:`~repro.telemetry.core.Telemetry` attached, every
    recorded Joule also increments the
    ``energy_joules_total{node,category}`` counter; accounting totals
    themselves are unaffected.
    """

    PROCESSING = "processing"
    COMMUNICATION = "communication"
    RETRANSMISSION = "retransmission"

    def __init__(self, telemetry: "Telemetry | None" = None) -> None:
        self._ledgers: dict[str, EnergyLedger] = {}
        self.telemetry = telemetry
        self._counter = (
            telemetry.energy_counter() if telemetry is not None else None
        )

    def ledger(self, camera_id: str) -> EnergyLedger:
        if camera_id not in self._ledgers:
            self._ledgers[camera_id] = EnergyLedger(camera_id=camera_id)
        return self._ledgers[camera_id]

    def record(self, camera_id: str, category: str, joules: float) -> None:
        """Record a consumption event."""
        self.ledger(camera_id).record(category, joules)
        if self._counter is not None:
            self._counter.inc(joules, node=camera_id, category=category)

    def record_processing(self, camera_id: str, joules: float) -> None:
        self.record(camera_id, self.PROCESSING, joules)

    def record_communication(self, camera_id: str, joules: float) -> None:
        self.record(camera_id, self.COMMUNICATION, joules)

    @property
    def camera_ids(self) -> list[str]:
        return list(self._ledgers)

    def total(self, camera_id: str | None = None) -> float:
        """Total Joules, for one camera or the whole network."""
        if camera_id is not None:
            return self.ledger(camera_id).total
        return sum(ledger.total for ledger in self._ledgers.values())

    def total_by_category(self, category: str) -> float:
        return sum(
            ledger.by_category.get(category, 0.0)
            for ledger in self._ledgers.values()
        )

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Nested dict copy: camera -> category -> Joules."""
        return {
            camera_id: dict(ledger.by_category)
            for camera_id, ledger in self._ledgers.items()
        }

    def restore(self, snapshot: dict[str, dict[str, float]]) -> None:
        """Adopt a :meth:`snapshot` payload (checkpoint resume).

        Bypasses the telemetry counter on purpose: the restored Joules
        were already counted when first recorded, and the resumed
        run's registry is rebuilt from its own metrics snapshot.
        """
        self._ledgers.clear()
        for camera_id, categories in snapshot.items():
            ledger = self.ledger(camera_id)
            for category, joules in categories.items():
                ledger.by_category[category] += float(joules)

    def reset(self) -> None:
        self._ledgers.clear()

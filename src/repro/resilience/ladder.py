"""Staged degradation ladder: active → degraded → quarantined.

:class:`ResilienceCoordinator` owns the per-camera
:class:`~repro.resilience.health.HealthMonitor` and one
:class:`~repro.resilience.breaker.CircuitBreaker` per camera link, and
turns health scores into *mode transitions* with hysteresis:

* health < ``degrade_below``      → **degraded** (cheapest profile)
* health < ``quarantine_below``   → **quarantined** (out of selection)
* health > ``readmit_above``      → back to **active**, with the
  camera's learned baselines reset (recalibration) so stale statistics
  from the faulty era don't immediately re-trip the monitor.

Quarantined cameras receive periodic cheap re-admission probes (a
one-frame assessment request); a clean probe raises health back over
the readmit threshold.  Every transition is recorded in the shared
fault log (``camera_degraded`` / ``camera_quarantined`` as fault
events, ``camera_readmitted`` / ``camera_recalibrated`` as recovery
events) so chaos checkpoint replay verification covers the ladder for
free.

The coordinator is deliberately passive: it never touches the network
or the controller directly.  The owning node calls :meth:`evaluate` on
its liveness tick and applies the returned transitions itself, which
keeps this module free of any engine/network dependency (see the layer
contract).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.controller import (
    CAMERA_ACTIVE,
    CAMERA_DEGRADED,
    CAMERA_MODES,
    CAMERA_QUARANTINED,
)
from repro.faults.events import FaultLog
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.health import HealthConfig, HealthMonitor


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunables for the graceful-degradation layer."""

    enabled: bool = False
    health: HealthConfig = field(default_factory=HealthConfig)
    breaker_failure_threshold: int = 3
    breaker_reset_s: float = 6.0
    breaker_backoff: float = 2.0
    breaker_max_reset_s: float = 60.0
    breaker_jitter_s: float = 0.5
    probe_interval_s: float = 8.0
    probe_frames: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        if self.probe_frames < 1:
            raise ValueError("probe_frames must be >= 1")

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "degrade_below": self.health.degrade_below,
            "quarantine_below": self.health.quarantine_below,
            "readmit_above": self.health.readmit_above,
            "breaker_failure_threshold": self.breaker_failure_threshold,
            "breaker_reset_s": self.breaker_reset_s,
            "probe_interval_s": self.probe_interval_s,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class ModeTransition:
    """One rung change on the degradation ladder."""

    time_s: float
    camera_id: str
    old_mode: str
    new_mode: str
    health: float


class ResilienceCoordinator:
    """Maps per-camera health onto the degradation ladder."""

    def __init__(
        self,
        config: ResilienceConfig | None = None,
        fault_log: FaultLog | None = None,
    ) -> None:
        self.config = config if config is not None else ResilienceConfig()
        self.fault_log = fault_log
        self.monitor = HealthMonitor(self.config.health)
        self.modes: dict[str, str] = {}
        self.transitions: list[ModeTransition] = []
        self._breakers: dict[str, CircuitBreaker] = {}
        self._last_probe: dict[str, float] = {}
        #: Called after a camera is readmitted; the owner hooks
        #: recalibration (baseline reset is done here already).
        self.on_readmit: Callable[[str, float], None] | None = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, camera_id: str) -> None:
        self.modes.setdefault(camera_id, CAMERA_ACTIVE)

    def mode(self, camera_id: str) -> str:
        return self.modes.get(camera_id, CAMERA_ACTIVE)

    @property
    def quarantined(self) -> list[str]:
        return [
            c for c, m in self.modes.items() if m == CAMERA_QUARANTINED
        ]

    # ------------------------------------------------------------------
    # Breakers
    # ------------------------------------------------------------------
    def breaker(self, camera_id: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one link."""
        existing = self._breakers.get(camera_id)
        if existing is not None:
            return existing
        cfg = self.config

        def log_transition(old: str, new: str, now: float) -> None:
            if self.fault_log is None:
                return
            detail = f"{old}->{new}"
            if new == "closed":
                self.fault_log.recovery(
                    now, "breaker_closed", camera_id, detail
                )
            else:
                self.fault_log.fault(
                    now, f"breaker_{new}", camera_id, detail
                )

        breaker = CircuitBreaker(
            failure_threshold=cfg.breaker_failure_threshold,
            reset_timeout_s=cfg.breaker_reset_s,
            backoff_factor=cfg.breaker_backoff,
            max_reset_timeout_s=cfg.breaker_max_reset_s,
            jitter_s=cfg.breaker_jitter_s,
            rng=np.random.default_rng(
                (cfg.seed, 0xB4EA4E5, zlib.crc32(camera_id.encode()))
            ),
            on_transition=log_transition,
        )
        self._breakers[camera_id] = breaker
        return breaker

    # ------------------------------------------------------------------
    # Ladder evaluation
    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> list[ModeTransition]:
        """Advance the ladder from current health; returns transitions.

        Call once per liveness tick.  Transient evidence (corruption,
        give-ups) decays here, so symptoms must keep arriving for a
        camera to stay unhealthy.
        """
        out: list[ModeTransition] = []
        for camera_id, mode in self.modes.items():
            health = self.monitor.health(camera_id)
            cfg = self.config.health
            new_mode = mode
            if mode != CAMERA_QUARANTINED and health < cfg.quarantine_below:
                new_mode = CAMERA_QUARANTINED
            elif mode == CAMERA_ACTIVE and health < cfg.degrade_below:
                new_mode = CAMERA_DEGRADED
            elif mode != CAMERA_ACTIVE and health > cfg.readmit_above:
                new_mode = CAMERA_ACTIVE
            if new_mode == mode:
                continue
            transition = ModeTransition(
                time_s=now,
                camera_id=camera_id,
                old_mode=mode,
                new_mode=new_mode,
                health=health,
            )
            self.modes[camera_id] = new_mode
            self.transitions.append(transition)
            out.append(transition)
            self._record(transition)
            if new_mode == CAMERA_ACTIVE:
                # Recalibrate on recovery: drop the baselines learned
                # during the faulty era so the readmitted camera starts
                # from a clean slate.
                self.monitor.reset_baseline(camera_id)
                if self.fault_log is not None:
                    self.fault_log.recovery(
                        now, "camera_recalibrated", camera_id
                    )
                if self.on_readmit is not None:
                    self.on_readmit(camera_id, now)
        self.monitor.decay_transients()
        return out

    def _record(self, transition: ModeTransition) -> None:
        if self.fault_log is None:
            return
        detail = (
            f"{transition.old_mode}->{transition.new_mode} "
            f"health={transition.health:.3f}"
        )
        if transition.new_mode == CAMERA_ACTIVE:
            self.fault_log.recovery(
                transition.time_s,
                "camera_readmitted",
                transition.camera_id,
                detail,
            )
        else:
            self.fault_log.fault(
                transition.time_s,
                f"camera_{transition.new_mode}",
                transition.camera_id,
                detail,
            )

    # ------------------------------------------------------------------
    # Re-admission probes
    # ------------------------------------------------------------------
    def due_probes(self, now: float) -> list[str]:
        """Quarantined cameras whose next cheap probe is due."""
        due: list[str] = []
        for camera_id in self.quarantined:
            last = self._last_probe.get(camera_id)
            if last is None or now - last >= self.config.probe_interval_s:
                self._last_probe[camera_id] = now
                due.append(camera_id)
        return due

    # ------------------------------------------------------------------
    # Live telemetry
    # ------------------------------------------------------------------
    def record_metrics(self, telemetry) -> None:
        """Mirror health, modes and breaker trips into a registry.

        Pure read: never draws rng, never changes ladder state, so an
        instrumented run stays bit-identical.  Called at each live
        flush so the ``/metrics`` page and alert rules (e.g.
        ``breaker_open_total > 3``, ``camera_health < 0.5``) see the
        resilience picture without waiting for the run to end.
        """
        registry = telemetry.registry
        health = registry.gauge(
            "camera_health",
            "Latest fused health score per camera (1.0 = healthy).",
            labels=("camera",),
        )
        mode_gauge = registry.gauge(
            "camera_mode",
            "Resilience ladder one-hot: 1 on the camera's current "
            "mode series, 0 elsewhere.",
            labels=("camera", "mode"),
        )
        opens = registry.counter(
            "breaker_open_total",
            "Circuit-breaker trips per camera link (lifetime).",
            labels=("camera",),
        )
        for camera_id, mode in sorted(self.modes.items()):
            health.set(self.monitor.health(camera_id), camera=camera_id)
            for candidate in CAMERA_MODES:
                mode_gauge.set(
                    1.0 if candidate == mode else 0.0,
                    camera=camera_id,
                    mode=candidate,
                )
        for camera_id, breaker in sorted(self._breakers.items()):
            # Advance the counter by the delta the registry has not
            # seen yet; deriving the cursor from the counter itself
            # keeps checkpoint resume (which restores both sides)
            # consistent with no extra state.
            delta = breaker.opened_total - opens.value(camera=camera_id)
            if delta > 0:
                opens.inc(delta, camera=camera_id)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "modes": dict(self.modes),
            "monitor": self.monitor.snapshot(),
            "breakers": {
                camera_id: breaker.snapshot()
                for camera_id, breaker in self._breakers.items()
            },
            "last_probe": dict(self._last_probe),
        }

    def restore(self, data: dict) -> None:
        for camera_id, mode in data["modes"].items():
            if mode not in CAMERA_MODES:
                raise ValueError(
                    f"checkpointed mode {mode!r} for camera "
                    f"{camera_id!r} is not one of {CAMERA_MODES}"
                )
            self.modes[camera_id] = mode
        self.monitor.restore(data["monitor"])
        for camera_id, state in data["breakers"].items():
            self.breaker(camera_id).restore(state)
        self._last_probe = {
            camera_id: float(t)
            for camera_id, t in data["last_probe"].items()
        }


def build_coordinator(
    config: ResilienceConfig | None,
    camera_ids: list[str],
    fault_log: FaultLog | None = None,
) -> ResilienceCoordinator | None:
    """Construct a coordinator for a deployment, or ``None`` when the
    resilience layer is disabled (the inert default)."""
    if config is None or not config.enabled:
        return None
    coordinator = ResilienceCoordinator(config=config, fault_log=fault_log)
    for camera_id in camera_ids:
        coordinator.register(camera_id)
    return coordinator


def config_with_thresholds(
    base: ResilienceConfig,
    degrade_below: float | None = None,
    quarantine_below: float | None = None,
    readmit_above: float | None = None,
) -> ResilienceConfig:
    """A copy of ``base`` with selected health thresholds overridden
    (used by the ``--health-*`` CLI flags)."""
    health = base.health
    health = replace(
        health,
        degrade_below=(
            degrade_below if degrade_below is not None else health.degrade_below
        ),
        quarantine_below=(
            quarantine_below
            if quarantine_below is not None
            else health.quarantine_below
        ),
        readmit_above=(
            readmit_above if readmit_above is not None else health.readmit_above
        ),
    )
    return replace(base, health=health)

"""Per-camera health scoring from telemetry the controller already sees.

The controller cannot look inside a camera — everything it knows
arrives over the radio: detection metadata, heartbeats carrying
battery residuals, transport acks (or their absence), and payloads
flagged as corrupted in flight.  :class:`HealthMonitor` folds those
observations into one health score per camera in ``[0, 1]``:

* **detection residuals** — per-(camera, algorithm) running baselines
  (Welford) of detection score and detection count, learned from the
  camera's own clean traffic during assessment; large standardized
  residuals against that baseline indicate sensor noise, calibration
  drift, or fabricated detections.  Baselines only absorb samples that
  are consistent with them, so a faulty camera cannot teach the
  monitor that garbage is normal.
* **stuck frames** — a camera replaying the same frame produces
  byte-identical score tuples at a repeated frame index; a repeat
  counter trips the channel.
* **corruption / transport give-ups** — decayed counters of garbled
  payloads and exhausted retry ladders on the camera's link.
* **heartbeat misses** — deliberately a *weak* signal (floored): a
  late heartbeat justifies degrading, never quarantining on its own,
  because clock skew and transient loss both mimic it.
* **battery slope** — drain rate estimated from consecutive heartbeat
  residuals; a camera burning energy far faster than the configured
  limit is failing even if its detections still look plausible.

The health score is the product of the channel subscores, so any
single hard failure drags the camera down while several mild symptoms
compound.  The monitor is pure bookkeeping: it draws no randomness and
performs no I/O, which keeps fault-free runs bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds and weights for :class:`HealthMonitor`."""

    min_samples: int = 6
    """Baseline observations per (camera, algorithm) before residuals count."""

    residual_z_limit: float = 4.0
    """Standardized residual where the residual channel starts to fail."""

    residual_alpha: float = 0.5
    """EWMA weight for folding new residual evidence into the channel."""

    stuck_limit: int = 2
    """Identical (frame_index, scores) repeats that trip the stuck channel."""

    corruption_limit: float = 2.0
    """Decayed corrupted-payload count where the channel starts to fail."""

    give_up_limit: float = 2.0
    """Decayed transport give-up count where the channel starts to fail."""

    miss_floor: float = 0.45
    """Lowest the heartbeat channel can go — misses degrade, never quarantine."""

    miss_penalty: float = 0.2
    """Health multiplier lost per consecutive heartbeat miss."""

    battery_slope_limit_j_s: float = 25.0
    """Drain rate (J/s) beyond which the battery channel starts to fail."""

    transient_decay: float = 0.5
    """Per-evaluation decay applied to corruption/give-up counters."""

    degrade_below: float = 0.65
    """Health below which an active camera is downgraded."""

    quarantine_below: float = 0.35
    """Health below which a camera is quarantined."""

    readmit_above: float = 0.85
    """Health a degraded/quarantined camera must regain to be readmitted."""

    def __post_init__(self) -> None:
        if self.min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if not 0.0 < self.residual_alpha <= 1.0:
            raise ValueError("residual_alpha must be in (0, 1]")
        if not 0.0 <= self.transient_decay < 1.0:
            raise ValueError("transient_decay must be in [0, 1)")
        if not (
            0.0
            <= self.quarantine_below
            < self.degrade_below
            < self.readmit_above
            <= 1.0
        ):
            raise ValueError(
                "thresholds must satisfy 0 <= quarantine_below < "
                "degrade_below < readmit_above <= 1"
            )


@dataclass
class _Baseline:
    """Welford running mean/variance for one scalar stream."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self.m2 / (self.count - 1))

    def z(self, value: float) -> float:
        sigma = max(self.std, 1e-6)
        return (value - self.mean) / sigma

    def to_dict(self) -> dict:
        return {"count": self.count, "mean": self.mean, "m2": self.m2}

    @classmethod
    def from_dict(cls, data: dict) -> "_Baseline":
        return cls(
            count=int(data["count"]),
            mean=float(data["mean"]),
            m2=float(data["m2"]),
        )


@dataclass
class _CameraHealth:
    """Mutable per-camera channel state."""

    score_baselines: dict[str, _Baseline] = field(default_factory=dict)
    count_baselines: dict[str, _Baseline] = field(default_factory=dict)
    residual: float = 0.0
    last_signature: tuple | None = None
    repeats: int = 0
    corrupted: float = 0.0
    give_ups: float = 0.0
    misses: int = 0
    last_battery: tuple[float, float] | None = None
    battery_slope: float = 0.0


class HealthMonitor:
    """Folds controller-side telemetry into per-camera health scores."""

    def __init__(self, config: HealthConfig | None = None) -> None:
        self.config = config if config is not None else HealthConfig()
        self._cameras: dict[str, _CameraHealth] = {}

    def _state(self, camera_id: str) -> _CameraHealth:
        state = self._cameras.get(camera_id)
        if state is None:
            state = self._cameras[camera_id] = _CameraHealth()
        return state

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def observe_detections(
        self,
        camera_id: str,
        algorithm: str,
        frame_index: int,
        scores: list[float],
    ) -> None:
        """Fold one detection-metadata message into the residual channels."""
        cfg = self.config
        state = self._state(camera_id)
        signature = (frame_index, tuple(round(s, 9) for s in scores))
        if signature == state.last_signature:
            state.repeats += 1
        else:
            state.last_signature = signature
            state.repeats = 0

        count_base = state.count_baselines.setdefault(algorithm, _Baseline())
        score_base = state.score_baselines.setdefault(algorithm, _Baseline())
        z_values: list[float] = []
        if count_base.count >= cfg.min_samples:
            z_values.append(count_base.z(float(len(scores))))
        if scores and score_base.count >= cfg.min_samples:
            mean_score = sum(scores) / len(scores)
            z_values.append(score_base.z(mean_score))

        z = max((abs(v) for v in z_values), default=0.0)
        state.residual += cfg.residual_alpha * (z - state.residual)

        # Only learn from traffic consistent with the baseline so a
        # faulty camera cannot normalise its own garbage.
        if z <= cfg.residual_z_limit:
            count_base.update(float(len(scores)))
            if scores:
                score_base.update(sum(scores) / len(scores))

    def observe_corruption(self, camera_id: str) -> None:
        self._state(camera_id).corrupted += 1.0

    def observe_give_up(self, camera_id: str) -> None:
        self._state(camera_id).give_ups += 1.0

    def observe_heartbeat(
        self, camera_id: str, time_s: float, residual_joules: float | None
    ) -> None:
        state = self._state(camera_id)
        state.misses = 0
        if residual_joules is None:
            return
        if state.last_battery is not None:
            prev_t, prev_j = state.last_battery
            dt = time_s - prev_t
            if dt > 1e-9:
                state.battery_slope = max(0.0, (prev_j - residual_joules) / dt)
        state.last_battery = (time_s, residual_joules)

    def observe_miss(self, camera_id: str) -> None:
        self._state(camera_id).misses += 1

    def reset_baseline(self, camera_id: str) -> None:
        """Recalibrate: forget learned baselines and transient symptoms."""
        state = self._state(camera_id)
        state.score_baselines.clear()
        state.count_baselines.clear()
        state.residual = 0.0
        state.last_signature = None
        state.repeats = 0
        state.corrupted = 0.0
        state.give_ups = 0.0
        state.misses = 0
        state.battery_slope = 0.0

    def decay_transients(self) -> None:
        """Age corruption/give-up evidence; call once per evaluation tick."""
        decay = self.config.transient_decay
        for state in self._cameras.values():
            state.corrupted *= decay
            state.give_ups *= decay
            if state.corrupted < 1e-3:
                state.corrupted = 0.0
            if state.give_ups < 1e-3:
                state.give_ups = 0.0

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def channels(self, camera_id: str) -> dict[str, float]:
        """Per-channel subscores in [0, 1] for one camera."""
        cfg = self.config
        state = self._cameras.get(camera_id)
        if state is None:
            return {
                "residual": 1.0,
                "stuck": 1.0,
                "corruption": 1.0,
                "transport": 1.0,
                "heartbeat": 1.0,
                "battery": 1.0,
            }
        residual = 1.0
        if state.residual > cfg.residual_z_limit:
            residual = cfg.residual_z_limit / state.residual
        stuck = 1.0 if state.repeats < cfg.stuck_limit else 0.15
        corruption = 1.0
        if state.corrupted > cfg.corruption_limit:
            corruption = cfg.corruption_limit / state.corrupted
        transport = 1.0
        if state.give_ups > cfg.give_up_limit:
            transport = cfg.give_up_limit / state.give_ups
        heartbeat = max(
            cfg.miss_floor, 1.0 - cfg.miss_penalty * state.misses
        )
        battery = 1.0
        limit = cfg.battery_slope_limit_j_s
        if limit > 0 and state.battery_slope > limit:
            battery = limit / state.battery_slope
        return {
            "residual": residual,
            "stuck": stuck,
            "corruption": corruption,
            "transport": transport,
            "heartbeat": heartbeat,
            "battery": battery,
        }

    def health(self, camera_id: str) -> float:
        score = 1.0
        for value in self.channels(camera_id).values():
            score *= value
        return score

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        out: dict[str, dict] = {}
        for camera_id, state in self._cameras.items():
            out[camera_id] = {
                "score_baselines": {
                    alg: base.to_dict()
                    for alg, base in state.score_baselines.items()
                },
                "count_baselines": {
                    alg: base.to_dict()
                    for alg, base in state.count_baselines.items()
                },
                "residual": state.residual,
                "last_signature": (
                    [state.last_signature[0], list(state.last_signature[1])]
                    if state.last_signature is not None
                    else None
                ),
                "repeats": state.repeats,
                "corrupted": state.corrupted,
                "give_ups": state.give_ups,
                "misses": state.misses,
                "last_battery": (
                    list(state.last_battery)
                    if state.last_battery is not None
                    else None
                ),
                "battery_slope": state.battery_slope,
            }
        return out

    def restore(self, data: dict) -> None:
        self._cameras.clear()
        for camera_id, payload in data.items():
            state = _CameraHealth(
                score_baselines={
                    alg: _Baseline.from_dict(base)
                    for alg, base in payload["score_baselines"].items()
                },
                count_baselines={
                    alg: _Baseline.from_dict(base)
                    for alg, base in payload["count_baselines"].items()
                },
                residual=float(payload["residual"]),
                repeats=int(payload["repeats"]),
                corrupted=float(payload["corrupted"]),
                give_ups=float(payload["give_ups"]),
                misses=int(payload["misses"]),
                battery_slope=float(payload["battery_slope"]),
            )
            signature = payload["last_signature"]
            if signature is not None:
                state.last_signature = (
                    int(signature[0]),
                    tuple(float(s) for s in signature[1]),
                )
            battery = payload["last_battery"]
            if battery is not None:
                state.last_battery = (float(battery[0]), float(battery[1]))
            self._cameras[camera_id] = state

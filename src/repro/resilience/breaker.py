"""Circuit breaker for camera links.

A :class:`CircuitBreaker` guards one controller→camera link.  The
stop-and-wait transport already retries each message with exponential
backoff, but every *new* message starts its retry ladder from scratch:
a dead or partitioned camera turns into a retry storm where each
assessment request, assignment and probe burns its full retry budget.
The breaker sits above the transport and cuts that off:

* **closed** — traffic flows; consecutive give-ups are counted.
* **open** — after ``failure_threshold`` consecutive give-ups the
  breaker trips: sends are refused outright (counted, no radio energy,
  no retry ladder) until a reset timeout expires.  The timeout grows
  exponentially with consecutive trips and carries seeded jitter so a
  fleet of breakers does not retry in lockstep.
* **half-open** — after the timeout one probe message is let through;
  its ack closes the breaker, another give-up re-opens it with a
  longer timeout.

All randomness comes from the seeded generator handed in at
construction, and the generator is only drawn when the breaker
*opens* — a breaker on a healthy link never consumes a draw, which
keeps fault-free runs bit-identical.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed → open → half-open state machine for one link."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 6.0,
        backoff_factor: float = 2.0,
        max_reset_timeout_s: float = 60.0,
        jitter_s: float = 0.5,
        rng: np.random.Generator | None = None,
        on_transition: Callable[[str, str, float], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if jitter_s < 0:
            raise ValueError("jitter_s cannot be negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.backoff_factor = backoff_factor
        self.max_reset_timeout_s = max_reset_timeout_s
        self.jitter_s = jitter_s
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.on_transition = on_transition
        self.state = CLOSED
        self.consecutive_failures = 0
        self.consecutive_opens = 0
        #: Lifetime trip count (unlike ``consecutive_opens`` it never
        #: resets on recovery) — the live-telemetry layer mirrors it
        #: into the ``breaker_open_total`` counter alert rules watch.
        self.opened_total = 0
        self.retry_at = 0.0
        self.blocked = 0
        self._probe_in_flight = False

    def _transition(self, new_state: str, now: float) -> None:
        old, self.state = self.state, new_state
        if old != new_state and self.on_transition is not None:
            self.on_transition(old, new_state, now)

    def _open(self, now: float) -> None:
        timeout = min(
            self.max_reset_timeout_s,
            self.reset_timeout_s
            * self.backoff_factor**self.consecutive_opens,
        )
        if self.jitter_s > 0:
            timeout += float(self.rng.uniform(0.0, self.jitter_s))
        self.consecutive_opens += 1
        self.opened_total += 1
        self.retry_at = now + timeout
        self._probe_in_flight = False
        self._transition(OPEN, now)

    def allow(self, now: float) -> bool:
        """May a message be sent to this link right now?

        In the half-open state exactly one probe is allowed per call
        sequence; further sends are refused until the probe resolves.
        Refusals are tallied in :attr:`blocked`.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now >= self.retry_at:
                self._transition(HALF_OPEN, now)
                self._probe_in_flight = True
                return True
            self.blocked += 1
            return False
        # half-open: one probe at a time
        if self._probe_in_flight:
            self.blocked += 1
            return False
        self._probe_in_flight = True
        return True

    def record_success(self, now: float) -> None:
        """An ack arrived: the link works again."""
        self.consecutive_failures = 0
        self.consecutive_opens = 0
        self._probe_in_flight = False
        if self.state != CLOSED:
            self._transition(CLOSED, now)

    def record_failure(self, now: float) -> None:
        """A message exhausted its retries (or a probe failed)."""
        if self.state == HALF_OPEN:
            self._open(now)
            return
        if self.state == OPEN:
            return  # already tripped; nothing new to learn
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self._open(now)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "consecutive_opens": self.consecutive_opens,
            "opened_total": self.opened_total,
            "retry_at": self.retry_at,
            "blocked": self.blocked,
            "probe_in_flight": self._probe_in_flight,
        }

    def restore(self, state: dict) -> None:
        self.state = str(state["state"])
        self.consecutive_failures = int(state["consecutive_failures"])
        self.consecutive_opens = int(state["consecutive_opens"])
        # Absent in pre-live-telemetry checkpoints; 0 keeps the mirror
        # counter consistent (it only ever advances by deltas).
        self.opened_total = int(state.get("opened_total", 0))
        self.retry_at = float(state["retry_at"])
        self.blocked = int(state["blocked"])
        self._probe_in_flight = bool(state["probe_in_flight"])

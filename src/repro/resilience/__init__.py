"""Graceful degradation for camera sensor networks.

This package sits between :mod:`repro.faults` (which *injects*
partial failures) and :mod:`repro.engine` (which must keep detecting
through them).  It provides:

* :class:`~repro.resilience.health.HealthMonitor` — per-camera health
  scores folded from controller-visible telemetry.
* :class:`~repro.resilience.breaker.CircuitBreaker` — seeded,
  jittered closed/open/half-open breakers on camera links.
* :class:`~repro.resilience.ladder.ResilienceCoordinator` — the
  staged ladder active → degraded → quarantined, with re-admission
  probes and recalibration on recovery.

Everything here is inert unless a :class:`ResilienceConfig` with
``enabled=True`` is wired into a deployment: fault-free runs stay
bit-identical to the goldens whether the layer is on or off.
"""

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.health import HealthConfig, HealthMonitor
from repro.resilience.ladder import (
    ModeTransition,
    ResilienceConfig,
    ResilienceCoordinator,
    build_coordinator,
    config_with_thresholds,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "HealthConfig",
    "HealthMonitor",
    "ModeTransition",
    "ResilienceConfig",
    "ResilienceCoordinator",
    "build_coordinator",
    "config_with_thresholds",
]

"""Frame rendering for the synthetic world.

The renderer produces, per camera and frame:

* an :class:`ObjectView` record for every pedestrian whose projection
  falls inside the image — bounding box in nominal pixel coordinates
  plus the visibility attributes (pixel height, occlusion fraction,
  contrast) that the detector response models consume;
* a list of static clutter regions (furniture-like distractors) that
  seed false-positive candidates, denser in the "chap"-style
  environment;
* a small grayscale image with per-camera background texture, used by
  the feature-extraction pipeline (HOG + keypoints) for the domain
  adaptation similarity of Section III.

Images are rendered at a reduced canvas size for speed; bounding boxes
stay in the environment's nominal resolution so geometry (homographies,
re-identification) is unaffected.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.geometry.camera import PinholeCamera
from repro.world.environment import Environment
from repro.world.scene import Scene


@dataclass(frozen=True)
class ObjectView:
    """How one pedestrian appears in one camera's frame.

    Attributes:
        person_id: Ground-truth identity of the pedestrian.
        bbox: ``(x, y, w, h)`` in nominal pixel coordinates.
        pixel_height: Height of the projected body in nominal pixels.
        occlusion: Fraction of the body covered by nearer pedestrians,
            in ``[0, 1]``.
        contrast: Object/background contrast in ``[0, 1]``.
        distance: Distance from the camera along the optical axis (m).
        shade: Clothing intensity — the appearance signature colour
            features are derived from.
        ground_xy: The pedestrian's true ground-plane position.
    """

    person_id: int
    bbox: tuple[float, float, float, float]
    pixel_height: float
    occlusion: float
    contrast: float
    distance: float
    shade: float
    ground_xy: tuple[float, float]

    @property
    def fully_occluded(self) -> bool:
        return self.occlusion >= 0.999


@dataclass
class FrameObservation:
    """Everything a camera sees in one frame."""

    camera_id: str
    frame_index: int
    objects: list[ObjectView]
    clutter_regions: list[tuple[float, float, float, float]]
    image: np.ndarray
    image_scale: float = 1.0

    @property
    def visible_objects(self) -> list[ObjectView]:
        """Objects that are not fully occluded."""
        return [view for view in self.objects if not view.fully_occluded]


def _bbox_overlap_area(
    a: tuple[float, float, float, float],
    b: tuple[float, float, float, float],
) -> float:
    ax, ay, aw, ah = a
    bx, by, bw, bh = b
    ix = max(0.0, min(ax + aw, bx + bw) - max(ax, bx))
    iy = max(0.0, min(ay + ah, by + bh) - max(ay, by))
    return ix * iy


class Renderer:
    """Renders a scene into per-camera frame observations."""

    #: Width of the reduced-resolution canvas used for feature images.
    RENDER_WIDTH = 160

    def __init__(
        self,
        scene: Scene,
        camera: PinholeCamera,
        noise_sigma: float = 0.02,
    ) -> None:
        self.scene = scene
        self.camera = camera
        self.noise_sigma = noise_sigma
        env = scene.environment
        self._env = env
        aspect = env.height / env.width
        self._render_w = self.RENDER_WIDTH
        self._render_h = max(8, int(round(self.RENDER_WIDTH * aspect)))
        self._scale = self._render_w / env.width
        # zlib.crc32 is stable across processes (unlike hash(), which
        # is randomised per interpreter for strings) — scene content
        # must be reproducible run to run.
        cam_seed = (
            env.seed * 2654435761 + zlib.crc32(camera.camera_id.encode())
        ) % (2**32)
        self._rng = np.random.default_rng(cam_seed)
        self._background = self._make_background()
        self._clutter = self._make_clutter()

    # ------------------------------------------------------------------
    # Static per-camera content
    # ------------------------------------------------------------------
    def _make_background(self) -> np.ndarray:
        """Smooth random texture field, unique per camera but sharing the
        environment's brightness/texture statistics (so same-dataset
        cameras look alike at the feature level — this is what drives
        the block structure of the paper's Table V)."""
        env = self._env
        field_ = self._rng.normal(size=(self._render_h, self._render_w))
        sigma = env.texture_scale * self._scale
        smooth = ndimage.gaussian_filter(field_, sigma=max(1.0, sigma))
        std = smooth.std()
        if std > 1e-9:
            smooth = smooth / std
        base = env.brightness + 0.12 * smooth
        # Structured wall/floor texture: an oriented grating whose
        # orientation is anchored per dataset (environment seed) with a
        # per-camera offset.  Gradient-based features latch onto it, so
        # feeds from the same camera look alike and feeds from the same
        # dataset share a family resemblance — the signal behind the
        # paper's Table V block structure.
        dataset_angle = (env.seed % 180) * np.pi / 180.0
        camera_angle = dataset_angle + self._rng.uniform(-0.25, 0.25)
        wavelength = max(4.0, env.texture_scale * self._scale * 1.5)
        ys, xs = np.mgrid[0 : self._render_h, 0 : self._render_w]
        phase = (
            2.0
            * np.pi
            / wavelength
            * (xs * np.cos(camera_angle) + ys * np.sin(camera_angle))
        )
        base = base + 0.08 * np.sin(phase + self._rng.uniform(0, 2 * np.pi))
        # A horizon gradient separates indoor (flat) from outdoor scenes.
        if not env.indoor:
            rows = np.linspace(0.12, -0.05, self._render_h)[:, None]
            base = base + rows
        return np.clip(base, 0.0, 1.0)

    def _make_clutter(self) -> list[tuple[float, float, float, float]]:
        """Static furniture-like rectangles in nominal pixel coordinates."""
        env = self._env
        count = int(round(env.clutter * 14))
        regions = []
        for _ in range(count):
            w = self._rng.uniform(0.05, 0.14) * env.width
            h = self._rng.uniform(0.12, 0.35) * env.height
            x = self._rng.uniform(0, env.width - w)
            y = self._rng.uniform(0.35 * env.height, env.height - h)
            regions.append((float(x), float(y), float(w), float(h)))
        return regions

    @property
    def clutter_regions(self) -> list[tuple[float, float, float, float]]:
        return list(self._clutter)

    # ------------------------------------------------------------------
    # Per-frame rendering
    # ------------------------------------------------------------------
    def _project_person(self, person) -> ObjectView | None:
        env = self._env
        x, y = person.position
        foot = np.array([x, y, 0.0])
        head = np.array([x, y, person.height_m])
        uv_foot = self.camera.project(foot)
        uv_head = self.camera.project(head)
        if np.any(np.isnan(uv_foot)) or np.any(np.isnan(uv_head)):
            return None
        depth = float(self.camera.depth_of(foot))
        if depth <= 0.1:
            return None
        pixel_height = abs(float(uv_foot[1] - uv_head[1]))
        pixel_width = (
            person.width_m * self.camera.intrinsics.focal_px / depth
        )
        bx = float(uv_foot[0] - pixel_width / 2.0)
        by = float(min(uv_head[1], uv_foot[1]))
        bbox = (bx, by, float(pixel_width), pixel_height)
        # Reject boxes entirely outside the image.
        if (
            bx + pixel_width < 0
            or bx > env.width
            or by + pixel_height < 0
            or by > env.height
        ):
            return None
        local_bg = self._background[
            min(self._render_h - 1, max(0, int(by * self._scale))),
            min(self._render_w - 1, max(0, int((bx + pixel_width / 2) * self._scale))),
        ]
        raw_contrast = abs(person.shade - float(local_bg))
        contrast = float(np.clip(raw_contrast * (0.5 + env.contrast), 0, 1))
        return ObjectView(
            person_id=person.person_id,
            bbox=bbox,
            pixel_height=pixel_height,
            occlusion=0.0,
            contrast=contrast,
            distance=depth,
            shade=person.shade,
            ground_xy=(float(x), float(y)),
        )

    def _with_occlusions(self, views: list[ObjectView]) -> list[ObjectView]:
        """Compute mutual occlusion: nearer bodies cover farther ones."""
        ordered = sorted(views, key=lambda v: v.distance)
        out = []
        for idx, view in enumerate(ordered):
            area = view.bbox[2] * view.bbox[3]
            if area <= 0:
                continue
            covered = 0.0
            for nearer in ordered[:idx]:
                covered += _bbox_overlap_area(view.bbox, nearer.bbox)
            occlusion = float(np.clip(covered / area, 0.0, 1.0))
            out.append(
                ObjectView(
                    person_id=view.person_id,
                    bbox=view.bbox,
                    pixel_height=view.pixel_height,
                    occlusion=occlusion,
                    contrast=view.contrast,
                    distance=view.distance,
                    shade=view.shade,
                    ground_xy=view.ground_xy,
                )
            )
        return out

    def _paint(self, views: list[ObjectView]) -> np.ndarray:
        """Paint the frame image: background, clutter, then people
        far-to-near so nearer bodies overwrite farther ones."""
        img = np.array(self._background)
        h, w = img.shape
        for (cx, cy, cw, ch) in self._clutter:
            x0 = int(np.clip(cx * self._scale, 0, w - 1))
            y0 = int(np.clip(cy * self._scale, 0, h - 1))
            x1 = int(np.clip((cx + cw) * self._scale, x0 + 1, w))
            y1 = int(np.clip((cy + ch) * self._scale, y0 + 1, h))
            img[y0:y1, x0:x1] = np.clip(
                img[y0:y1, x0:x1] * 0.6 + 0.15, 0, 1
            )
        for view in sorted(views, key=lambda v: -v.distance):
            bx, by, bw, bh = view.bbox
            x0 = int(np.clip(bx * self._scale, 0, w - 1))
            y0 = int(np.clip(by * self._scale, 0, h - 1))
            x1 = int(np.clip((bx + bw) * self._scale, x0 + 1, w))
            y1 = int(np.clip((by + bh) * self._scale, y0 + 1, h))
            img[y0:y1, x0:x1] = view.shade
            # A lighter head band gives people a vertical structure that
            # the gradient-based features can latch onto.
            head_h = max(1, (y1 - y0) // 6)
            img[y0 : y0 + head_h, x0:x1] = np.clip(view.shade + 0.25, 0, 1)
        noise = self._rng.normal(scale=self.noise_sigma, size=img.shape)
        # float32 halves the memory of cached frame stacks.
        return np.clip(img + noise, 0.0, 1.0).astype(np.float32)

    def render(self, frame_index: int | None = None) -> FrameObservation:
        """Render the camera's view of the current scene state."""
        if frame_index is None:
            frame_index = self.scene.frame_index
        raw_views = []
        for person in self.scene.pedestrians:
            view = self._project_person(person)
            if view is not None:
                raw_views.append(view)
        views = self._with_occlusions(raw_views)
        image = self._paint(views)
        return FrameObservation(
            camera_id=self.camera.camera_id,
            frame_index=frame_index,
            objects=views,
            clutter_regions=list(self._clutter),
            image=image,
            image_scale=self._scale,
        )

"""Synthetic multi-camera world substrate.

The paper evaluates EECS on three public multi-camera pedestrian
datasets (EPFL "lab", Graz "chap", EPFL "terrace").  Those videos are
not redistributable and OpenCV is unavailable in this environment, so
this package provides the closest synthetic equivalent: a ground-plane
world populated with random-waypoint pedestrians, observed by four
calibrated overlapping pinhole cameras, rendered into small grayscale
frames with per-environment texture/clutter/brightness statistics.

The rest of the system consumes the exact artefacts the paper's
pipeline consumes — scored bounding boxes, frame features, ground
truth locations and per-camera homographies — so every EECS code path
is exercised unchanged.
"""

from repro.world.environment import Environment
from repro.world.pedestrian import Pedestrian, RandomWaypointWalker
from repro.world.renderer import FrameObservation, ObjectView, Renderer
from repro.world.scene import Scene, make_camera_ring

__all__ = [
    "Environment",
    "Pedestrian",
    "RandomWaypointWalker",
    "FrameObservation",
    "ObjectView",
    "Renderer",
    "Scene",
    "make_camera_ring",
]

"""Pedestrian motion models.

People walk on the ground plane following the random-waypoint model
widely used in mobile-network simulation: pick a uniform random target
inside the walkable region, walk towards it at a per-person speed,
pause briefly, repeat.  This reproduces the "people walking in the
room" behaviour of the evaluation datasets, including the mutual
occlusions that make some views miss objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Pedestrian:
    """A person on the ground plane.

    Attributes:
        person_id: Stable identifier used as re-identification ground
            truth.
        position: ``(x, y)`` ground-plane location in metres.
        height_m: Body height in metres.
        width_m: Body width (shoulder span) in metres.
        shade: Clothing intensity in ``[0, 1]`` used by the renderer; it
            doubles as a crude appearance signature for colour features.
    """

    person_id: int
    position: np.ndarray
    height_m: float = 1.7
    width_m: float = 0.5
    shade: float = 0.4

    def footprint(self) -> np.ndarray:
        """Ground-plane position as a copy."""
        return np.array(self.position, dtype=float)


@dataclass
class RandomWaypointWalker:
    """Random-waypoint controller for one pedestrian.

    Attributes:
        pedestrian: The controlled person.
        bounds: ``(x_min, y_min, x_max, y_max)`` walkable rectangle.
        speed: Walking speed in metres per second.
        pause_frames: Frames to dwell at each reached waypoint.
    """

    pedestrian: Pedestrian
    bounds: tuple[float, float, float, float]
    speed: float = 1.2
    pause_frames: int = 8
    _target: np.ndarray | None = field(default=None, repr=False)
    _pause_left: int = field(default=0, repr=False)

    def _pick_target(self, rng: np.random.Generator) -> np.ndarray:
        x_min, y_min, x_max, y_max = self.bounds
        return np.array(
            [rng.uniform(x_min, x_max), rng.uniform(y_min, y_max)]
        )

    def step(self, dt: float, rng: np.random.Generator) -> None:
        """Advance the pedestrian by ``dt`` seconds."""
        if self._pause_left > 0:
            self._pause_left -= 1
            return
        if self._target is None:
            self._target = self._pick_target(rng)
        delta = self._target - self.pedestrian.position
        dist = float(np.linalg.norm(delta))
        step_len = self.speed * dt
        if dist <= step_len:
            self.pedestrian.position = np.array(self._target)
            self._target = None
            self._pause_left = self.pause_frames
        else:
            self.pedestrian.position = (
                self.pedestrian.position + delta / dist * step_len
            )


def spawn_pedestrians(
    count: int,
    bounds: tuple[float, float, float, float],
    rng: np.random.Generator,
    speed_range: tuple[float, float] = (0.8, 1.5),
) -> list[RandomWaypointWalker]:
    """Create ``count`` walkers at random positions inside ``bounds``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    x_min, y_min, x_max, y_max = bounds
    walkers = []
    for pid in range(count):
        person = Pedestrian(
            person_id=pid,
            position=np.array(
                [rng.uniform(x_min, x_max), rng.uniform(y_min, y_max)]
            ),
            height_m=float(rng.uniform(1.55, 1.9)),
            width_m=float(rng.uniform(0.42, 0.58)),
            shade=float(rng.uniform(0.15, 0.85)),
        )
        walkers.append(
            RandomWaypointWalker(
                pedestrian=person,
                bounds=bounds,
                speed=float(rng.uniform(*speed_range)),
            )
        )
    return walkers

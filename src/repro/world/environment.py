"""Environment descriptions for the synthetic datasets.

An :class:`Environment` captures the scene attributes that, per the
paper, determine which detection algorithm works best: indoor versus
outdoor, brightness, amount of background clutter (the Graz "chap"
dataset has furniture that causes false positives), and the capture
resolution (which drives the energy cost of processing a frame).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Environment:
    """Scene-level attributes of a dataset.

    Attributes:
        name: Human-readable identifier, e.g. ``"lab"``.
        family: Coarse environment class used to index detector response
            profiles: ``"indoor_clean"``, ``"indoor_cluttered"`` or
            ``"outdoor"``.
        indoor: Whether the scene is indoors.
        brightness: Mean scene luminance in ``[0, 1]``.
        contrast: Typical object/background contrast in ``[0, 1]``.
        clutter: Density of static distractor structures in ``[0, 1]``;
            drives false-positive generation.
        texture_scale: Spatial scale of background texture (larger means
            smoother backgrounds).
        width: Nominal capture width in pixels (energy model input).
        height: Nominal capture height in pixels.
        seed: Base seed for all environment-derived randomness.
    """

    name: str
    family: str
    indoor: bool
    brightness: float
    contrast: float
    clutter: float
    texture_scale: float
    width: int
    height: int
    seed: int = 0

    def __post_init__(self) -> None:
        valid_families = {
            "indoor_clean", "indoor_cluttered", "outdoor", "night"
        }
        if self.family not in valid_families:
            raise ValueError(
                f"family must be one of {sorted(valid_families)}, "
                f"got {self.family!r}"
            )
        for attr in ("brightness", "contrast", "clutter"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must lie in [0, 1], got {value}")

    @property
    def resolution(self) -> tuple[int, int]:
        return (self.width, self.height)

    @property
    def megapixels(self) -> float:
        return self.width * self.height / 1e6


# The three evaluation environments of Section VI, with attributes taken
# from the paper's dataset descriptions.
LAB = Environment(
    name="lab",
    family="indoor_clean",
    indoor=True,
    brightness=0.65,
    contrast=0.75,
    clutter=0.05,
    texture_scale=24.0,
    width=360,
    height=288,
    seed=101,
)

CHAP = Environment(
    name="chap",
    family="indoor_cluttered",
    indoor=True,
    brightness=0.55,
    contrast=0.55,
    clutter=0.55,
    texture_scale=10.0,
    width=1024,
    height=768,
    seed=202,
)

TERRACE = Environment(
    name="terrace",
    family="outdoor",
    indoor=False,
    brightness=0.85,
    contrast=0.65,
    clutter=0.15,
    texture_scale=40.0,
    width=360,
    height=288,
    seed=303,
)

# An extension beyond the paper's three datasets: the terrace after
# dark.  Low brightness and contrast starve gradient- and contour-
# based detectors; the part-based model degrades most gracefully.
NIGHT = Environment(
    name="night",
    family="night",
    indoor=False,
    brightness=0.22,
    contrast=0.3,
    clutter=0.15,
    texture_scale=40.0,
    width=360,
    height=288,
    seed=404,
)

ENVIRONMENTS = {
    "lab": LAB,
    "chap": CHAP,
    "terrace": TERRACE,
    "night": NIGHT,
}

"""The scene: walkable region, pedestrians, landmarks and cameras.

A :class:`Scene` owns the ground-plane world state and advances it
frame by frame.  It also carries the landmark points that EECS uses to
build inter-camera homographies offline (Section IV-C: "a set of
landmark points on the ground are chosen in the real world coordinate
system").
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.camera import CameraIntrinsics, CameraPose, PinholeCamera
from repro.world.environment import Environment
from repro.world.pedestrian import RandomWaypointWalker, spawn_pedestrians


class Scene:
    """Ground-plane world with pedestrians and calibration landmarks."""

    def __init__(
        self,
        environment: Environment,
        num_people: int,
        bounds: tuple[float, float, float, float] = (0.0, 0.0, 8.0, 8.0),
        frame_rate: float = 25.0,
        num_landmarks: int = 12,
        seed: int | None = None,
    ) -> None:
        if num_people < 0:
            raise ValueError("num_people must be non-negative")
        self.environment = environment
        self.bounds = bounds
        self.frame_rate = frame_rate
        self.frame_index = 0
        seed = environment.seed if seed is None else seed
        self._rng = np.random.default_rng(seed)
        self.walkers: list[RandomWaypointWalker] = spawn_pedestrians(
            num_people, bounds, self._rng
        )
        self.landmarks = self._make_landmarks(num_landmarks)

    def _make_landmarks(self, count: int) -> np.ndarray:
        """Fixed ground-plane landmark points, jittered off a grid."""
        x_min, y_min, x_max, y_max = self.bounds
        side = max(2, int(math.ceil(math.sqrt(count))))
        xs = np.linspace(x_min + 0.5, x_max - 0.5, side)
        ys = np.linspace(y_min + 0.5, y_max - 0.5, side)
        grid = np.array([(x, y) for x in xs for y in ys])[:count]
        jitter = self._rng.normal(scale=0.15, size=grid.shape)
        return grid + jitter

    @property
    def pedestrians(self):
        return [walker.pedestrian for walker in self.walkers]

    def step(self) -> int:
        """Advance the world by one frame; returns the new frame index."""
        dt = 1.0 / self.frame_rate
        for walker in self.walkers:
            walker.step(dt, self._rng)
        self.frame_index += 1
        return self.frame_index

    def run_to_frame(self, frame_index: int) -> None:
        """Advance until ``self.frame_index == frame_index``."""
        if frame_index < self.frame_index:
            raise ValueError(
                f"cannot rewind scene from frame {self.frame_index} "
                f"to {frame_index}"
            )
        while self.frame_index < frame_index:
            self.step()


def make_camera_ring(
    environment: Environment,
    num_cameras: int = 4,
    bounds: tuple[float, float, float, float] = (0.0, 0.0, 8.0, 8.0),
    mount_height: float = 2.4,
    setback: float = 1.5,
    focal_px: float | None = None,
) -> list[PinholeCamera]:
    """Place overlapping cameras around the walkable region.

    Cameras are mounted at the corners (then edge midpoints for more
    than four), looking at the region centre with a slight downward
    pitch — matching the overlapping four-camera geometry of the
    evaluation datasets.  Beyond eight, additional cameras fill an
    ellipse around the region; the first eight placements are
    independent of ``num_cameras``, so scaled-up rings extend the
    standard geometry rather than replacing it.
    """
    if num_cameras < 1:
        raise ValueError("need at least one camera")
    x_min, y_min, x_max, y_max = bounds
    cx, cy = (x_min + x_max) / 2.0, (y_min + y_max) / 2.0
    corners = [
        (x_min - setback, y_min - setback),
        (x_max + setback, y_min - setback),
        (x_max + setback, y_max + setback),
        (x_min - setback, y_max + setback),
        (cx, y_min - setback),
        (x_max + setback, cy),
        (cx, y_max + setback),
        (x_min - setback, cy),
    ]
    if num_cameras > len(corners):
        # Fleet-scale rings: spread the extra mounts over an ellipse
        # circumscribing the setback rectangle, phase-offset so they
        # interleave with the corner/midpoint cameras.
        extra = num_cameras - len(corners)
        rx = (x_max - x_min) / 2.0 + setback
        ry = (y_max - y_min) / 2.0 + setback
        for k in range(extra):
            theta = 2.0 * math.pi * (k + 0.5) / extra
            corners.append(
                (cx + rx * math.cos(theta), cy + ry * math.sin(theta))
            )
    if focal_px is None:
        focal_px = 0.9 * environment.width

    cameras = []
    for idx in range(num_cameras):
        px, py = corners[idx]
        yaw = math.atan2(cy - py, cx - px)
        ground_dist = math.hypot(cx - px, cy - py)
        pitch = math.atan2(mount_height - 0.9, ground_dist)
        pose = CameraPose(x=px, y=py, z=mount_height, yaw=yaw, pitch=pitch)
        intrinsics = CameraIntrinsics(
            focal_px=focal_px,
            width=environment.width,
            height=environment.height,
        )
        cameras.append(
            PinholeCamera(
                intrinsics, pose, camera_id=f"{environment.name}-cam{idx + 1}"
            )
        )
    return cameras

"""Plain-text table rendering for experiment output."""

from __future__ import annotations


def format_table(
    headers: list[str],
    rows: list[list[object]],
    float_format: str = "{:.3g}",
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column titles.
        rows: Row values; floats are formatted with ``float_format``.

    Returns:
        The rendered multi-line string.
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)

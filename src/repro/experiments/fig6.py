"""Fig. 6: EECS on dataset #2, where ACF is both best and cheapest.

On the high-resolution "chap" dataset ACF has the highest f_score
*and* the lowest energy cost, so algorithm downgrade cannot save
anything — EECS's savings come entirely from using fewer cameras
(2-3 of 4).  The paper reports ~97% of the baseline's detections at
~70% of its energy.
"""

from __future__ import annotations

from repro.experiments.fig5 import ModeResult, run_modes

#: Only ACF (0.315 J/frame at 1024x768) fits this budget; HOG, C4 and
#: LSVM cost 9.86, 5.56 and 25.06 J/frame respectively.
DEFAULT_BUDGET = 1.0


def run_dataset2(budget: float = DEFAULT_BUDGET) -> dict[str, ModeResult]:
    """The Fig. 6 comparison: three modes on dataset #2."""
    return run_modes(dataset_number=2, budget=budget)

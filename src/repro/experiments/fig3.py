"""Fig. 3: the benefit of adaptively choosing the detection algorithm.

The scenario: the environment changes from dataset #1 to dataset #2.
A fixed strategy runs the same algorithm on both; the adaptive
strategy (EECS) picks each dataset's best algorithm — HOG for #1, ACF
for #2 in the paper.  The adaptive choice achieves a higher f_score
than any fixed choice, and crucially improves precision and recall
*simultaneously*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.metrics import DetectionCounts, f_score
from repro.experiments.table2_3_4 import AlgorithmRow, algorithm_table


@dataclass(frozen=True)
class StrategyResult:
    """Combined accuracy of one strategy over both datasets."""

    strategy: str
    recall: float
    precision: float
    f_score: float
    per_dataset: dict[int, str]  # dataset -> algorithm used


def _combine(rows: list[AlgorithmRow]) -> tuple[float, float, float]:
    """Average recall/precision across datasets (equal weight), as the
    paper's bar chart aggregates the two environments."""
    recall = sum(r.recall for r in rows) / len(rows)
    precision = sum(r.precision for r in rows) / len(rows)
    return recall, precision, f_score(recall, precision)


def adaptive_vs_fixed(
    dataset_numbers: tuple[int, ...] = (1, 2),
    camera_index: int = 0,
    fixed_algorithms: tuple[str, ...] = ("HOG", "ACF"),
    seed: int = 7,
) -> list[StrategyResult]:
    """Compare fixed-algorithm strategies with the adaptive choice.

    Returns one :class:`StrategyResult` per fixed algorithm plus the
    ``"adaptive"`` strategy that uses each dataset's best algorithm
    (by training-segment f_score, which is how EECS ranks algorithms
    after GFK matching).
    """
    test_rows: dict[int, dict[str, AlgorithmRow]] = {}
    train_best: dict[int, str] = {}
    for number in dataset_numbers:
        train = algorithm_table(number, camera_index, "train", seed=seed)
        thresholds = {r.algorithm: r.threshold for r in train}
        test = algorithm_table(
            number,
            camera_index,
            "test",
            train_thresholds=thresholds,
            seed=seed,
        )
        test_rows[number] = {r.algorithm: r for r in test}
        # LSVM is excluded from deployment for its cost (Section VI-A).
        deployable = [r for r in train if r.algorithm != "LSVM"]
        train_best[number] = max(deployable, key=lambda r: r.f_score).algorithm

    results = []
    for algorithm in fixed_algorithms:
        rows = [test_rows[n][algorithm] for n in dataset_numbers]
        recall, precision, f = _combine(rows)
        results.append(
            StrategyResult(
                strategy=algorithm,
                recall=recall,
                precision=precision,
                f_score=f,
                per_dataset={n: algorithm for n in dataset_numbers},
            )
        )
    adaptive_rows = [test_rows[n][train_best[n]] for n in dataset_numbers]
    recall, precision, f = _combine(adaptive_rows)
    results.append(
        StrategyResult(
            strategy="adaptive",
            recall=recall,
            precision=precision,
            f_score=f,
            per_dataset=dict(train_best),
        )
    )
    return results

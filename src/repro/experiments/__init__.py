"""Experiment drivers regenerating every table and figure of Section VI.

Each module produces the same rows/series the paper reports:

* :mod:`repro.experiments.table2_3_4` — per-algorithm accuracy/energy
  tables on training and test segments (Tables II, III, IV).
* :mod:`repro.experiments.table5` — the 12x12 train-vs-test GFK
  similarity matrix (Table V).
* :mod:`repro.experiments.fig3` — adaptive vs fixed algorithm choice
  (Fig. 3).
* :mod:`repro.experiments.fig4` — accuracy/energy trade-off of camera
  and algorithm combinations (Fig. 4).
* :mod:`repro.experiments.fig5` — EECS vs all-best under high/low
  budgets on dataset #1 (Figs. 5a/5b).
* :mod:`repro.experiments.fig6` — the same on dataset #2 (Fig. 6).
"""

from repro.experiments.harness import get_runner
from repro.experiments.tables import format_table

__all__ = ["get_runner", "format_table"]

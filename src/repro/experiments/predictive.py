"""Predictive wake-up lifetime experiment: sleep to live longer.

EECS extends lifetime by operating a subset, but it still *assesses*
every camera every round, and on a dense multi-view deployment that
standing assessment bill drains all batteries in lockstep — the whole
network dies on the same pass.  The ``predictive`` policy rations a
rotating sleep schedule across the most redundant views, so the same
scene coverage costs fewer camera-rounds of assessment.

This module measures that trade on the deployment where it is
honest: ``make_scaled_dataset(8)`` rings eight cameras around one
scene (true 8-view redundancy — a tiled fleet would be two
independent 4-view scenes and overstate the loss).  Both policies run
the identical window on the identical trained context; lifetime then
follows analytically from each run's per-camera energy draw, because
every replayed pass of the same window draws the same Joules (the
same model :func:`repro.core.lifetime.simulate_lifetime` executes by
brute force — dead cameras stop drawing but passes are otherwise
identical).

The headline ratios — detection retention and lifetime extension of
``predictive`` over ``subset`` — are pinned in ``BENCH_predictive.json``
and guarded by ``benchmarks/test_bench_predictive.py`` and the
``predictive-smoke`` CI job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import EECSConfig
from repro.datasets.synthetic import make_scaled_dataset
from repro.engine import DeploymentContext, DeploymentEngine
from repro.engine.predictive import PredictivePolicy
from repro.predictive import PredictiveConfig

#: The validated bench operating point (see EXPERIMENTS.md): a high
#: wake threshold makes every camera a sleep candidate every round, so
#: the ration cap + probe rotation fully governs who sleeps — the
#: regime where redundancy, not scene emptiness, pays for lifetime.
BENCH_WAKE = PredictiveConfig(
    wake_threshold=9.0,
    predictor_warmup=2,
    probe_every=4,
    max_sleepers=2,
)
BENCH_CAMERAS = 8
BENCH_BUDGET = 2.0
BENCH_START = 1000
BENCH_END = 2000
BENCH_BATTERY_JOULES = 600.0
#: Short rounds (8 in the window) so warmup, probing and rationing all
#: cycle several times inside one measured pass.
BENCH_CONFIG = EECSConfig(assessment_period=75, recalibration_interval=125)


@dataclass(frozen=True)
class PolicyLifetime:
    """One policy's detection and longevity numbers.

    Attributes:
        policy: Coordination policy name.
        humans_detected / humans_present: Detection tally of one pass
            over the measured window.
        energy_joules: Total Joules of that pass.
        lifetime_passes: Replays of the window until fewer than
            ``min_cameras`` batteries survive.
    """

    policy: str
    humans_detected: int
    humans_present: int
    energy_joules: float
    lifetime_passes: int

    @property
    def detection_rate(self) -> float:
        if self.humans_present == 0:
            return 0.0
        return self.humans_detected / self.humans_present


@dataclass(frozen=True)
class PredictiveLifetimeReport:
    """The headline comparison: ``predictive`` vs ``subset``.

    ``detection_retention`` is predictive's detection rate over
    subset's (1.0 = no loss); ``lifetime_extension`` is the ratio of
    analytic lifetimes (how many more times the network can watch the
    same window before falling below quorum).
    """

    subset: PolicyLifetime
    predictive: PolicyLifetime

    @property
    def detection_retention(self) -> float:
        if self.subset.detection_rate == 0.0:
            return 0.0
        return self.predictive.detection_rate / self.subset.detection_rate

    @property
    def lifetime_extension(self) -> float:
        if self.subset.lifetime_passes == 0:
            return 0.0
        return self.predictive.lifetime_passes / self.subset.lifetime_passes


def analytic_lifetime_passes(
    energy_by_camera: dict[str, float],
    battery_joules: float,
    min_cameras: int = 2,
) -> int:
    """Passes of an identical window until quorum is lost.

    A camera participating in a pass draws its full per-pass cost
    (matching :func:`repro.core.lifetime.simulate_lifetime`, which
    draws and then marks the battery depleted), so a camera with draw
    ``d`` participates in ``ceil(battery / d)`` passes.  The network
    survives as long as ``min_cameras`` cameras still participate —
    the ``min_cameras``-th largest per-camera pass count.
    """
    if battery_joules <= 0:
        raise ValueError("battery_joules must be positive")
    if len(energy_by_camera) < min_cameras:
        return 0
    survivable = sorted(
        (
            math.ceil(battery_joules / draw) if draw > 0 else math.inf
            for draw in energy_by_camera.values()
        ),
        reverse=True,
    )
    passes = survivable[min_cameras - 1]
    return int(passes) if math.isfinite(passes) else 0


def predictive_context(
    num_cameras: int = BENCH_CAMERAS,
    config: EECSConfig = BENCH_CONFIG,
    train_seed: int = 2017,
) -> DeploymentContext:
    """The high-redundancy substrate: N cameras ringing one scene."""
    import numpy as np

    return DeploymentContext.build(
        make_scaled_dataset(num_cameras),
        config=config,
        rng=np.random.default_rng(train_seed),
    )


def _run_policy(
    context: DeploymentContext,
    policy,
    name: str,
    budget: float,
    start: int,
    end: int,
    battery_joules: float,
    min_cameras: int,
    seed: int,
) -> PolicyLifetime:
    engine = DeploymentEngine(context, seed=seed)
    try:
        result = engine.run(policy, budget=budget, start=start, end=end)
    finally:
        engine.close()
    return PolicyLifetime(
        policy=name,
        humans_detected=result.humans_detected,
        humans_present=result.humans_present,
        energy_joules=result.energy_joules,
        lifetime_passes=analytic_lifetime_passes(
            result.energy_by_camera, battery_joules, min_cameras
        ),
    )


def compare_predictive_lifetime(
    context: DeploymentContext | None = None,
    wake: PredictiveConfig = BENCH_WAKE,
    budget: float = BENCH_BUDGET,
    start: int = BENCH_START,
    end: int = BENCH_END,
    battery_joules: float = BENCH_BATTERY_JOULES,
    min_cameras: int = 2,
    seed: int = 2017,
) -> PredictiveLifetimeReport:
    """Run both policies on one substrate and compare their lifetimes."""
    if context is None:
        context = predictive_context()
    subset = _run_policy(
        context, "subset", "subset", budget, start, end,
        battery_joules, min_cameras, seed,
    )
    predictive = _run_policy(
        context, PredictivePolicy(wake), "predictive", budget, start,
        end, battery_joules, min_cameras, seed,
    )
    return PredictiveLifetimeReport(subset=subset, predictive=predictive)

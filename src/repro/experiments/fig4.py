"""Fig. 4: accuracy versus energy for camera/algorithm combinations.

Processes dataset #1's test segment under six static configurations —
2HOG, 2ACF, HOG+ACF (two cameras) and 4HOG, 4ACF, 2HOG+2ACF (four
cameras) — and reports, for each, the fused recall (detected humans
over humans in the scene) and the total energy consumed.  The paper's
observation: 2HOG+2ACF consumes ~54% of 4HOG's energy while detecting
85% of the objects versus 92% — a ~7% accuracy hit for a ~2x saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runner import RunResult, SimulationRunner
from repro.experiments.harness import get_runner


@dataclass(frozen=True)
class TradeoffPoint:
    """One Fig. 4 configuration's outcome."""

    label: str
    assignment: dict[str, str]
    humans_detected: int
    humans_present: int
    recall: float
    energy_joules: float


def standard_combinations(camera_ids: list[str]) -> dict[str, dict[str, str]]:
    """The six configurations of Fig. 4 mapped onto real camera ids."""
    if len(camera_ids) < 4:
        raise ValueError("Fig. 4 needs four cameras")
    c1, c2, c3, c4 = camera_ids[:4]
    return {
        "2HOG": {c1: "HOG", c2: "HOG"},
        "2ACF": {c1: "ACF", c2: "ACF"},
        "HOG+ACF": {c1: "HOG", c2: "ACF"},
        "4HOG": {c1: "HOG", c2: "HOG", c3: "HOG", c4: "HOG"},
        "4ACF": {c1: "ACF", c2: "ACF", c3: "ACF", c4: "ACF"},
        "2HOG+2ACF": {c1: "HOG", c2: "HOG", c3: "ACF", c4: "ACF"},
    }


def tradeoff_curve(
    dataset_number: int = 1,
    runner: SimulationRunner | None = None,
    combinations: dict[str, dict[str, str]] | None = None,
) -> list[TradeoffPoint]:
    """Run every configuration over the test segment."""
    runner = runner or get_runner(dataset_number)
    if combinations is None:
        combinations = standard_combinations(runner.dataset.camera_ids)
    points = []
    for label, assignment in combinations.items():
        result: RunResult = runner.run(mode="fixed", assignment=assignment)
        points.append(
            TradeoffPoint(
                label=label,
                assignment=assignment,
                humans_detected=result.humans_detected,
                humans_present=result.humans_present,
                recall=result.detection_rate,
                energy_joules=result.energy_joules,
            )
        )
    return points

"""Figs. 5a/5b: EECS versus the all-best baseline on dataset #1.

Three operating modes are compared under two per-frame energy budget
regimes:

* budget >= 1.08 J (Fig. 5a): HOG — the most accurate deployable
  algorithm — is affordable.  All-best runs 4xHOG; EECS first drops
  to ~3 cameras (middle bars) and then downgrades some cameras to ACF
  (right bars), cutting energy to ~59% of the baseline at ~86% of its
  detection count in the paper.
* budget in [0.07, 1.08) (Fig. 5b): only ACF is affordable; EECS can
  only reduce the camera subset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runner import RunResult, SimulationRunner
from repro.experiments.harness import get_runner

#: Per-frame budgets matching the paper's two regimes (dataset #1:
#: HOG costs 1.08 J/frame, C4 4.92, LSVM 3.31, ACF 0.07).
HIGH_BUDGET = 2.0
LOW_BUDGET = 0.5

MODES = ("all_best", "subset", "full")


@dataclass(frozen=True)
class ModeResult:
    """One bar of Fig. 5: a mode's accuracy and energy."""

    mode: str
    humans_detected: int
    humans_present: int
    energy_joules: float
    cameras_per_round: list[int]

    @property
    def detection_rate(self) -> float:
        if self.humans_present == 0:
            return 0.0
        return self.humans_detected / self.humans_present


def run_modes(
    dataset_number: int = 1,
    budget: float = HIGH_BUDGET,
    runner: SimulationRunner | None = None,
) -> dict[str, ModeResult]:
    """Run the three Fig. 5 modes under one budget."""
    runner = runner or get_runner(dataset_number)
    out = {}
    for mode in MODES:
        result: RunResult = runner.run(mode=mode, budget=budget)
        out[mode] = ModeResult(
            mode=mode,
            humans_detected=result.humans_detected,
            humans_present=result.humans_present,
            energy_joules=result.energy_joules,
            cameras_per_round=[d.num_active for d in result.decisions],
        )
    return out


def energy_savings(results: dict[str, ModeResult]) -> dict[str, float]:
    """Energy of each mode relative to the all-best baseline."""
    baseline = results["all_best"].energy_joules
    if baseline <= 0:
        raise ValueError("baseline consumed no energy")
    return {
        mode: result.energy_joules / baseline
        for mode, result in results.items()
    }


def accuracy_retention(results: dict[str, ModeResult]) -> dict[str, float]:
    """Detected humans of each mode relative to the baseline."""
    baseline = results["all_best"].humans_detected
    if baseline <= 0:
        raise ValueError("baseline detected nothing")
    return {
        mode: result.humans_detected / baseline
        for mode, result in results.items()
    }

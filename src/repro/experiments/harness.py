"""Shared experiment infrastructure.

Building a deployment involves offline training over a dataset's whole
training segment (~5 s); experiments and benchmarks share that work
through the engine-owned
:func:`~repro.engine.context.shared_context` cache, which holds only
the *immutable* trained artefacts (dataset, library, matcher, energy
model).  :func:`get_runner` hands out a fresh facade over a fresh
engine each call — per-run mutable state (controller, batteries, rng
streams) is never shared, so experiments can no longer leak state into
each other through a cached runner.

Independent experiment configurations (:class:`RunSpec`) can fan out
over a process pool via :func:`run_specs`.  Every run reseeds from its
own configuration, so serial and parallel execution produce identical
results; ``workers=1`` falls back to a plain in-process loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import EECSConfig
from repro.core.runner import RunResult, SimulationRunner
from repro.engine.core import DeploymentEngine
from repro.engine.context import shared_context
from repro.engine.policy import resolve_policy
from repro.engine.spec import DeploymentSpec
from repro.perf.parallel import parallel_map


def get_runner(
    dataset_number: int, config: EECSConfig | None = None
) -> SimulationRunner:
    """A runner over the shared trained context for a dataset.

    Training is cached per ``(dataset, config, seed)`` by the engine's
    :func:`~repro.engine.context.shared_context`; the returned facade
    and its engine are fresh per call, so callers get the cached
    (expensive, immutable) artefacts with none of the per-run mutable
    state of previous experiments.
    """
    context = shared_context(dataset_number, config=config)
    return SimulationRunner.from_engine(DeploymentEngine(context))


@dataclass(frozen=True)
class RunSpec:
    """One independent deployment-run configuration.

    Frozen and fully picklable so a batch of specs can be shipped to
    worker processes.  ``assignment`` (for ``"fixed"`` mode) is a
    tuple of (camera_id, algorithm) pairs rather than a dict to keep
    the spec hashable.  The mode is validated at construction: an
    unknown policy name raises ``ValueError`` immediately, listing the
    registered policies.

    ``checkpoint_dir``/``checkpoint_every``/``resume`` pass straight
    through to the deployment spec: a batch run that names a distinct
    directory per spec survives pre-emption mid-batch — completed
    specs have checkpoints their re-runs restore bit-identically.
    """

    dataset_number: int
    mode: str = "full"
    budget: float | None = None
    start: int | None = None
    end: int | None = None
    assignment: tuple[tuple[str, str], ...] | None = None
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    resume: bool = False

    def __post_init__(self) -> None:
        policy = resolve_policy(self.mode)
        policy.validate(
            dict(self.assignment) if self.assignment else None
        )

    def to_deployment_spec(self) -> DeploymentSpec:
        """The engine-level spec this configuration describes."""
        return DeploymentSpec(
            dataset_number=self.dataset_number,
            policy=self.mode,
            budget=self.budget,
            start=self.start,
            end=self.end,
            assignment=self.assignment,
            checkpoint_dir=self.checkpoint_dir,
            checkpoint_every=self.checkpoint_every,
            resume=self.resume,
        )


def _execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec on the (per-process) shared context."""
    return spec.to_deployment_spec().execute()


def run_specs(
    specs: list[RunSpec], workers: int = 1
) -> list[RunResult]:
    """Execute independent run configurations, optionally in parallel.

    Each spec's run reseeds from its own configuration inside the
    engine, so the results are identical whatever ``workers`` is;
    order follows the input specs.  Worker processes build (or
    inherit, under fork) their own shared-context cache.
    """
    return parallel_map(_execute_spec, specs, workers=workers, chunksize=1)

"""Shared experiment infrastructure.

Building a :class:`SimulationRunner` involves offline training over a
dataset's whole training segment (~5 s); experiments and benchmarks
share runners through this cache so each dataset is trained once per
process.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import EECSConfig
from repro.core.runner import SimulationRunner
from repro.datasets.synthetic import make_dataset

_RUNNERS: dict[int, SimulationRunner] = {}


def get_runner(
    dataset_number: int, config: EECSConfig | None = None
) -> SimulationRunner:
    """The shared runner for a dataset (built on first use).

    A custom ``config`` bypasses the cache (the cached runner keeps
    the defaults).
    """
    if config is not None:
        return SimulationRunner(
            make_dataset(dataset_number),
            config=config,
            rng=np.random.default_rng(2017 + dataset_number),
        )
    if dataset_number not in _RUNNERS:
        _RUNNERS[dataset_number] = SimulationRunner(
            make_dataset(dataset_number),
            rng=np.random.default_rng(2017 + dataset_number),
        )
    return _RUNNERS[dataset_number]


def reset_runners() -> None:
    """Testing hook: drop all cached runners."""
    _RUNNERS.clear()

"""Shared experiment infrastructure.

Building a :class:`SimulationRunner` involves offline training over a
dataset's whole training segment (~5 s); experiments and benchmarks
share runners through this cache so each dataset is trained once per
process.

Independent experiment configurations (:class:`RunSpec`) can fan out
over a process pool via :func:`run_specs`.  Every run reseeds from its
own configuration, so serial and parallel execution produce identical
results; ``workers=1`` falls back to a plain in-process loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import EECSConfig
from repro.core.runner import RunResult, SimulationRunner
from repro.datasets.synthetic import make_dataset
from repro.perf.parallel import parallel_map

_RUNNERS: dict[int, SimulationRunner] = {}


def get_runner(
    dataset_number: int, config: EECSConfig | None = None
) -> SimulationRunner:
    """The shared runner for a dataset (built on first use).

    A custom ``config`` bypasses the cache (the cached runner keeps
    the defaults).
    """
    if config is not None:
        return SimulationRunner(
            make_dataset(dataset_number),
            config=config,
            rng=np.random.default_rng(2017 + dataset_number),
        )
    if dataset_number not in _RUNNERS:
        _RUNNERS[dataset_number] = SimulationRunner(
            make_dataset(dataset_number),
            rng=np.random.default_rng(2017 + dataset_number),
        )
    return _RUNNERS[dataset_number]


def reset_runners() -> None:
    """Testing hook: drop all cached runners."""
    _RUNNERS.clear()


@dataclass(frozen=True)
class RunSpec:
    """One independent deployment-run configuration.

    Frozen and fully picklable so a batch of specs can be shipped to
    worker processes.  ``assignment`` (for ``"fixed"`` mode) is a
    tuple of (camera_id, algorithm) pairs rather than a dict to keep
    the spec hashable.
    """

    dataset_number: int
    mode: str = "full"
    budget: float | None = None
    start: int | None = None
    end: int | None = None
    assignment: tuple[tuple[str, str], ...] | None = None


def _execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec on the (per-process) shared runner."""
    runner = get_runner(spec.dataset_number)
    return runner.run(
        mode=spec.mode,
        budget=spec.budget,
        assignment=dict(spec.assignment) if spec.assignment else None,
        start=spec.start,
        end=spec.end,
    )


def run_specs(
    specs: list[RunSpec], workers: int = 1
) -> list[RunResult]:
    """Execute independent run configurations, optionally in parallel.

    Each spec's run reseeds from its own configuration inside
    :meth:`SimulationRunner.run`, so the results are identical
    whatever ``workers`` is; order follows the input specs.  Worker
    processes build (or inherit, under fork) their own runner cache.
    """
    return parallel_map(_execute_spec, specs, workers=workers, chunksize=1)

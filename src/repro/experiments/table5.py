"""Table V: train-vs-test video similarity on the Grassmann manifold.

For each of the 12 video feeds (3 datasets x 4 cameras), extract
HOG ++ BoW frame features from a window of the training segment and
from randomly offset windows of the test segment, then compute the
GFK similarity (Eq. 5) between every training item and every test
item.  The paper's headline result: every test item's most similar
training item is the one from the same dataset and camera (diagonal
dominance), with a visible same-dataset block structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import SyntheticDataset, make_dataset
from repro.domain_adaptation.similarity import VideoComparator
from repro.vision.bow import BagOfWords
from repro.vision.features import FrameFeatureExtractor
from repro.vision.keypoints import extract_descriptors


@dataclass
class SimilarityResult:
    """The Table V matrix plus its labels.

    Attributes:
        labels: Video labels ``"T_{d}.{c}"`` in row/column order
            (rows: training items, columns: test items).
        matrix: ``(12, 12)`` mean similarities.
    """

    labels: list[str]
    matrix: np.ndarray

    @property
    def diagonal_accuracy(self) -> float:
        """Fraction of test items whose best match is their own
        training item — 1.0 in the paper."""
        best = np.argmax(self.matrix, axis=0)
        return float(np.mean(best == np.arange(self.matrix.shape[1])))

    def block_means(self) -> np.ndarray:
        """Mean similarity per (train dataset, test dataset) block."""
        n_datasets = len(self.labels) // 4
        out = np.zeros((n_datasets, n_datasets))
        for i in range(n_datasets):
            for j in range(n_datasets):
                out[i, j] = self.matrix[
                    4 * i : 4 * i + 4, 4 * j : 4 * j + 4
                ].mean()
        return out


def _sample_frames(
    dataset: SyntheticDataset,
    camera_id: str,
    start: int,
    end: int,
    count: int,
) -> list[np.ndarray]:
    """Evenly sample ``count`` frame images of one camera."""
    step = max(1, (end - start) // count)
    records = dataset.frames(start, start + step * count, step=step)
    return [r.observation(camera_id).image for r in records]


def similarity_matrix(
    window_frames: int = 20,
    repeats: int = 2,
    subspace_dim: int = 10,
    vocabulary_size: int = 400,
    datasets: tuple[int, ...] = (1, 2, 3),
    seed: int = 11,
) -> SimilarityResult:
    """Compute the Table V similarity matrix.

    Args:
        window_frames: Frames per feature window (the paper uses 100;
            smaller defaults keep the benchmark runtime modest while
            preserving the matrix structure).
        repeats: Random test windows averaged per video (paper: 5).
        subspace_dim: PCA dimension ``beta`` of the GFK comparison.
        vocabulary_size: Visual words in the BoW vocabulary.
        datasets: Which datasets to include (4 cameras each).
        seed: Sampling seed for test-window offsets.

    Returns:
        A :class:`SimilarityResult` with one row/column per video.
    """
    if window_frames < 4:
        raise ValueError("window_frames must be at least 4")
    rng = np.random.default_rng(seed)
    loaded = {n: make_dataset(n) for n in datasets}
    for ds in loaded.values():
        ds.cache_frames = False

    # Vocabulary from the 12 training feeds, as in Section V-A.
    vocab_descriptors = []
    for number, ds in loaded.items():
        for camera_id in ds.camera_ids:
            for image in _sample_frames(
                ds, camera_id, 0, ds.spec.train_end, max(4, window_frames // 3)
            ):
                descs = extract_descriptors(image)
                if len(descs):
                    vocab_descriptors.append(descs)
    bow = BagOfWords(vocabulary_size=vocabulary_size, rng=rng).fit(
        np.vstack(vocab_descriptors)
    )
    extractor = FrameFeatureExtractor(bow)

    labels = []
    comparator = VideoComparator(subspace_dim=subspace_dim)
    for number, ds in loaded.items():
        for cam_idx, camera_id in enumerate(ds.camera_ids):
            label = f"{number}.{cam_idx + 1}"
            labels.append(label)
            images = _sample_frames(
                ds, camera_id, 0, ds.spec.train_end, window_frames
            )
            comparator.add_training_video(
                label, extractor.extract_video(images)
            )

    matrix = np.zeros((len(labels), len(labels)))
    col = 0
    for number, ds in loaded.items():
        span = ds.spec.total_frames - ds.spec.train_end - window_frames * 4
        for camera_id in ds.camera_ids:
            sims_accum = np.zeros(len(labels))
            for _ in range(repeats):
                offset = ds.spec.train_end + int(
                    rng.integers(0, max(1, span))
                )
                images = _sample_frames(
                    ds,
                    camera_id,
                    offset,
                    offset + window_frames * 4,
                    window_frames,
                )
                features = extractor.extract_video(images)
                sims = comparator.similarities(features)
                sims_accum += np.array([sims[label] for label in labels])
            matrix[:, col] = sims_accum / repeats
            col += 1
    return SimilarityResult(labels=labels, matrix=matrix)

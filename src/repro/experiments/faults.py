"""Chaos experiment: a networked deployment under injected faults.

Where :class:`~repro.core.runner.SimulationRunner` drives the EECS
loop as an idealised frame loop, this experiment runs it over the
discrete-event network — reliable transport, heartbeats, liveness —
and lets a :class:`~repro.faults.plan.FaultPlan` break things: lossy
links force retransmissions (paid in Joules), crashed cameras go
silent until the controller declares them dead and re-selects over the
survivors.

The headline metric is *accuracy retention*: the faulty run's
operational detection rate divided by the zero-fault run's, on the
same frames and seed.  The paper's claim that selection keeps accuracy
near the γ-scaled baseline only means something in deployment if it
also survives the failure modes its battery-and-wireless premise
implies.

Everything is seeded — the plan carries the loss/crash randomness, the
cameras derive their detection rng from their node id — so a chaos
run is reproducible from its :class:`ChaosSpec` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.controller import EECSController
from repro.core.runner import SimulationRunner
from repro.datasets.groundtruth import persons_in_any_view
from repro.energy.battery import Battery
from repro.energy.communication import CommunicationEnergyModel
from repro.faults.events import FaultEvent, RecoveryEvent
from repro.faults.injector import FaultInjector
from repro.faults.plan import Crash, FaultPlan
from repro.network.node import CameraSensorNode, ControllerNode
from repro.network.simulator import EventSimulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.core import Telemetry


@dataclass(frozen=True)
class ChaosSpec:
    """One fault-injected deployment configuration.

    Attributes:
        dataset_number: Which synthetic dataset to deploy on.
        loss_rate: Uniform per-transmission packet loss on every link.
        crash_count: How many cameras crash (in camera-id order) at
            ``crash_at_s``.
        seed: Seeds the fault injector's rng.
        num_frames: Ground-truth frames in the deployment window; the
            first ``assessment_frames`` feed the assessment round and
            the rest are operational.
        assessment_frames: Frames per accuracy assessment.
        budget: Per-frame energy budget applied to every camera.
        start: First dataset frame of the window.
        seconds_per_frame: Operational cadence (paper: one frame/2 s).
        heartbeat_s: Camera liveness beacon interval.
        miss_threshold: Heartbeats missed before a camera is declared
            dead.
        crash_at_s: When the crashed cameras die (``None`` = one third
            into the horizon, after the assignment is in force).
        reboot_s: Optional reboot time for the crashed cameras.
        assessment_timeout_s: Deadline for closing an assessment round
            on partial data.
    """

    dataset_number: int = 1
    loss_rate: float = 0.0
    crash_count: int = 0
    seed: int = 7
    num_frames: int = 18
    assessment_frames: int = 2
    budget: float = 2.0
    start: int = 1000
    seconds_per_frame: float = 2.0
    heartbeat_s: float = 2.0
    miss_threshold: int = 3
    crash_at_s: float | None = None
    reboot_s: float | None = None
    assessment_timeout_s: float = 5.0

    @property
    def horizon_s(self) -> float:
        """Simulated duration: one tick per frame plus start-up slack."""
        return self.seconds_per_frame * (self.num_frames + 4)

    def build_plan(self, camera_ids: list[str]) -> FaultPlan:
        """The default plan: uniform loss plus mid-run crashes."""
        plan = FaultPlan.uniform_loss(self.loss_rate, seed=self.seed)
        crash_at = (
            self.crash_at_s
            if self.crash_at_s is not None
            else self.horizon_s / 3.0
        )
        crashes = tuple(
            Crash(camera_id, at_s=crash_at, reboot_s=self.reboot_s)
            for camera_id in camera_ids[: self.crash_count]
        )
        return plan.with_crashes(*crashes)


@dataclass
class ChaosResult:
    """Outcome of one fault-injected deployment run."""

    spec: ChaosSpec
    humans_detected: int
    humans_present: int
    delivered_messages: int
    dropped_messages: int
    retransmissions: int
    gave_up: int
    duplicates_dropped: int
    suppressed_sends: int
    battery_by_camera: dict[str, float]
    num_decisions: int
    final_assignment: dict[str, str]
    fault_events: list[FaultEvent] = field(default_factory=list)
    recovery_events: list[RecoveryEvent] = field(default_factory=list)
    simulated_s: float = 0.0

    @property
    def detection_rate(self) -> float:
        if self.humans_present == 0:
            return 0.0
        return self.humans_detected / self.humans_present

    @property
    def total_radio_joules(self) -> float:
        return sum(self.battery_by_camera.values())

    def fault_kinds(self) -> list[str]:
        return [e.kind for e in self.fault_events]


def accuracy_retention(faulty: ChaosResult, baseline: ChaosResult) -> float:
    """Fraction of the zero-fault detection rate retained under faults."""
    if baseline.detection_rate == 0.0:
        return 0.0
    return faulty.detection_rate / baseline.detection_rate


def run_chaos(
    spec: ChaosSpec,
    runner: SimulationRunner,
    plan: FaultPlan | None = None,
    telemetry: "Telemetry | None" = None,
) -> ChaosResult:
    """Deploy ``runner``'s trained fleet over the event network under
    ``spec``'s faults and measure what the controller actually saw.

    The shared runner is only read (library, matcher, detectors); the
    run builds its own controller and batteries, so cached runners stay
    pristine for other experiments.

    With a :class:`~repro.telemetry.core.Telemetry` attached, the run
    emits the full observability surface — network/energy/controller
    metrics, a run → round → phase → camera-op span tree, and
    structured events mirroring the fault log — without perturbing any
    rng stream: the faulty trajectory is bit-identical either way.
    """
    dataset = runner.dataset
    env = dataset.environment
    end = spec.start + spec.num_frames * dataset.spec.gt_every
    records = dataset.frames(spec.start, end, only_ground_truth=True)
    records = records[: spec.num_frames]

    sim = EventSimulator(telemetry=telemetry)
    controller = EECSController(
        runner.config, runner.library, runner.matcher, telemetry=telemetry
    )
    controller.now_fn = lambda: sim.now
    for camera_id in dataset.camera_ids:
        controller.register_camera(
            camera_id,
            processing_model=runner.energy_model,
            communication_model=CommunicationEnergyModel(
                width=env.width, height=env.height
            ),
            battery=Battery(),
        )
        controller.assign_training_item(camera_id, f"T-{camera_id}")

    injector = FaultInjector(
        plan if plan is not None else spec.build_plan(dataset.camera_ids)
    )
    if telemetry is not None:
        telemetry.attach_fault_log(injector.log)
    controller_node = ControllerNode(
        "controller",
        controller,
        assessment_frames=spec.assessment_frames,
        budget=spec.budget,
        reliable=True,
        fault_log=injector.log,
        telemetry=telemetry,
    )
    sim.register_node(controller_node)

    cameras: dict[str, CameraSensorNode] = {}
    for camera_id in dataset.camera_ids:
        item = runner.library.get(f"T-{camera_id}")
        node = CameraSensorNode(
            node_id=camera_id,
            controller_id="controller",
            observations=[r.observation(camera_id) for r in records],
            detectors=runner.detectors,
            thresholds={n: p.threshold for n, p in item.profiles.items()},
            energy_model=runner.energy_model,
            reliable=True,
            telemetry=telemetry,
        )
        cameras[camera_id] = node
        sim.register_node(node)
        sim.connect(camera_id, "controller")
    injector.attach(sim)

    run_span = (
        telemetry.tracer.begin(
            "run",
            mode="chaos",
            seed=spec.seed,
            loss_rate=spec.loss_rate,
            crash_count=spec.crash_count,
            frames=spec.num_frames,
        )
        if telemetry is not None
        else None
    )
    try:
        horizon = spec.horizon_s
        for node in cameras.values():
            node.start()
            node.start_heartbeats(spec.heartbeat_s, until=horizon)
            node.start_operation(spec.seconds_per_frame, until=horizon)
        controller_node.enable_liveness(
            spec.heartbeat_s,
            miss_threshold=spec.miss_threshold,
            until=horizon,
        )

        camera_algorithms = {}
        for camera_id in dataset.camera_ids:
            cam_plan = controller.camera_plan(camera_id, spec.budget)
            if cam_plan is None:
                continue
            camera_algorithms[camera_id] = sorted(
                p.algorithm
                for p in cam_plan.item.profiles.values()
                if p.energy_per_frame + cam_plan.communication_cost
                <= cam_plan.budget
            )
        controller_node.start_assessment(
            camera_algorithms, timeout_s=spec.assessment_timeout_s
        )

        sim.run(until=horizon + spec.seconds_per_frame)
    finally:
        if telemetry is not None:
            controller_node.close_telemetry()
            telemetry.tracer.end(run_span, simulated_s=sim.now)

    # Accuracy over the operational window, measured on what the
    # controller actually received: metadata from crashed cameras or
    # lost beyond the retry cap never arrives, and that is the point.
    by_frame: dict[int, list] = {}
    for metadata in controller_node.operational_metadata:
        by_frame.setdefault(metadata.frame_index, []).extend(
            metadata.detections
        )
    detected_total = 0
    present_total = 0
    for idx, record in enumerate(records):
        if idx < spec.assessment_frames:
            continue
        present = persons_in_any_view(record.observations)
        present_total += len(present)
        groups = runner.matcher.group(by_frame.get(record.frame_index, []))
        detected_ids = {
            g.majority_truth_id for g in groups if g.is_true_object
        }
        detected_total += len(detected_ids & present)

    transports = [controller_node.transport] + [
        c.transport for c in cameras.values()
    ]
    return ChaosResult(
        spec=spec,
        humans_detected=detected_total,
        humans_present=present_total,
        delivered_messages=sim.delivered_messages,
        dropped_messages=sim.dropped_messages,
        retransmissions=sum(t.retransmissions for t in transports),
        gave_up=sum(t.gave_up for t in transports),
        duplicates_dropped=sum(t.duplicates_dropped for t in transports),
        suppressed_sends=sum(c.suppressed_sends for c in cameras.values()),
        battery_by_camera={
            camera_id: node.battery.consumed
            for camera_id, node in cameras.items()
        },
        num_decisions=len(controller_node.decisions),
        final_assignment=(
            dict(controller_node.decisions[-1].assignment)
            if controller_node.decisions
            else {}
        ),
        fault_events=list(injector.log.faults),
        recovery_events=list(injector.log.recoveries),
        simulated_s=sim.now,
    )


def chaos_sweep(
    runner: SimulationRunner,
    loss_rates: tuple[float, ...] = (0.0, 0.2),
    crash_counts: tuple[int, ...] = (0, 1),
    **spec_kwargs,
) -> list[tuple[ChaosSpec, ChaosResult]]:
    """Loss-rate x crash-count grid, sharing one trained runner."""
    results = []
    for loss_rate in loss_rates:
        for crash_count in crash_counts:
            spec = ChaosSpec(
                loss_rate=loss_rate, crash_count=crash_count, **spec_kwargs
            )
            results.append((spec, run_chaos(spec, runner)))
    return results

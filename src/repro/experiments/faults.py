"""Chaos experiment: a networked deployment under injected faults.

Where the ideal environment drives the EECS loop as an in-process
frame feed, this experiment deploys the same trained engine in the
:class:`~repro.engine.environment.FaultInjectedEnvironment` — the
discrete-event network with reliable transport, heartbeats and
liveness — and lets a :class:`~repro.faults.plan.FaultPlan` break
things: lossy links force retransmissions (paid in Joules), crashed
cameras go silent until the controller declares them dead and
re-selects over the survivors.  :func:`run_chaos` is a thin adapter:
it translates a :class:`ChaosSpec` into
:class:`~repro.engine.environment.NetworkConditions`, deploys, and
wraps the outcome.

The headline metric is *accuracy retention*: the faulty run's
operational detection rate divided by the zero-fault run's, on the
same frames and seed.  The paper's claim that selection keeps accuracy
near the γ-scaled baseline only means something in deployment if it
also survives the failure modes its battery-and-wireless premise
implies.

Everything is seeded — the plan carries the loss/crash randomness, the
cameras derive their detection rng from their node id — so a chaos
run is reproducible from its :class:`ChaosSpec` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.runner import SimulationRunner
from repro.engine.core import DeploymentEngine
from repro.engine.environment import (
    FaultInjectedEnvironment,
    NetworkConditions,
)
from repro.faults.events import FaultEvent, RecoveryEvent
from repro.faults.plan import (
    CalibrationDrift,
    ClockSkew,
    Crash,
    FaultPlan,
    MessageCorruption,
    SensorFault,
)
from repro.resilience.ladder import ResilienceConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.checkpoint.hooks import CheckpointConfig
    from repro.telemetry.core import Telemetry


@dataclass(frozen=True)
class ChaosSpec:
    """One fault-injected deployment configuration.

    Attributes:
        dataset_number: Which synthetic dataset to deploy on.
        loss_rate: Uniform per-transmission packet loss on every link.
        crash_count: How many cameras crash (in camera-id order) at
            ``crash_at_s``.
        seed: Seeds the fault injector's rng.
        num_frames: Ground-truth frames in the deployment window; the
            first ``assessment_frames`` feed the assessment round and
            the rest are operational.
        assessment_frames: Frames per accuracy assessment.
        budget: Per-frame energy budget applied to every camera.
        start: First dataset frame of the window.
        seconds_per_frame: Operational cadence (paper: one frame/2 s).
        heartbeat_s: Camera liveness beacon interval.
        miss_threshold: Heartbeats missed before a camera is declared
            dead.
        crash_at_s: When the crashed cameras die (``None`` = one third
            into the horizon, after the assignment is in force).
        reboot_s: Optional reboot time for the crashed cameras.
        assessment_timeout_s: Deadline for closing an assessment round
            on partial data.
        fault_camera_count: How many cameras (in camera-id order) the
            data-plane faults below target.
        sensor_noise: Per-detection suppression probability during the
            fault window (a noisy sensor loses real detections).
        sensor_fp_rate: Poisson rate of fabricated detections per
            message during the fault window.
        stuck: Freeze the targeted sensors on their last healthy frame
            during the window.
        score_drift_per_s: Calibration drift applied to detection
            scores (units of score per simulated second).
        clock_skew: Fractional local-clock skew (0.5 = intervals run
            50% slow) on the targeted cameras.
        corruption_rate: Probability a delivered message from a
            targeted camera arrives garbled.
        fault_start_s: Data-plane fault window start (``None`` = one
            third into the horizon, after the first assignment).
        fault_end_s: Data-plane fault window end (``None`` = horizon).
        resilience: Deploy with the graceful-degradation layer
            (health monitoring, circuit breakers, staged quarantine).
    """

    dataset_number: int = 1
    loss_rate: float = 0.0
    crash_count: int = 0
    seed: int = 7
    num_frames: int = 18
    assessment_frames: int = 2
    budget: float = 2.0
    start: int = 1000
    seconds_per_frame: float = 2.0
    heartbeat_s: float = 2.0
    miss_threshold: int = 3
    crash_at_s: float | None = None
    reboot_s: float | None = None
    assessment_timeout_s: float = 5.0
    fault_camera_count: int = 1
    sensor_noise: float = 0.0
    sensor_fp_rate: float = 0.0
    stuck: bool = False
    score_drift_per_s: float = 0.0
    clock_skew: float = 0.0
    corruption_rate: float = 0.0
    fault_start_s: float | None = None
    fault_end_s: float | None = None
    resilience: ResilienceConfig | None = None

    @property
    def horizon_s(self) -> float:
        """Simulated duration: one tick per frame plus start-up slack."""
        return self.seconds_per_frame * (self.num_frames + 4)

    def build_plan(self, camera_ids: list[str]) -> FaultPlan:
        """The default plan: uniform loss, mid-run crashes, and any
        configured data-plane faults on the first
        ``fault_camera_count`` cameras."""
        plan = FaultPlan.uniform_loss(self.loss_rate, seed=self.seed)
        crash_at = (
            self.crash_at_s
            if self.crash_at_s is not None
            else self.horizon_s / 3.0
        )
        crashes = tuple(
            Crash(camera_id, at_s=crash_at, reboot_s=self.reboot_s)
            for camera_id in camera_ids[: self.crash_count]
        )
        plan = plan.with_crashes(*crashes)

        start = (
            self.fault_start_s
            if self.fault_start_s is not None
            else self.horizon_s / 3.0
        )
        end = (
            self.fault_end_s if self.fault_end_s is not None else self.horizon_s
        )
        data_faults = []
        for camera_id in camera_ids[: self.fault_camera_count]:
            if self.sensor_noise or self.sensor_fp_rate or self.stuck:
                data_faults.append(
                    SensorFault(
                        node_id=camera_id,
                        start_s=start,
                        end_s=end,
                        noise=self.sensor_noise,
                        false_positive_rate=self.sensor_fp_rate,
                        stuck=self.stuck,
                    )
                )
            if self.score_drift_per_s:
                data_faults.append(
                    CalibrationDrift(
                        node_id=camera_id,
                        start_s=start,
                        end_s=end,
                        score_drift_per_s=self.score_drift_per_s,
                    )
                )
            if self.clock_skew:
                data_faults.append(
                    ClockSkew(
                        node_id=camera_id,
                        skew=self.clock_skew,
                        start_s=start,
                        end_s=end,
                    )
                )
            if self.corruption_rate:
                data_faults.append(
                    MessageCorruption(
                        node_a=camera_id,
                        rate=self.corruption_rate,
                        start_s=start,
                        end_s=end,
                    )
                )
        return plan.with_data_faults(*data_faults)

    def to_conditions(
        self, camera_ids: list[str], plan: FaultPlan | None = None
    ) -> NetworkConditions:
        """The engine-level network conditions this spec describes."""
        return NetworkConditions(
            plan=plan if plan is not None else self.build_plan(camera_ids),
            start=self.start,
            num_frames=self.num_frames,
            assessment_frames=self.assessment_frames,
            budget=self.budget,
            seconds_per_frame=self.seconds_per_frame,
            heartbeat_s=self.heartbeat_s,
            miss_threshold=self.miss_threshold,
            assessment_timeout_s=self.assessment_timeout_s,
            horizon_s=self.horizon_s,
            seed=self.seed,
            loss_rate=self.loss_rate,
            crash_count=self.crash_count,
            resilience=self.resilience,
        )


@dataclass
class ChaosResult:
    """Outcome of one fault-injected deployment run."""

    spec: ChaosSpec
    humans_detected: int
    humans_present: int
    delivered_messages: int
    dropped_messages: int
    retransmissions: int
    gave_up: int
    duplicates_dropped: int
    suppressed_sends: int
    battery_by_camera: dict[str, float]
    num_decisions: int
    final_assignment: dict[str, str]
    fault_events: list[FaultEvent] = field(default_factory=list)
    recovery_events: list[RecoveryEvent] = field(default_factory=list)
    simulated_s: float = 0.0
    corrupted_received: int = 0
    breaker_blocked: int = 0
    camera_modes: dict[str, str] = field(default_factory=dict)

    @property
    def detection_rate(self) -> float:
        if self.humans_present == 0:
            return 0.0
        return self.humans_detected / self.humans_present

    @property
    def total_radio_joules(self) -> float:
        return sum(self.battery_by_camera.values())

    def fault_kinds(self) -> list[str]:
        return [e.kind for e in self.fault_events]


def accuracy_retention(faulty: ChaosResult, baseline: ChaosResult) -> float:
    """Fraction of the zero-fault detection rate retained under faults."""
    if baseline.detection_rate == 0.0:
        return 0.0
    return faulty.detection_rate / baseline.detection_rate


def run_chaos(
    spec: ChaosSpec,
    runner: "SimulationRunner | DeploymentEngine",
    plan: FaultPlan | None = None,
    telemetry: "Telemetry | None" = None,
    checkpoint: "CheckpointConfig | None" = None,
) -> ChaosResult:
    """Deploy ``runner``'s trained fleet over the event network under
    ``spec``'s faults and measure what the controller actually saw.

    A thin adapter over the engine's environment seam: the spec
    becomes :class:`~repro.engine.environment.NetworkConditions`, the
    engine deploys in a
    :class:`~repro.engine.environment.FaultInjectedEnvironment`, and
    the outcome is wrapped with its spec.  The shared runner/engine is
    only read (library, matcher, detectors); the environment builds
    its own controller and batteries, so cached engines stay pristine
    for other experiments.

    With a :class:`~repro.telemetry.core.Telemetry` attached, the run
    emits the full observability surface — network/energy/controller
    metrics, a run → round → phase → camera-op span tree, and
    structured events mirroring the fault log — without perturbing any
    rng stream: the faulty trajectory is bit-identical either way.

    With a :class:`~repro.checkpoint.hooks.CheckpointConfig` attached,
    the deployment checkpoints progress markers every ``K`` frame
    ticks and resumes by verified deterministic replay (see
    :class:`~repro.engine.environment.FaultInjectedEnvironment`).
    """
    engine = runner.engine if isinstance(runner, SimulationRunner) else runner
    conditions = spec.to_conditions(engine.dataset.camera_ids, plan=plan)
    outcome = engine.deploy(
        FaultInjectedEnvironment(
            conditions, telemetry=telemetry, checkpoint=checkpoint
        )
    )
    return ChaosResult(spec=spec, **vars(outcome))


def chaos_sweep(
    runner: SimulationRunner,
    loss_rates: tuple[float, ...] = (0.0, 0.2),
    crash_counts: tuple[int, ...] = (0, 1),
    **spec_kwargs,
) -> list[tuple[ChaosSpec, ChaosResult]]:
    """Loss-rate x crash-count grid, sharing one trained runner."""
    results = []
    for loss_rate in loss_rates:
        for crash_count in crash_counts:
            spec = ChaosSpec(
                loss_rate=loss_rate, crash_count=crash_count, **spec_kwargs
            )
            results.append((spec, run_chaos(spec, runner)))
    return results

"""Tables II, III and IV: per-algorithm accuracy and cost.

For one camera of one dataset, run every detection algorithm over a
segment, sweep the detection-score threshold to its f_score maximum
(training segments) or reuse the thresholds learned on the training
segment (test segments, as the paper does for Table IV), and report
threshold / recall / precision / f_score / energy / latency per frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.groundtruth import ground_truth_boxes
from repro.datasets.synthetic import SyntheticDataset, make_dataset
from repro.detection.detectors import ALGORITHM_NAMES, make_detector_suite
from repro.detection.metrics import best_threshold, precision_recall
from repro.energy.model import ProcessingEnergyModel
from repro.experiments.tables import format_table


@dataclass(frozen=True)
class AlgorithmRow:
    """One row of Tables II/III/IV."""

    algorithm: str
    threshold: float
    recall: float
    precision: float
    f_score: float
    energy_per_frame: float
    time_per_frame: float


def algorithm_table(
    dataset_number: int,
    camera_index: int = 0,
    segment: str = "train",
    dataset: SyntheticDataset | None = None,
    train_thresholds: dict[str, float] | None = None,
    seed: int = 7,
) -> list[AlgorithmRow]:
    """Measure every algorithm on one camera's segment.

    Args:
        dataset_number: 1, 2 or 3 (the paper's numbering).
        camera_index: Which of the four cameras.
        segment: ``"train"`` (threshold swept) or ``"test"``
            (thresholds carried over from training unless given).
        dataset: Optional pre-built dataset to reuse.
        train_thresholds: Per-algorithm thresholds for test segments;
            measured on the training segment when omitted.
        seed: Detection-noise seed.

    Returns:
        One row per algorithm, in ``ALGORITHM_NAMES`` order.
    """
    if segment not in ("train", "test"):
        raise ValueError(f"segment must be 'train' or 'test', got {segment!r}")
    ds = dataset or make_dataset(dataset_number)
    camera_id = ds.camera_ids[camera_index]
    suite = make_detector_suite(ds.environment)
    energy_model = ProcessingEnergyModel(
        width=ds.environment.width, height=ds.environment.height
    )
    records = (
        ds.training_segment().frames
        if segment == "train"
        else ds.test_segment().frames
    )
    rng = np.random.default_rng(seed)

    if segment == "test" and train_thresholds is None:
        train_rows = algorithm_table(
            dataset_number, camera_index, "train", dataset=ds, seed=seed
        )
        train_thresholds = {r.algorithm: r.threshold for r in train_rows}

    rows = []
    for algorithm in ALGORITHM_NAMES:
        detector = suite[algorithm]
        frames = []
        for record in records:
            observation = record.observation(camera_id)
            detections = detector.detect(observation, rng)
            frames.append((detections, ground_truth_boxes(observation)))
        if segment == "train":
            threshold, counts = best_threshold(frames, num_steps=80)
        else:
            threshold = train_thresholds[algorithm]
            counts = precision_recall(frames, threshold)
        rows.append(
            AlgorithmRow(
                algorithm=algorithm,
                threshold=float(threshold),
                recall=counts.recall,
                precision=counts.precision,
                f_score=counts.f_score,
                energy_per_frame=energy_model.energy_per_frame(algorithm),
                time_per_frame=energy_model.time_per_frame(algorithm),
            )
        )
    return rows


def render_table(rows: list[AlgorithmRow], title: str = "") -> str:
    """Format rows like the paper's tables."""
    body = format_table(
        ["Alg.", "Threshold", "Recall", "Precision", "F-score",
         "Energy/frame (J)", "Time/frame (s)"],
        [
            [r.algorithm, r.threshold, r.recall, r.precision, r.f_score,
             r.energy_per_frame, r.time_per_frame]
            for r in rows
        ],
    )
    return f"{title}\n{body}" if title else body

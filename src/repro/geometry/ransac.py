"""RANSAC-robust homography fitting.

The paper builds ground-plane homographies offline from marked landmark
correspondences using RANSAC [25], which tolerates mis-marked
landmarks.  This module implements the classic hypothesise-and-verify
loop over minimal 4-point samples with an inlier re-fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.homography import (
    Homography,
    HomographyError,
    estimate_homography,
)


@dataclass
class RansacResult:
    """Outcome of a RANSAC homography fit.

    Attributes:
        homography: The final model re-fit on all inliers.
        inlier_mask: Boolean mask over the input correspondences.
        iterations: Number of hypothesis iterations executed.
        inlier_rmse: Root-mean-square transfer error over inliers.
    """

    homography: Homography
    inlier_mask: np.ndarray
    iterations: int
    inlier_rmse: float = field(default=float("nan"))

    @property
    def num_inliers(self) -> int:
        return int(self.inlier_mask.sum())


def ransac_homography(
    src: np.ndarray,
    dst: np.ndarray,
    threshold: float = 3.0,
    max_iterations: int = 500,
    confidence: float = 0.995,
    rng: np.random.Generator | None = None,
) -> RansacResult:
    """Robustly fit a homography from noisy correspondences.

    Args:
        src: ``(n, 2)`` source points (n >= 4).
        dst: ``(n, 2)`` destination points.
        threshold: Inlier transfer-error threshold in destination units.
        max_iterations: Hard cap on hypothesis draws.
        confidence: Early-exit confidence for the adaptive iteration count.
        rng: Source of randomness; defaults to a fixed-seed generator so
            fits are reproducible.

    Returns:
        A :class:`RansacResult` with the best model found.

    Raises:
        HomographyError: if no model with >= 4 inliers exists.
    """
    src = np.asarray(src, dtype=float)
    dst = np.asarray(dst, dtype=float)
    n = len(src)
    if n < 4:
        raise HomographyError(f"need at least 4 correspondences, got {n}")
    if rng is None:
        rng = np.random.default_rng(0)

    best_mask = np.zeros(n, dtype=bool)
    best_count = 0
    required_iterations = max_iterations
    iteration = 0

    while iteration < min(required_iterations, max_iterations):
        iteration += 1
        sample = rng.choice(n, size=4, replace=False)
        try:
            H = estimate_homography(src[sample], dst[sample])
        except HomographyError:
            continue
        errors = Homography(H).transfer_error(src, dst)
        mask = errors < threshold
        count = int(mask.sum())
        if count > best_count:
            best_count = count
            best_mask = mask
            inlier_ratio = count / n
            if inlier_ratio >= 1.0:
                break
            # Adaptive termination: enough draws that with probability
            # `confidence` at least one sample was all-inlier.
            denom = np.log(max(1e-12, 1.0 - inlier_ratio**4))
            if denom < 0:
                required_iterations = int(
                    np.ceil(np.log(1.0 - confidence) / denom)
                )

    if best_count < 4:
        raise HomographyError("RANSAC failed: no model with 4+ inliers")

    # Refit on the inlier set and re-gate until stable: the minimal
    # 4-point model amplifies noise, so the first mask usually misses
    # genuine inliers.
    mask = best_mask
    final = Homography(estimate_homography(src[mask], dst[mask]))
    for _ in range(3):
        errors = final.transfer_error(src, dst)
        new_mask = errors < threshold
        if new_mask.sum() <= mask.sum() and np.array_equal(new_mask, mask):
            break
        if new_mask.sum() >= 4:
            mask = new_mask
            final = Homography(estimate_homography(src[mask], dst[mask]))
        else:
            break
    errors = final.transfer_error(src[mask], dst[mask])
    rmse = float(np.sqrt(np.mean(errors**2)))
    return RansacResult(
        homography=final,
        inlier_mask=mask,
        iterations=iteration,
        inlier_rmse=rmse,
    )

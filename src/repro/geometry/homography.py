"""Planar homography estimation and application.

EECS builds homographies between the "ground planes" of pairs of
cameras offline, from landmark correspondences, and uses them online to
re-identify the same object across views (Section IV-C).  This module
implements the normalised direct linear transform (DLT) used to fit the
3x3 mapping and a small :class:`Homography` wrapper with composition
and inversion.
"""

from __future__ import annotations

import numpy as np


class HomographyError(ValueError):
    """Raised when a homography cannot be estimated from the input."""


def _normalise_points(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Hartley normalisation: zero mean, average distance sqrt(2)."""
    centroid = points.mean(axis=0)
    shifted = points - centroid
    mean_dist = np.mean(np.linalg.norm(shifted, axis=1))
    if mean_dist < 1e-12:
        raise HomographyError("degenerate point set: all points coincide")
    scale = np.sqrt(2.0) / mean_dist
    T = np.array(
        [
            [scale, 0.0, -scale * centroid[0]],
            [0.0, scale, -scale * centroid[1]],
            [0.0, 0.0, 1.0],
        ]
    )
    normed = shifted * scale
    return normed, T


def estimate_homography(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Fit ``H`` such that ``dst ~ H @ src`` from >= 4 correspondences.

    Uses the normalised DLT: build the 2n x 9 design matrix and take the
    right singular vector of the smallest singular value.

    Args:
        src: ``(n, 2)`` source points.
        dst: ``(n, 2)`` destination points.

    Returns:
        3x3 homography normalised so ``H[2, 2] == 1``.

    Raises:
        HomographyError: on fewer than 4 points or degenerate input.
    """
    src = np.asarray(src, dtype=float)
    dst = np.asarray(dst, dtype=float)
    if src.shape != dst.shape or src.ndim != 2 or src.shape[1] != 2:
        raise HomographyError(
            f"expected matching (n, 2) arrays, got {src.shape} and {dst.shape}"
        )
    n = src.shape[0]
    if n < 4:
        raise HomographyError(f"need at least 4 correspondences, got {n}")

    src_n, T_src = _normalise_points(src)
    dst_n, T_dst = _normalise_points(dst)

    A = np.zeros((2 * n, 9))
    for i in range(n):
        x, y = src_n[i]
        u, v = dst_n[i]
        A[2 * i] = [-x, -y, -1, 0, 0, 0, u * x, u * y, u]
        A[2 * i + 1] = [0, 0, 0, -x, -y, -1, v * x, v * y, v]

    _, s, vt = np.linalg.svd(A)
    if s[-2] < 1e-12:
        raise HomographyError("degenerate configuration (collinear points?)")
    H_n = vt[-1].reshape(3, 3)
    H = np.linalg.inv(T_dst) @ H_n @ T_src
    if abs(H[2, 2]) < 1e-12:
        raise HomographyError("estimated homography is singular at infinity")
    return H / H[2, 2]


def apply_homography(H: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 3x3 homography to ``(2,)`` or ``(n, 2)`` points."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    homo = np.column_stack([pts, np.ones(len(pts))])
    mapped = (H @ homo.T).T
    with np.errstate(divide="ignore", invalid="ignore"):
        out = mapped[:, :2] / mapped[:, 2:3]
    if np.asarray(points).ndim == 1:
        return out[0]
    return out


class Homography:
    """A 3x3 planar projective mapping with convenience operations."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (3, 3):
            raise HomographyError(f"expected 3x3 matrix, got {matrix.shape}")
        if abs(np.linalg.det(matrix)) < 1e-15:
            raise HomographyError("homography matrix is singular")
        self.matrix = matrix / matrix[2, 2] if abs(matrix[2, 2]) > 1e-12 else matrix

    @classmethod
    def identity(cls) -> "Homography":
        return cls(np.eye(3))

    @classmethod
    def from_points(cls, src: np.ndarray, dst: np.ndarray) -> "Homography":
        return cls(estimate_homography(src, dst))

    def apply(self, points: np.ndarray) -> np.ndarray:
        return apply_homography(self.matrix, points)

    def inverse(self) -> "Homography":
        return Homography(np.linalg.inv(self.matrix))

    def compose(self, other: "Homography") -> "Homography":
        """Return the mapping that applies ``other`` first, then ``self``."""
        return Homography(self.matrix @ other.matrix)

    def transfer_error(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Per-point Euclidean error of ``apply(src)`` against ``dst``."""
        mapped = self.apply(src)
        return np.linalg.norm(np.atleast_2d(mapped) - np.atleast_2d(dst), axis=1)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Homography(det={np.linalg.det(self.matrix):.3g})"


def homography_between_cameras(cam_a, cam_b) -> Homography:
    """Ground-plane homography mapping pixels of ``cam_a`` to ``cam_b``.

    Composes ``cam_a``'s image->ground mapping with ``cam_b``'s
    ground->image mapping, mirroring how the paper chains the per-camera
    ground homographies shipped with the datasets.
    """
    H_a = cam_a.ground_homography()  # ground -> image_a
    H_b = cam_b.ground_homography()  # ground -> image_b
    return Homography(H_b @ np.linalg.inv(H_a))

"""Pinhole camera model.

The synthetic world lives in a right-handed coordinate system with the
ground plane at ``z = 0`` and ``z`` pointing up.  A camera is described
by intrinsics (focal length, principal point, image size) and a pose
(position plus yaw/pitch).  The model supports projecting world points
to pixels, testing visibility, and extracting the ground-plane
homography that maps ``(x, y)`` world coordinates on ``z = 0`` to image
pixels — the same construction the evaluation datasets of the paper
ship with their calibration files.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CameraIntrinsics:
    """Intrinsic parameters of a pinhole camera.

    Attributes:
        focal_px: Focal length expressed in pixels.
        width: Image width in pixels.
        height: Image height in pixels.
        cx: Principal point x (defaults to image centre).
        cy: Principal point y (defaults to image centre).
    """

    focal_px: float
    width: int
    height: int
    cx: float = float("nan")
    cy: float = float("nan")

    def __post_init__(self) -> None:
        if self.focal_px <= 0:
            raise ValueError(f"focal_px must be positive, got {self.focal_px}")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if math.isnan(self.cx):
            object.__setattr__(self, "cx", self.width / 2.0)
        if math.isnan(self.cy):
            object.__setattr__(self, "cy", self.height / 2.0)

    @property
    def matrix(self) -> np.ndarray:
        """The 3x3 intrinsic matrix ``K``."""
        return np.array(
            [
                [self.focal_px, 0.0, self.cx],
                [0.0, self.focal_px, self.cy],
                [0.0, 0.0, 1.0],
            ]
        )

    @property
    def resolution(self) -> tuple[int, int]:
        """(width, height) in pixels."""
        return (self.width, self.height)

    @property
    def pixels(self) -> int:
        """Total pixel count — drives resolution-dependent energy costs."""
        return self.width * self.height


@dataclass(frozen=True)
class CameraPose:
    """Extrinsic pose: camera centre in world coordinates plus orientation.

    Attributes:
        x, y, z: Camera centre (metres); ``z`` is the mounting height.
        yaw: Rotation about the world z-axis, radians.  ``yaw = 0`` looks
            along +x.
        pitch: Downward tilt in radians (positive looks down at the
            ground, which is the usual surveillance mounting).
    """

    x: float
    y: float
    z: float
    yaw: float = 0.0
    pitch: float = 0.0

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y, self.z])

    @property
    def rotation(self) -> np.ndarray:
        """World-to-camera rotation matrix.

        Camera frame convention: +z forward (optical axis), +x right,
        +y down, so that projecting with ``K`` lands in standard image
        coordinates with the origin at the top-left.
        """
        cy_, sy = math.cos(self.yaw), math.sin(self.yaw)
        cp, sp = math.cos(self.pitch), math.sin(self.pitch)
        # Forward (optical axis) in world coordinates.
        forward = np.array([cy_ * cp, sy * cp, -sp])
        # Right vector: forward x world-up, horizontal, pointing to the
        # camera's right as seen through the viewfinder.
        right = np.array([sy, -cy_, 0.0])
        # Down vector completes the right-handed triad (positive image
        # y runs towards the ground).
        down = np.cross(forward, right)
        return np.stack([right, down, forward])


class PinholeCamera:
    """A calibrated pinhole camera looking at the ground-plane world."""

    def __init__(
        self,
        intrinsics: CameraIntrinsics,
        pose: CameraPose,
        camera_id: str = "cam",
    ) -> None:
        self.intrinsics = intrinsics
        self.pose = pose
        self.camera_id = camera_id
        self._K = intrinsics.matrix
        self._R = pose.rotation
        self._t = -self._R @ pose.position

    @property
    def projection_matrix(self) -> np.ndarray:
        """The 3x4 projection matrix ``P = K [R | t]``."""
        return self._K @ np.hstack([self._R, self._t[:, None]])

    def project(self, points: np.ndarray) -> np.ndarray:
        """Project world points to pixel coordinates.

        Args:
            points: ``(3,)`` or ``(n, 3)`` array of world coordinates.

        Returns:
            ``(2,)`` or ``(n, 2)`` pixel coordinates.  Points behind the
            camera yield ``nan``.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        cam = (self._R @ pts.T).T + self._t
        depth = cam[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            uv = (self._K @ cam.T).T
            uv = uv[:, :2] / uv[:, 2:3]
        uv[depth <= 1e-9] = np.nan
        if np.asarray(points).ndim == 1:
            return uv[0]
        return uv

    def depth_of(self, points: np.ndarray) -> np.ndarray:
        """Distance along the optical axis for each world point."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        cam = (self._R @ pts.T).T + self._t
        depth = cam[:, 2]
        if np.asarray(points).ndim == 1:
            return depth[0]
        return depth

    def is_visible(self, point: np.ndarray, margin: float = 0.0) -> bool:
        """Whether a world point projects inside the image bounds."""
        uv = self.project(np.asarray(point, dtype=float))
        if np.any(np.isnan(uv)):
            return False
        w, h = self.intrinsics.width, self.intrinsics.height
        return bool(
            -margin <= uv[0] <= w + margin and -margin <= uv[1] <= h + margin
        )

    def ground_homography(self) -> np.ndarray:
        """Homography mapping ground-plane ``(x, y, 1)`` to pixels.

        For points with ``z = 0`` the projection reduces to
        ``H = K [r1 r2 t]`` where ``r1, r2`` are the first two columns
        of ``R``.
        """
        H = self._K @ np.column_stack([self._R[:, 0], self._R[:, 1], self._t])
        return H / H[2, 2]

    def project_ground(self, xy: np.ndarray) -> np.ndarray:
        """Project ground-plane world coordinates ``(x, y)`` to pixels."""
        single = np.asarray(xy).ndim == 1
        xy = np.atleast_2d(np.asarray(xy, dtype=float))
        pts = np.column_stack([xy, np.zeros(len(xy))])
        uv = self.project(pts)
        if single:
            return uv[0]
        return uv

    def backproject_to_ground(self, uv: np.ndarray) -> np.ndarray:
        """Map pixel coordinates back to the ground plane ``z = 0``."""
        H = self.ground_homography()
        Hinv = np.linalg.inv(H)
        pts = np.atleast_2d(np.asarray(uv, dtype=float))
        homo = np.column_stack([pts, np.ones(len(pts))])
        ground = (Hinv @ homo.T).T
        ground = ground[:, :2] / ground[:, 2:3]
        if np.asarray(uv).ndim == 1:
            return ground[0]
        return ground

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"PinholeCamera(id={self.camera_id!r}, "
            f"pos=({self.pose.x:.1f},{self.pose.y:.1f},{self.pose.z:.1f}), "
            f"res={self.intrinsics.width}x{self.intrinsics.height})"
        )

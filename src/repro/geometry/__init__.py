"""Multi-view geometry substrate.

Provides the pinhole-camera model, planar homography estimation (direct
linear transform with Hartley normalisation) and RANSAC robust fitting.
These are the geometric tools EECS uses to project detections between
overlapping camera views (Section IV-C of the paper).
"""

from repro.geometry.camera import CameraIntrinsics, CameraPose, PinholeCamera
from repro.geometry.homography import (
    Homography,
    estimate_homography,
    homography_between_cameras,
)
from repro.geometry.ransac import RansacResult, ransac_homography

__all__ = [
    "CameraIntrinsics",
    "CameraPose",
    "PinholeCamera",
    "Homography",
    "estimate_homography",
    "homography_between_cameras",
    "RansacResult",
    "ransac_homography",
]

"""Crash-safe checkpoint/resume for long-running deployments.

The paper sizes per-frame energy budgets from a 6-hour operation time
(Section VI): deployments are *long*.  This package makes them
restartable — the deployment engine snapshots its full mutable state
(clock, rng bit-generator states, battery totals, accumulated result
partials, selection decisions, telemetry counters) to a versioned,
atomically written JSON checkpoint every ``K`` rounds and on SIGTERM,
and a resumed run continues bit-identically to one that was never
interrupted.

Layers:

* :mod:`repro.checkpoint.store` — the ``repro.checkpoint.v1``
  document, fingerprint validation, atomic persistence.
* :mod:`repro.checkpoint.codec` — exact JSON encoding of rng states,
  decisions, controller state and run results.
* :mod:`repro.checkpoint.hooks` — cadence, SIGTERM handling and the
  ``crash_after`` crash-injection test hook.

The package sits below :mod:`repro.engine` in the layer contract: it
encodes values and stores documents; the engine and the environments
decide *what* their state is.
"""

from repro.checkpoint.codec import (
    decision_from_dict,
    decision_to_dict,
    restore_rng_state,
    rng_state_to_dict,
    run_result_to_dict,
)
from repro.checkpoint.hooks import (
    CheckpointConfig,
    CheckpointInterrupted,
    RunCheckpointer,
    SimulatedCrash,
)
from repro.checkpoint.store import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    CheckpointStore,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointConfig",
    "CheckpointError",
    "CheckpointInterrupted",
    "CheckpointStore",
    "RunCheckpointer",
    "SimulatedCrash",
    "decision_from_dict",
    "decision_to_dict",
    "restore_rng_state",
    "rng_state_to_dict",
    "run_result_to_dict",
]

"""Checkpoint cadence, graceful termination and crash injection.

:class:`RunCheckpointer` is the object a deployment loop drives: the
loop reports each completed unit of work (a round for the frame-loop
engine, a frame tick for the event-driven environment) together with a
``capture`` callback that serialises the current state, and the
checkpointer decides when to persist it — every ``K`` units, plus
immediately when a SIGTERM arrived, so an orchestrator's shutdown
signal (systemd stop, Kubernetes eviction, a queue pre-emption) ends
the run at the last consistent snapshot instead of losing it.

``crash_after`` is the crash-safety test hook: after the checkpoint at
that position is written, the checkpointer raises
:class:`SimulatedCrash` — the controller-process analogue of the node
crashes the fault subsystem injects, used by the kill-and-resume
golden tests and the CI smoke job.
"""

from __future__ import annotations

import signal
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.checkpoint.store import CheckpointStore


@dataclass(frozen=True)
class CheckpointConfig:
    """How (and whether) a deployment checkpoints.

    Attributes:
        directory: Checkpoint directory (created on first save).
        every: Persist a snapshot every this-many completed units
            (rounds for engine runs, frame ticks for chaos runs).
        resume: Restore from the directory's checkpoint instead of
            starting fresh.  Resuming with no checkpoint on disk (the
            crash happened before the first save) starts from scratch,
            which is the correct continuation.
        crash_after: Test hook — raise :class:`SimulatedCrash` right
            after the checkpoint at this 0-based position is written.
    """

    directory: str | Path
    every: int = 1
    resume: bool = False
    crash_after: int | None = None

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.crash_after is not None and self.crash_after < 0:
            raise ValueError("crash_after cannot be negative")


class CheckpointInterrupted(RuntimeError):
    """The run stopped early at a consistent checkpoint.

    Carries where the snapshot lives and how far the run got, so
    callers (the CLI, the tests) can tell the user how to resume.
    """

    def __init__(self, message: str, path: Path, position: int) -> None:
        super().__init__(message)
        self.path = path
        self.position = position


class SimulatedCrash(CheckpointInterrupted):
    """An injected controller-process crash (``crash_after`` hook)."""


class RunCheckpointer:
    """Drives one run's checkpoint cadence against a store.

    Usage from a deployment loop::

        state = checkpointer.begin("run", fingerprint)   # None = fresh
        ...restore from state...
        for index, unit in enumerate(units):
            ...execute unit...
            checkpointer.unit_complete(index, len(units), capture)
        checkpointer.finish()

    ``begin`` also installs a SIGTERM handler (main thread only; a
    worker thread leaves process signals alone) that requests a save
    at the next unit boundary followed by :class:`CheckpointInterrupted`.
    ``finish`` restores the previous handler; the engine calls it from
    a ``finally`` block, so the handler never leaks past the run.
    """

    def __init__(self, config: CheckpointConfig) -> None:
        self.config = config
        self.store = CheckpointStore(config.directory)
        self._kind = "run"
        self._fingerprint: dict = {}
        self._sigterm_received = False
        self._previous_handler = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin(self, kind: str, fingerprint: dict) -> dict | None:
        """Start (or resume) a run; returns the state to restore."""
        self._kind = kind
        self._fingerprint = fingerprint
        self._install_sigterm_handler()
        if self.config.resume:
            return self.store.load(kind, fingerprint)
        return None

    def finish(self) -> None:
        """Uninstall the SIGTERM handler (idempotent)."""
        if self._previous_handler is not None:
            signal.signal(signal.SIGTERM, self._previous_handler)
            self._previous_handler = None

    # ------------------------------------------------------------------
    # Cadence
    # ------------------------------------------------------------------
    def save(self, position: int, capture: Callable[[], dict]) -> Path:
        """Unconditionally persist ``capture()`` as position+1 done."""
        return self.store.save(self._kind, self._fingerprint, capture())

    def unit_complete(
        self,
        position: int,
        total: int,
        capture: Callable[[], dict],
    ) -> None:
        """Report one completed unit; saves / stops as configured.

        Raises:
            CheckpointInterrupted: A SIGTERM arrived; the snapshot for
                ``position`` is on disk.
            SimulatedCrash: The ``crash_after`` hook fired.
        """
        completed = position + 1
        crash_here = self.config.crash_after == position
        due = completed % self.config.every == 0 and completed < total
        if due or crash_here or self._sigterm_received:
            path = self.save(position, capture)
            if self._sigterm_received:
                raise CheckpointInterrupted(
                    f"SIGTERM: run checkpointed after unit {position} "
                    f"at {path}; re-run with resume enabled to continue",
                    path=path,
                    position=position,
                )
            if crash_here:
                raise SimulatedCrash(
                    f"simulated controller crash after unit {position} "
                    f"(checkpoint at {path})",
                    path=path,
                    position=position,
                )

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _install_sigterm_handler(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return
        try:
            self._previous_handler = signal.signal(
                signal.SIGTERM, self._on_sigterm
            )
        except ValueError:  # pragma: no cover - non-main interpreter
            self._previous_handler = None

    def _on_sigterm(self, signum, frame) -> None:  # pragma: no cover
        self._sigterm_received = True

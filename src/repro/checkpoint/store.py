"""Versioned, atomically written checkpoint documents.

A checkpoint directory holds one ``checkpoint.json``: the latest
consistent snapshot of a run in flight.  Every save goes through
:func:`~repro.ioutils.atomic_write_json`, so a controller crash at any
instant — including mid-checkpoint — leaves either the previous
complete checkpoint or the new one on disk, never a torn file.

The document format (``repro.checkpoint.v1``, documented next to the
telemetry schemas in :mod:`repro.telemetry.schema`)::

    {"schema": "repro.checkpoint.v1",
     "kind": "run" | "chaos",
     "fingerprint": {...},   # the configuration that produced it
     "state": {...}}         # kind-specific resume payload

The ``fingerprint`` pins the run configuration (policy, seed, window,
budget, dataset, fault plan ...): :meth:`CheckpointStore.load` refuses
a checkpoint whose fingerprint does not match the resuming run's,
because restoring state into a different configuration would silently
produce garbage instead of a bit-identical continuation.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.ioutils import atomic_write_json

#: Schema tag written into (and required from) every checkpoint file.
CHECKPOINT_SCHEMA = "repro.checkpoint.v1"


class CheckpointError(RuntimeError):
    """A checkpoint document is unreadable, mistyped or mismatched."""


def _normalize(value: object) -> object:
    """Canonicalise through JSON so in-memory fingerprints (tuples,
    ints vs floats) compare equal to their on-disk form."""
    return json.loads(json.dumps(value, sort_keys=True))


class CheckpointStore:
    """One run's checkpoint directory."""

    FILENAME = "checkpoint.json"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    @property
    def path(self) -> Path:
        return self.directory / self.FILENAME

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, kind: str, fingerprint: dict, state: dict) -> Path:
        """Atomically persist one snapshot (replacing any previous)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        return atomic_write_json(
            self.path,
            {
                "schema": CHECKPOINT_SCHEMA,
                "kind": kind,
                "fingerprint": _normalize(fingerprint),
                "state": state,
            },
        )

    def load(self, kind: str, fingerprint: dict) -> dict | None:
        """The stored resume state, or ``None`` when no checkpoint
        exists (a crash before the first save resumes from scratch).

        Raises:
            CheckpointError: The file is not a ``repro.checkpoint.v1``
                document of the requested kind, or it was written by a
                different run configuration.
        """
        if not self.exists():
            return None
        try:
            document = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint at {self.path}: {exc}"
            ) from exc
        schema = document.get("schema")
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"{self.path}: schema {schema!r} is not "
                f"{CHECKPOINT_SCHEMA!r}"
            )
        if document.get("kind") != kind:
            raise CheckpointError(
                f"{self.path}: checkpoint kind {document.get('kind')!r} "
                f"does not match this deployment ({kind!r})"
            )
        stored = document.get("fingerprint")
        expected = _normalize(fingerprint)
        if stored != expected:
            drift = sorted(
                key
                for key in set(stored or {}) | set(expected)
                if (stored or {}).get(key) != expected.get(key)
            )
            raise CheckpointError(
                f"{self.path}: checkpoint was written by a different run "
                f"configuration (fields that differ: {', '.join(drift)})"
            )
        state = document.get("state")
        if not isinstance(state, dict):
            raise CheckpointError(f"{self.path}: missing state payload")
        return state

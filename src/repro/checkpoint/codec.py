"""Lossless JSON encoding of in-flight run state.

Everything a resumed deployment must restore bit-for-bit goes through
here: numpy bit-generator states, selection decisions (with their
accuracy triples), controller camera state and accumulated
:class:`~repro.engine.core.RunResult` partials.  All payloads are
plain JSON values; floats survive exactly because JSON round-trips
Python doubles, and the generator states are arbitrary-precision
integers, which JSON also preserves.

The module deliberately knows nothing about the engine or the event
simulator — it encodes *values* (generators, decisions, controllers),
so it sits below :mod:`repro.engine` in the layer contract and both
execution environments can share it.
"""

from __future__ import annotations

import numpy as np

from repro.core.accuracy import DesiredAccuracy, GlobalAccuracy
from repro.core.controller import (
    CAMERA_ACTIVE,
    EECSController,
    SelectionDecision,
)


# ----------------------------------------------------------------------
# RNG bit-generator state
# ----------------------------------------------------------------------
def rng_state_to_dict(generator: np.random.Generator) -> dict:
    """A generator's full bit-generator state as JSON-able values.

    Numpy's state dicts mix Python ints with numpy scalars and (for
    some bit generators) arrays; everything is coerced to built-ins so
    the payload survives a JSON round-trip unchanged.
    """

    def convert(value: object) -> object:
        if isinstance(value, dict):
            return {key: convert(item) for key, item in value.items()}
        if isinstance(value, np.ndarray):
            return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        return value

    return convert(dict(generator.bit_generator.state))


def restore_rng_state(generator: np.random.Generator, state: dict) -> None:
    """Restore a state captured by :func:`rng_state_to_dict`."""

    def revive(value: object) -> object:
        if isinstance(value, dict):
            if "__ndarray__" in value:
                return np.asarray(
                    value["__ndarray__"], dtype=value["dtype"]
                )
            return {key: revive(item) for key, item in value.items()}
        return value

    generator.bit_generator.state = revive(state)


# ----------------------------------------------------------------------
# Selection decisions
# ----------------------------------------------------------------------
def decision_to_dict(decision: SelectionDecision) -> dict:
    return {
        "assignment": dict(decision.assignment),
        "baseline": [
            decision.baseline.num_objects,
            decision.baseline.mean_probability,
        ],
        "desired": [
            decision.desired.min_objects,
            decision.desired.min_probability,
        ],
        "achieved": [
            decision.achieved.num_objects,
            decision.achieved.mean_probability,
        ],
        "ranked_camera_ids": list(decision.ranked_camera_ids),
    }


def decision_from_dict(data: dict) -> SelectionDecision:
    return SelectionDecision(
        assignment=dict(data["assignment"]),
        baseline=GlobalAccuracy(*data["baseline"]),
        desired=DesiredAccuracy(*data["desired"]),
        achieved=GlobalAccuracy(*data["achieved"]),
        ranked_camera_ids=list(data["ranked_camera_ids"]),
    )


# ----------------------------------------------------------------------
# Controller camera state (batteries, liveness, matching)
# ----------------------------------------------------------------------
def controller_state_to_dict(controller: EECSController) -> dict:
    """Per-camera mutable controller state: battery consumed totals,
    liveness beliefs and training-item bindings."""
    return {
        camera_id: {
            "consumed_joules": controller.camera(camera_id).battery.consumed,
            "alive": controller.camera(camera_id).alive,
            "matched_item": controller.camera(camera_id).matched_item,
            "mode": controller.camera(camera_id).mode,
        }
        for camera_id in controller.camera_ids
    }


def restore_controller_state(
    controller: EECSController, state: dict
) -> None:
    for camera_id, fields in state.items():
        camera = controller.camera(camera_id)
        camera.alive = bool(fields["alive"])
        camera.matched_item = fields["matched_item"]
        camera.battery.restore_consumed(float(fields["consumed_joules"]))
        # Checkpoints written before the resilience layer carry no
        # mode; they predate degradation, so every camera was active.
        controller.set_camera_mode(
            camera_id, fields.get("mode", CAMERA_ACTIVE)
        )


# ----------------------------------------------------------------------
# Run results
# ----------------------------------------------------------------------
def run_result_to_dict(result) -> dict:
    """A :class:`~repro.engine.core.RunResult` as exact JSON values.

    Used by the CLI's ``--result-out`` dump; two bit-identical runs
    produce byte-identical documents, which is what the
    checkpoint-smoke CI job diffs.
    """
    return {
        "mode": result.mode,
        "humans_detected": result.humans_detected,
        "humans_present": result.humans_present,
        "energy_joules": result.energy_joules,
        "processing_joules": result.processing_joules,
        "communication_joules": result.communication_joules,
        "energy_by_camera": dict(sorted(result.energy_by_camera.items())),
        "mean_fused_probability": result.mean_fused_probability,
        "frames_evaluated": result.frames_evaluated,
        "processing_seconds": result.processing_seconds,
        "decisions": [decision_to_dict(d) for d in result.decisions],
    }


def chaos_result_to_dict(result) -> dict:
    """A :class:`~repro.experiments.faults.ChaosResult` as exact JSON
    values (minus the spec it echoes back).

    The chaos counterpart of :func:`run_result_to_dict`: the CLI's
    ``chaos --result-out`` dump, byte-diffed by the resilience-smoke
    CI job to pin quarantine-active kill-and-resume.
    """
    return {
        "humans_detected": result.humans_detected,
        "humans_present": result.humans_present,
        "delivered_messages": result.delivered_messages,
        "dropped_messages": result.dropped_messages,
        "retransmissions": result.retransmissions,
        "gave_up": result.gave_up,
        "duplicates_dropped": result.duplicates_dropped,
        "suppressed_sends": result.suppressed_sends,
        "battery_by_camera": dict(sorted(result.battery_by_camera.items())),
        "num_decisions": result.num_decisions,
        "final_assignment": dict(sorted(result.final_assignment.items())),
        "fault_events": [fault_event_to_dict(e) for e in result.fault_events],
        "recovery_events": [
            fault_event_to_dict(e) for e in result.recovery_events
        ],
        "simulated_s": result.simulated_s,
        "corrupted_received": result.corrupted_received,
        "breaker_blocked": result.breaker_blocked,
        "camera_modes": dict(sorted(result.camera_modes.items())),
    }


# ----------------------------------------------------------------------
# Fault-log positions (chaos replay verification)
# ----------------------------------------------------------------------
def fault_event_to_dict(event) -> dict:
    return {
        "time_s": event.time_s,
        "kind": event.kind,
        "subject": event.subject,
        "detail": event.detail,
    }


def verify_event_prefix(
    recorded: list[dict], replayed: list, label: str
) -> None:
    """Assert that a replayed fault/recovery log starts with exactly
    the events a checkpoint recorded.

    The discrete-event environment resumes by seeded replay; this is
    the consistency check that the replay really is the same
    trajectory the checkpoint came from.  Raises ``ValueError`` on the
    first divergence.
    """
    if len(replayed) < len(recorded):
        raise ValueError(
            f"replayed {label} log has {len(replayed)} events but the "
            f"checkpoint recorded {len(recorded)}: the resumed run is "
            f"not the checkpointed trajectory"
        )
    for index, expected in enumerate(recorded):
        actual = fault_event_to_dict(replayed[index])
        if actual != expected:
            raise ValueError(
                f"replayed {label} event #{index} diverges from the "
                f"checkpoint: expected {expected!r}, got {actual!r}"
            )


def policy_state_to_dict(policy) -> dict | None:
    """A coordination policy's mutable per-run state, or ``None``.

    Duck-typed (the codec sits below :mod:`repro.engine`): any object
    with a ``snapshot_state()`` method participates; stateless
    policies return ``None`` and contribute nothing to the payload, so
    checkpoints written before stateful policies existed are unchanged.
    """
    snapshot = getattr(policy, "snapshot_state", None)
    return snapshot() if snapshot is not None else None


def restore_policy_state(policy, state: dict | None) -> None:
    """Adopt a :func:`policy_state_to_dict` payload (no-op for
    stateless policies or empty payloads)."""
    restore = getattr(policy, "restore_state", None)
    if restore is not None and state:
        restore(state)


def live_telemetry_to_dict(telemetry) -> dict:
    """Streaming-flush continuity state of a ``Telemetry`` object.

    A resumed run must keep emitting ``repro.stream.v1`` records with
    monotone ``seq`` and the alert engine must not re-fire conditions
    that were already active when the checkpoint was cut, so both ride
    in the run checkpoint beside the metrics snapshot.
    """
    return {
        "flush_seq": telemetry._flush_seq,
        "alerts": telemetry.alerts.snapshot(),
    }


def restore_live_telemetry(telemetry, state: dict) -> None:
    """Adopt a :func:`live_telemetry_to_dict` payload."""
    telemetry._flush_seq = int(state.get("flush_seq", 0))
    telemetry.alerts.restore(state.get("alerts", {}))

"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro table2            # Tables II/III/IV
    python -m repro table5 --frames 16 --repeats 2
    python -m repro fig3|fig4|fig5a|fig5b|fig6
    python -m repro run --dataset 1 --mode full --budget 2.0
    python -m repro run --dataset 1 --workers 4 --perf-report
    python -m repro run --metrics-out m.json --trace-out t.jsonl
    python -m repro run --checkpoint-dir ckpt --result-out result.json
    python -m repro run --checkpoint-dir ckpt --resume
    python -m repro chaos --loss-rate 0.2 --crash 1 --seed 7
    python -m repro run --stream-out s.jsonl --metrics-port 0
    python -m repro run --alert-rule 'battery_fraction_remaining < 0.25'
    python -m repro telemetry-report --metrics m.json --trace t.jsonl
    python -m repro obs profile trace.jsonl
    python -m repro obs diff baseline.json candidate.json
    python -m repro train --dataset 1 --save library.json
"""

from __future__ import annotations

import argparse
import logging
import sys

import numpy as np


def _make_telemetry(args: argparse.Namespace):
    """A Telemetry sink when any telemetry flag asked for one.

    The run id is derived from the command and seed so repeated runs of
    the same configuration produce byte-comparable dump files.
    """
    if not (
        args.metrics_out
        or args.trace_out
        or args.events_out
        or args.stream_out
        or args.metrics_port is not None
        or args.alert_rule
    ):
        return None
    from repro.telemetry import Telemetry

    return Telemetry(run_id=f"{args.command}-{args.seed}")


def _attach_live(telemetry, args: argparse.Namespace):
    """Wire the live flags: stream sink, alert rules, HTTP exporter.

    Returns the started exporter (or ``None``); the caller must pass
    it to :func:`_teardown_live` on every exit path.
    """
    if telemetry is None:
        return None
    if args.stream_out:
        from repro.telemetry import JsonlStreamSink

        telemetry.attach_sink(
            JsonlStreamSink(
                args.stream_out,
                rotate_bytes=args.stream_rotate_bytes,
                resume=bool(getattr(args, "resume", False)),
            )
        )
    if args.alert_rule:
        from repro.telemetry import AlertRuleError

        for expression in args.alert_rule:
            try:
                telemetry.add_alert_rule(expression)
            except AlertRuleError as exc:
                # Any stream sink attached above already holds an open
                # file handle; release it before bailing out.
                telemetry.close_sinks()
                raise SystemExit(f"error: {exc}")
    if args.metrics_port is None:
        return None
    from repro.telemetry import MetricsExporter

    try:
        exporter = MetricsExporter(telemetry, port=args.metrics_port)
        exporter.start()
    except OSError as exc:
        # Binding fails in the server constructor when the port is
        # already taken; surface it like every other CLI usage error
        # instead of a traceback, and release any attached sinks.
        telemetry.close_sinks()
        raise SystemExit(
            f"error: cannot serve metrics on port "
            f"{args.metrics_port}: {exc}"
        )
    print(
        f"serving /metrics and /status on "
        f"http://{exporter.host}:{exporter.port}"
    )
    return exporter


def _teardown_live(telemetry, exporter) -> None:
    if exporter is not None:
        exporter.close()
    if telemetry is not None:
        telemetry.close_sinks()


def _write_telemetry(telemetry, args: argparse.Namespace) -> None:
    if args.metrics_out:
        telemetry.write_metrics(args.metrics_out)
        print(
            f"wrote {telemetry.registry.series_count()} metric series "
            f"to {args.metrics_out}"
        )
    if args.trace_out:
        count = telemetry.write_trace(args.trace_out)
        print(f"wrote {count} spans to {args.trace_out}")
    if args.events_out:
        count = telemetry.write_events(args.events_out)
        print(f"wrote {count} events to {args.events_out}")


def _add_telemetry_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--metrics-out",
        default=None,
        help="dump the metrics snapshot (JSON; .prom/.txt for the "
        "Prometheus text format)",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        help="dump the span tree as JSONL (repro.span.v1)",
    )
    p.add_argument(
        "--events-out",
        default=None,
        help="dump structured events as JSONL (repro.event.v1)",
    )
    p.add_argument(
        "--stream-out",
        default=None,
        help="stream one repro.stream.v1 JSONL record per completed "
        "round/tick (atomic appends; readable while the run is live, "
        "and kill-and-resume stitches it gap-free)",
    )
    p.add_argument(
        "--stream-rotate-bytes",
        type=int,
        default=None,
        metavar="N",
        help="rotate the stream file atomically before it exceeds N "
        "bytes (default: never rotate)",
    )
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live Prometheus text on http://127.0.0.1:PORT"
        "/metrics and run state on /status while the run executes "
        "(0 picks a free port, printed at startup)",
    )
    p.add_argument(
        "--alert-rule",
        action="append",
        default=None,
        metavar="EXPR",
        help="threshold alert evaluated at every flush, e.g. "
        "'battery_fraction_remaining < 0.25' or "
        "'breaker_open_total > 3'; transitions are emitted as "
        "alert/alert_cleared events (repeatable)",
    )
    p.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="configure the logging module's root level",
    )


def _add_checkpoint_flags(p: argparse.ArgumentParser, unit: str) -> None:
    p.add_argument(
        "--checkpoint-dir",
        default=None,
        help="crash-safe checkpoint directory (repro.checkpoint.v1); "
        "snapshots are written atomically, and SIGTERM checkpoints at "
        f"the next {unit} boundary before exiting with status 3",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help=f"checkpoint cadence in completed {unit}s",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint-dir's snapshot; the completed "
        "run is bit-identical to an uninterrupted one",
    )
    p.add_argument(
        "--crash-after",
        type=int,
        default=None,
        metavar="N",
        help=f"test hook: checkpoint then crash after {unit} N "
        "(used by the kill-and-resume CI smoke)",
    )


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--resilience",
        action="store_true",
        help="enable the graceful-degradation layer: per-camera health "
        "scoring, circuit breakers on camera links, and the staged "
        "active -> degraded -> quarantined ladder with re-admission "
        "probes (off by default; with no faults the layer is provably "
        "inert)",
    )
    p.add_argument(
        "--health-degrade",
        type=float,
        default=None,
        metavar="H",
        help="health below which a camera is downgraded to its "
        "cheapest profile (default 0.65)",
    )
    p.add_argument(
        "--health-quarantine",
        type=float,
        default=None,
        metavar="H",
        help="health below which a camera is quarantined out of "
        "selection (default 0.35)",
    )
    p.add_argument(
        "--health-readmit",
        type=float,
        default=None,
        metavar="H",
        help="health a degraded/quarantined camera must regain to be "
        "readmitted (default 0.85)",
    )


def _make_resilience_config(args: argparse.Namespace):
    """The ResilienceConfig the flags describe (None = layer off)."""
    if not args.resilience:
        for flag in ("health_degrade", "health_quarantine", "health_readmit"):
            if getattr(args, flag) is not None:
                raise SystemExit(
                    f"--{flag.replace('_', '-')} requires --resilience"
                )
        return None
    from repro.resilience import ResilienceConfig, config_with_thresholds

    return config_with_thresholds(
        ResilienceConfig(enabled=True, seed=args.seed),
        degrade_below=args.health_degrade,
        quarantine_below=args.health_quarantine,
        readmit_above=args.health_readmit,
    )


def _check_predictive_flags(args: argparse.Namespace) -> None:
    """Reject predictive tunables without ``--mode predictive``."""
    if args.mode == "predictive":
        return
    for flag in (
        "wake_threshold",
        "predictor_warmup",
        "wake_probe_every",
        "max_sleepers",
        "low_energy_below",
    ):
        if getattr(args, flag) is not None:
            raise SystemExit(
                f"--{flag.replace('_', '-')} requires --mode predictive"
            )


def _make_checkpoint_config(args: argparse.Namespace):
    if not args.checkpoint_dir:
        if args.resume:
            raise SystemExit("--resume requires --checkpoint-dir")
        return None
    from repro.checkpoint import CheckpointConfig

    return CheckpointConfig(
        directory=args.checkpoint_dir,
        every=args.checkpoint_every,
        resume=args.resume,
        crash_after=args.crash_after,
    )


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments.table2_3_4 import algorithm_table, render_table

    mapping = {"table2": (1, "train"), "table3": (2, "train"),
               "table4": (1, "test")}
    number, segment = mapping[args.command]
    rows = algorithm_table(number, camera_index=args.camera, segment=segment)
    print(render_table(
        rows,
        title=f"{args.command.upper()} (dataset #{number}, "
              f"cam {args.camera + 1}, {segment})",
    ))
    return 0


def _cmd_table5(args: argparse.Namespace) -> int:
    from repro.experiments.table5 import similarity_matrix
    from repro.experiments.tables import format_table

    result = similarity_matrix(
        window_frames=args.frames,
        repeats=args.repeats,
        subspace_dim=args.subspace_dim,
    )
    headers = ["train\\test"] + result.labels
    rows = [
        [f"T_{label}"] + [f"{v:.2f}" for v in result.matrix[i]]
        for i, label in enumerate(result.labels)
    ]
    print(format_table(headers, rows))
    print(f"diagonal accuracy: {result.diagonal_accuracy:.2f}")
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments.fig3 import adaptive_vs_fixed
    from repro.experiments.tables import format_table

    results = adaptive_vs_fixed()
    print(format_table(
        ["strategy", "recall", "precision", "f_score", "choices"],
        [[r.strategy, r.recall, r.precision, r.f_score, str(r.per_dataset)]
         for r in results],
    ))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments.fig4 import tradeoff_curve
    from repro.experiments.tables import format_table

    points = tradeoff_curve(dataset_number=1)
    print(format_table(
        ["config", "detected", "present", "recall", "energy (J)"],
        [[p.label, p.humans_detected, p.humans_present, p.recall,
          p.energy_joules] for p in points],
    ))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments.fig5 import (
        HIGH_BUDGET,
        LOW_BUDGET,
        run_modes,
    )
    from repro.experiments.fig6 import DEFAULT_BUDGET
    from repro.experiments.tables import format_table

    if args.command == "fig5a":
        dataset, budget = 1, HIGH_BUDGET
    elif args.command == "fig5b":
        dataset, budget = 1, LOW_BUDGET
    else:
        dataset, budget = 2, DEFAULT_BUDGET
    results = run_modes(dataset_number=dataset, budget=budget)
    print(format_table(
        ["mode", "detected", "present", "energy (J)", "cameras/round"],
        [[r.mode, r.humans_detected, r.humans_present, r.energy_joules,
          str(r.cameras_per_round)] for r in results.values()],
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.checkpoint import (
        CheckpointError,
        CheckpointInterrupted,
        RunCheckpointer,
    )
    from repro.engine.spec import DeploymentSpec
    from repro.perf.timing import TimingReport

    telemetry = _make_telemetry(args)
    if telemetry is not None:
        from repro.telemetry.trace import TracingTimingReport

        timing = TracingTimingReport(telemetry.tracer)
    else:
        timing = TimingReport()
    config = None
    if (
        args.assessment_period is not None
        or args.recalibration_interval is not None
    ):
        from repro.core.config import EECSConfig

        defaults = EECSConfig()
        config = EECSConfig(
            assessment_period=(
                args.assessment_period
                if args.assessment_period is not None
                else defaults.assessment_period
            ),
            recalibration_interval=(
                args.recalibration_interval
                if args.recalibration_interval is not None
                else defaults.recalibration_interval
            ),
        )
    _check_predictive_flags(args)
    spec = DeploymentSpec(
        dataset_number=args.dataset,
        policy=args.mode,
        budget=args.budget,
        start=args.start,
        end=args.end,
        seed=args.seed,
        train_seed=args.seed,
        workers=args.workers,
        executor=args.executor,
        resilience=_make_resilience_config(args),
        fleet_cameras=args.fleet_cameras,
        cells=args.cells,
        wake_threshold=args.wake_threshold,
        predictor_warmup=args.predictor_warmup,
        wake_probe_every=args.wake_probe_every,
        max_sleepers=args.max_sleepers,
        low_energy_below=args.low_energy_below,
    )
    checkpoint_config = _make_checkpoint_config(args)
    checkpointer = (
        RunCheckpointer(checkpoint_config) if checkpoint_config else None
    )
    engine = spec.build_engine(
        config=config, telemetry=telemetry, timing=timing
    )
    exporter = _attach_live(telemetry, args)
    try:
        result = spec.execute(engine=engine, checkpointer=checkpointer)
    except CheckpointInterrupted as stop:
        print(f"interrupted: {stop}")
        if telemetry is not None:
            _write_telemetry(telemetry, args)
        return 3
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # Release pools and shared-memory segments on every exit path
        # (/dev/shm leaks otherwise survive the process).
        engine.close()
        _teardown_live(telemetry, exporter)
    if args.result_out:
        from repro.checkpoint.codec import run_result_to_dict
        from repro.ioutils import atomic_write_json

        atomic_write_json(args.result_out, run_result_to_dict(result))
        print(f"wrote run result to {args.result_out}")
    print(f"mode:            {result.mode}")
    print(f"humans detected: {result.humans_detected}/{result.humans_present}")
    print(f"energy:          {result.energy_joules:.1f} J "
          f"(processing {result.processing_joules:.1f}, "
          f"communication {result.communication_joules:.2f})")
    if result.decisions:
        cameras = [d.num_active for d in result.decisions]
        print(f"cameras/round:   {cameras}")
    if args.perf_report:
        stats = engine.library.cache_stats()
        print()
        print(engine.timing.format_report())
        print(
            f"calibration cache: {stats['hits']} hits, "
            f"{stats['misses']} misses, {stats['entries']} entries "
            f"(hit rate {stats['hit_rate']:.0%})"
        )
    if telemetry is not None:
        _write_telemetry(telemetry, args)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.checkpoint import CheckpointError, CheckpointInterrupted
    from repro.engine.context import shared_context
    from repro.engine.core import DeploymentEngine
    from repro.experiments.faults import (
        ChaosSpec,
        accuracy_retention,
        run_chaos,
    )
    from repro.faults.plan import FaultPlan

    runner = DeploymentEngine(
        shared_context(args.dataset, train_seed=args.seed)
    )
    resilience = _make_resilience_config(args)
    spec = ChaosSpec(
        dataset_number=args.dataset,
        loss_rate=args.loss_rate,
        crash_count=args.crash,
        seed=args.seed,
        num_frames=args.frames,
        budget=args.budget,
        fault_camera_count=args.fault_cameras,
        sensor_noise=args.sensor_noise,
        sensor_fp_rate=args.sensor_fp_rate,
        stuck=args.stuck,
        score_drift_per_s=args.score_drift,
        clock_skew=args.clock_skew,
        corruption_rate=args.corruption_rate,
        resilience=resilience,
    )
    plan = FaultPlan.load(args.fault_plan) if args.fault_plan else None
    telemetry = _make_telemetry(args)
    checkpoint_config = _make_checkpoint_config(args)

    baseline = run_chaos(
        ChaosSpec(
            dataset_number=args.dataset,
            seed=args.seed,
            num_frames=args.frames,
            budget=args.budget,
        ),
        runner,
    )
    # Only the faulty run is instrumented: its metrics are the ones
    # that show loss, retries and re-selection at work.  It is also
    # the only run checkpointed — the zero-fault baseline is cheap to
    # recompute on resume.
    exporter = _attach_live(telemetry, args)
    try:
        result = run_chaos(
            spec,
            runner,
            plan=plan,
            telemetry=telemetry,
            checkpoint=checkpoint_config,
        )
    except CheckpointInterrupted as stop:
        print(f"interrupted: {stop}")
        if telemetry is not None:
            _write_telemetry(telemetry, args)
        return 3
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        _teardown_live(telemetry, exporter)

    if args.result_out:
        from repro.checkpoint.codec import chaos_result_to_dict
        from repro.ioutils import atomic_write_json

        atomic_write_json(args.result_out, chaos_result_to_dict(result))
        print(f"wrote chaos result to {args.result_out}")
    print(f"zero-fault:      {baseline.humans_detected}/"
          f"{baseline.humans_present} detected "
          f"(rate {baseline.detection_rate:.3f})")
    print(f"under faults:    {result.humans_detected}/"
          f"{result.humans_present} detected "
          f"(rate {result.detection_rate:.3f})")
    print(f"retention:       {accuracy_retention(result, baseline):.3f}")
    print(f"messages:        {result.delivered_messages} delivered, "
          f"{result.dropped_messages} dropped, "
          f"{result.retransmissions} retransmitted, "
          f"{result.duplicates_dropped} duplicates suppressed, "
          f"{result.gave_up} gave up")
    print(f"radio+cpu:       {result.total_radio_joules:.2f} J drawn "
          f"(zero-fault {baseline.total_radio_joules:.2f} J)")
    print(f"selections:      {result.num_decisions} "
          f"(final assignment {result.final_assignment})")
    if result.corrupted_received or result.breaker_blocked:
        print(f"resilience:      {result.corrupted_received} corrupted "
              f"payloads discarded, {result.breaker_blocked} sends "
              f"blocked by open breakers")
    if result.camera_modes:
        modes = ", ".join(
            f"{camera}:{mode}"
            for camera, mode in sorted(result.camera_modes.items())
        )
        print(f"camera modes:    {modes}")
    if result.fault_events or result.recovery_events:
        print("events:")
        timeline = sorted(
            result.fault_events + result.recovery_events,
            key=lambda e: e.time_s,
        )
        for event in timeline:
            detail = f" — {event.detail}" if event.detail else ""
            print(f"  t={event.time_s:7.2f}s  {event.kind:<20} "
                  f"{event.subject}{detail}")
    if telemetry is not None:
        _write_telemetry(telemetry, args)
    return 0


def _cmd_telemetry_report(args: argparse.Namespace) -> int:
    from repro.telemetry.report import render_files

    if not (args.metrics or args.trace or args.events):
        print(
            "nothing to report: pass --metrics, --trace and/or --events",
            file=sys.stderr,
        )
        return 2
    print(
        render_files(
            metrics_path=args.metrics,
            trace_path=args.trace,
            events_path=args.events,
            events_limit=args.limit,
        )
    )
    return 0


def _cmd_obs_profile(args: argparse.Namespace) -> int:
    from repro.obs import load_spans, render_profile

    try:
        records = load_spans(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        render_profile(records, limit=args.limit, folded=args.folded),
        end="",
    )
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs import DiffThresholds, diff_runs, load_metrics, render_diff
    from repro.obs.diff import WORSE, has_regression

    overrides = {}
    for spec in args.threshold_for or ():
        name, _, value = spec.partition("=")
        if not value or name not in WORSE:
            print(
                f"error: bad --threshold-for {spec!r}; expected "
                f"indicator=fraction with indicator one of "
                f"{sorted(WORSE)}",
                file=sys.stderr,
            )
            return 2
        overrides[name] = float(value)
    try:
        baseline = load_metrics(args.baseline)
        candidate = load_metrics(args.candidate)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diffs = diff_runs(
        baseline,
        candidate,
        DiffThresholds(default=args.threshold, overrides=overrides),
    )
    print(render_diff(diffs), end="")
    return 1 if has_regression(diffs) else 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core.runner import build_training_library
    from repro.datasets.synthetic import make_dataset
    from repro.detection.detectors import make_detector_suite
    from repro.persistence import save_library

    dataset = make_dataset(args.dataset)
    detectors = make_detector_suite(dataset.environment)
    library = build_training_library(
        dataset, detectors, np.random.default_rng(args.seed)
    )
    save_library(library, args.save)
    print(f"trained {len(library)} items; saved to {args.save}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import ALL_SECTIONS, generate_report

    sections = (
        tuple(args.sections) if args.sections else ALL_SECTIONS
    )
    report = generate_report(sections=sections, scale=args.scale)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(report)
        print(f"wrote report to {args.output}")
    else:
        print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EECS reproduction: regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table2", "table3", "table4"):
        p = sub.add_parser(name, help=f"regenerate {name.upper()}")
        p.add_argument("--camera", type=int, default=0)
        p.set_defaults(func=_cmd_table)

    p = sub.add_parser("table5", help="regenerate the similarity matrix")
    p.add_argument("--frames", type=int, default=16)
    p.add_argument("--repeats", type=int, default=2)
    p.add_argument("--subspace-dim", type=int, default=8)
    p.set_defaults(func=_cmd_table5)

    sub.add_parser("fig3", help="adaptive vs fixed").set_defaults(
        func=_cmd_fig3
    )
    sub.add_parser("fig4", help="accuracy/energy trade-off").set_defaults(
        func=_cmd_fig4
    )
    for name in ("fig5a", "fig5b", "fig6"):
        sub.add_parser(name, help="EECS vs all-best").set_defaults(
            func=_cmd_fig5
        )

    from repro.engine.policy import available_policies

    p = sub.add_parser("run", help="one deployment run")
    p.add_argument("--dataset", type=int, default=1, choices=(1, 2, 3, 4))
    p.add_argument(
        "--mode",
        "--policy",
        default="full",
        choices=available_policies(),
        help="coordination policy (every registered policy is accepted; "
        "'fixed' additionally needs an assignment and is mainly for "
        "programmatic use)",
    )
    p.add_argument(
        "--wake-threshold",
        type=float,
        default=None,
        metavar="A",
        help="predictive policy: predicted activity (detections per "
        "assessment frame) below which a camera's assessment is "
        "skipped for the round (default 0.45)",
    )
    p.add_argument(
        "--predictor-warmup",
        type=int,
        default=None,
        metavar="N",
        help="predictive policy: assessed rounds a camera must be "
        "observed before it may sleep (default 2; larger than the "
        "run's round count reproduces subset bit for bit)",
    )
    p.add_argument(
        "--wake-probe-every",
        type=int,
        default=None,
        metavar="N",
        help="predictive policy: wake every sleeping camera for a "
        "probe assessment at least every N rounds (default 4)",
    )
    p.add_argument(
        "--max-sleepers",
        type=int,
        default=None,
        metavar="N",
        help="predictive policy: at most N cameras may sleep per round "
        "(the lowest-predicted win the slots; default 1; 0 = uncapped)",
    )
    p.add_argument(
        "--low-energy-below",
        type=float,
        default=None,
        metavar="A",
        help="predictive policy: downgrade woken selected cameras "
        "predicted below activity A to their cheapest affordable "
        "detector profile (default: disabled)",
    )
    p.add_argument("--budget", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument(
        "--start",
        type=int,
        default=None,
        help="first frame (default: the dataset's test segment start)",
    )
    p.add_argument(
        "--end",
        type=int,
        default=None,
        help="one past the last frame (default: the dataset end)",
    )
    p.add_argument(
        "--assessment-period",
        type=int,
        default=None,
        help="override the config's assessment period (frames)",
    )
    p.add_argument(
        "--recalibration-interval",
        type=int,
        default=None,
        help="override the config's re-calibration interval (frames); "
        "smaller intervals mean more rounds, hence more checkpoints",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan per-camera detection over N processes "
        "(identical results for any N; 1 = serial)",
    )
    p.add_argument(
        "--executor",
        choices=("serial", "pool", "shm"),
        default=None,
        help="detection executor backend: serial (in-process reference), "
        "pool (persistent process pool) or shm (process pool reading "
        "frames zero-copy from shared memory); default picks serial "
        "for --workers 1, pool otherwise — every backend is "
        "bit-identical",
    )
    p.add_argument(
        "--fleet-cameras",
        type=int,
        default=None,
        help="tile the dataset into a synthetic fleet of N cameras "
        "(training cost does not grow with fleet size)",
    )
    p.add_argument(
        "--cells",
        type=int,
        default=None,
        help="shard the fleet into N cells for the 'cell' policy "
        "(default: one fleet-wide cell); flat policies ignore it",
    )
    p.add_argument(
        "--perf-report",
        action="store_true",
        help="print per-section timings and cache counters after the run",
    )
    p.add_argument(
        "--result-out",
        default=None,
        help="dump the RunResult as exact JSON (two bit-identical runs "
        "produce byte-identical files)",
    )
    _add_resilience_flags(p)
    _add_checkpoint_flags(p, unit="round")
    _add_telemetry_flags(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "chaos",
        help="fault-injected networked deployment (loss, crashes)",
    )
    p.add_argument("--dataset", type=int, default=1, choices=(1, 2, 3, 4))
    p.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        help="uniform per-transmission packet loss on every link",
    )
    p.add_argument(
        "--crash",
        type=int,
        default=0,
        help="number of cameras to crash one third into the run",
    )
    p.add_argument(
        "--fault-plan",
        default=None,
        help="JSON FaultPlan file (overrides --loss-rate/--crash)",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--frames", type=int, default=18)
    p.add_argument("--budget", type=float, default=2.0)
    p.add_argument(
        "--fault-cameras",
        type=int,
        default=1,
        help="how many cameras (in id order) the sensor-level faults "
        "below target",
    )
    p.add_argument(
        "--sensor-noise",
        type=float,
        default=0.0,
        help="per-detection suppression probability during the fault "
        "window (a noisy sensor loses real detections)",
    )
    p.add_argument(
        "--sensor-fp-rate",
        type=float,
        default=0.0,
        help="Poisson rate of fabricated detections per message during "
        "the fault window",
    )
    p.add_argument(
        "--stuck",
        action="store_true",
        help="freeze the targeted sensors on their last healthy frame "
        "during the fault window",
    )
    p.add_argument(
        "--score-drift",
        type=float,
        default=0.0,
        metavar="D",
        help="calibration drift applied to detection scores "
        "(score units per simulated second)",
    )
    p.add_argument(
        "--clock-skew",
        type=float,
        default=0.0,
        help="fractional local-clock skew on the targeted cameras "
        "(0.5 = their intervals run 50%% slow)",
    )
    p.add_argument(
        "--corruption-rate",
        type=float,
        default=0.0,
        help="probability a delivered message from a targeted camera "
        "arrives garbled (discarded unacked by the receiver)",
    )
    p.add_argument(
        "--result-out",
        default=None,
        help="dump the ChaosResult as exact JSON (two bit-identical "
        "runs produce byte-identical files)",
    )
    _add_resilience_flags(p)
    _add_checkpoint_flags(p, unit="frame tick")
    _add_telemetry_flags(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "telemetry-report",
        help="render metrics/trace/event dump files as a text report",
    )
    p.add_argument("--metrics", default=None, help="metrics JSON dump")
    p.add_argument("--trace", default=None, help="span JSONL dump")
    p.add_argument("--events", default=None, help="event JSONL dump")
    p.add_argument(
        "--limit",
        type=int,
        default=40,
        help="event-timeline rows before truncation (truncation is "
        "announced as '(+N more events)')",
    )
    p.set_defaults(func=_cmd_telemetry_report)

    p = sub.add_parser(
        "obs",
        help="offline observability analysis over telemetry artifacts",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    p = obs_sub.add_parser(
        "profile",
        help="fold a span trace into flamegraph-style aggregates",
    )
    p.add_argument("trace", help="span JSONL dump (repro.span.v1)")
    p.add_argument(
        "--limit", type=int, default=30, help="span paths to show"
    )
    p.add_argument(
        "--folded",
        action="store_true",
        help="emit collapsed-stack lines (path self-µs) for external "
        "flamegraph tooling instead of the table",
    )
    p.set_defaults(func=_cmd_obs_profile)

    p = obs_sub.add_parser(
        "diff",
        help="compare two runs' efficiency indicators; exits 1 on "
        "regression",
    )
    p.add_argument("baseline", help="metrics JSON dump or stream JSONL")
    p.add_argument("candidate", help="metrics JSON dump or stream JSONL")
    p.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression tolerance (default 0.10 = 10%%)",
    )
    p.add_argument(
        "--threshold-for",
        action="append",
        default=None,
        metavar="INDICATOR=FRACTION",
        help="per-indicator override, e.g. joules_per_detection=0.05 "
        "(repeatable)",
    )
    p.set_defaults(func=_cmd_obs_diff)

    p = sub.add_parser("train", help="offline training -> JSON library")
    p.add_argument("--dataset", type=int, default=1, choices=(1, 2, 3, 4))
    p.add_argument("--save", required=True)
    p.add_argument("--seed", type=int, default=2017)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser(
        "report", help="regenerate all experiments as one Markdown report"
    )
    p.add_argument("--output", default=None, help="write to a file")
    p.add_argument(
        "--sections",
        nargs="+",
        default=None,
        help="subset of sections, e.g. table2 fig5a",
    )
    p.add_argument("--scale", choices=("small", "full"), default="small")
    p.set_defaults(func=_cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    level = getattr(args, "log_level", None)
    if level:
        logging.basicConfig(
            level=getattr(logging, level.upper()),
            format="%(levelname)s %(name)s: %(message)s",
        )
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Crash-safe file writing.

A plain ``path.write_text`` truncates the destination before the new
bytes land, so a crash mid-write (power loss, SIGKILL, a full disk)
leaves a corrupt or empty file where a valid one used to be.  Every
artefact the project persists — training libraries, checkpoints,
telemetry dumps, run results — goes through :func:`atomic_write_text`
instead: the content is written to a temporary file *in the same
directory* (same filesystem, so the final rename cannot cross a mount
boundary) and moved over the destination with :func:`os.replace`,
which POSIX guarantees to be atomic.  A crash at any point leaves
either the complete old file or the complete new file, never a mix.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


def atomic_write_text(
    path: str | Path, content: str, encoding: str = "utf-8"
) -> Path:
    """Write ``content`` to ``path`` atomically.

    The bytes are flushed and fsynced to a sibling temporary file
    before an :func:`os.replace` swings it into place, so a reader (or
    a resumed process) never observes a partially written file and the
    previous contents survive any crash that happens before the
    rename commits.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(content)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        # The destination is untouched; drop the orphaned temp file.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(
    path: str | Path, payload: object, indent: int | None = 1
) -> Path:
    """Serialise ``payload`` as JSON and write it atomically."""
    return atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    )

"""Saving and loading controller state.

A real deployment trains the controller once and ships the resulting
library to the field.  This module serialises a
:class:`~repro.core.calibration.TrainingLibrary` (profiles, thresholds,
score calibrators and optional feature stacks) to a JSON document and
back, so offline training survives process restarts.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.calibration import (
    AlgorithmProfile,
    TrainingItem,
    TrainingLibrary,
)
from repro.detection.scores import ScoreCalibrator
from repro.ioutils import atomic_write_json, atomic_write_text

__all__ = [
    "FORMAT_VERSION",
    "atomic_write_json",
    "atomic_write_text",
    "library_from_dict",
    "library_to_dict",
    "load_library",
    "save_library",
]

FORMAT_VERSION = 1


def _profile_to_dict(profile: AlgorithmProfile) -> dict:
    return {
        "algorithm": profile.algorithm,
        "training_item": profile.training_item,
        "threshold": profile.threshold,
        "precision": profile.precision,
        "recall": profile.recall,
        "f_score": profile.f_score,
        "energy_per_frame": profile.energy_per_frame,
        "time_per_frame": profile.time_per_frame,
        "calibrator": {
            "fitted": profile.calibrator.is_fitted,
            "weight": profile.calibrator.weight,
            "bias": profile.calibrator.bias,
        },
    }


def _profile_from_dict(data: dict) -> AlgorithmProfile:
    calibrator = ScoreCalibrator()
    cal = data.get("calibrator", {})
    if cal.get("fitted"):
        try:
            calibrator.restore(cal["weight"], cal["bias"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"malformed calibrator document for algorithm "
                f"{data.get('algorithm')!r}: marked fitted but "
                f"weight/bias are missing or non-numeric: {cal!r}"
            ) from exc
    return AlgorithmProfile(
        algorithm=data["algorithm"],
        training_item=data["training_item"],
        threshold=float(data["threshold"]),
        precision=float(data["precision"]),
        recall=float(data["recall"]),
        f_score=float(data["f_score"]),
        energy_per_frame=float(data["energy_per_frame"]),
        time_per_frame=float(data["time_per_frame"]),
        calibrator=calibrator,
    )


def library_to_dict(library: TrainingLibrary) -> dict:
    """Serialise a training library to plain Python structures."""
    items = {}
    for name in library.names:
        item = library.get(name)
        features = np.asarray(item.features, dtype=float)
        items[name] = {
            "profiles": {
                algorithm: _profile_to_dict(profile)
                for algorithm, profile in item.profiles.items()
            },
            # The nested-list form loses empty dimensions — a (0, D)
            # stack serialises to [] — so the shape is stored
            # explicitly and restored on load.
            "features": features.tolist(),
            "features_shape": list(features.shape),
        }
    return {"version": FORMAT_VERSION, "items": items}


def library_from_dict(data: dict) -> TrainingLibrary:
    """Rebuild a training library from :func:`library_to_dict` output."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported library format version {version!r}; "
            f"expected {FORMAT_VERSION}"
        )
    library = TrainingLibrary()
    for name, item_data in data["items"].items():
        profiles = {
            algorithm: _profile_from_dict(profile_data)
            for algorithm, profile_data in item_data["profiles"].items()
        }
        features = np.asarray(item_data.get("features", []), dtype=float)
        shape = item_data.get("features_shape")
        if shape is not None:
            features = features.reshape(tuple(int(n) for n in shape))
        elif features.size == 0:
            # Legacy documents (no stored shape): the empty stack's
            # second dimension is unrecoverable.
            features = np.zeros((0, 0))
        library.add(
            TrainingItem(name=name, profiles=profiles, features=features)
        )
    return library


def save_library(library: TrainingLibrary, path: str | Path) -> None:
    """Write a training library as JSON (atomically: a crash mid-write
    leaves any previous library file intact)."""
    atomic_write_json(Path(path), library_to_dict(library))


def load_library(path: str | Path) -> TrainingLibrary:
    """Read a training library written by :func:`save_library`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no library file at {path}")
    return library_from_dict(json.loads(path.read_text()))

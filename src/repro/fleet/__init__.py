"""Fleet-scale coordination mechanisms: cells, coordinator, peers.

This package holds everything *below* the engine that fleet-scale
coordination needs — sharded cell layouts, the hierarchical budget
coordinator, the per-run fleet runtime, the decentralised peer
negotiation protocol, and the tiled synthetic fleet worlds.  The
``cell`` and ``peer`` :class:`~repro.engine.policy.CoordinationPolicy`
classes that expose these mechanisms live in :mod:`repro.engine.fleet`
(policies are engine-layer objects); this package never imports the
engine — the layer contract in ``tests/test_layer_contract.py``
enforces the direction.
"""

from repro.fleet.cells import (
    DEFAULT_CELL_SIZE,
    CellLayout,
    normalize_cells,
    partition_cameras,
    validate_cells_value,
)
from repro.fleet.coordinator import (
    BudgetCoordinator,
    CellReading,
)
from repro.fleet.peer import (
    MAX_NEGOTIATION_ROUNDS,
    NegotiationOutcome,
    PeerCameraNode,
    negotiate_activation,
    ring_neighbors,
)
from repro.fleet.runtime import COORDINATOR_NODE_ID, FleetRuntime
from repro.fleet.world import (
    PERSON_ID_STRIDE,
    TILE_PITCH_M,
    TiledFleetDataset,
    make_fleet_dataset,
    tile_training_library,
    tiled_camera_id,
)

__all__ = [
    "BudgetCoordinator",
    "CellLayout",
    "CellReading",
    "COORDINATOR_NODE_ID",
    "DEFAULT_CELL_SIZE",
    "FleetRuntime",
    "MAX_NEGOTIATION_ROUNDS",
    "NegotiationOutcome",
    "PERSON_ID_STRIDE",
    "PeerCameraNode",
    "TILE_PITCH_M",
    "TiledFleetDataset",
    "make_fleet_dataset",
    "negotiate_activation",
    "normalize_cells",
    "partition_cameras",
    "ring_neighbors",
    "tile_training_library",
    "tiled_camera_id",
    "validate_cells_value",
]

"""The hierarchical budget coordinator above the cell controllers.

Each re-calibration interval the coordinator re-allocates the global
per-frame energy envelope across cells: a cell whose last selection
overshot its desired accuracy sheds budget, a cell that missed it
gains budget, and the scales are renormalised so the camera-weighted
mean stays exactly 1.0 — the fleet as a whole never spends more than
the flat deployment would.  With a single cell the allocation is the
identity (scale exactly ``1.0``), which is what makes the ``cell``
policy bit-identical to the flat ``subset`` protocol at one cell.

The coordinator also folds per-cell :class:`SelectionDecision`s into
the one global decision the engine loop records; folding one decision
returns it unchanged (the same exactness guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.accuracy import DesiredAccuracy, GlobalAccuracy
from repro.core.controller import SelectionDecision

#: Clamp on the raw per-cell scale before renormalisation: a cell can
#: gain or shed at most this fraction of its budget per interval, so
#: allocation reacts without oscillating.
MAX_SCALE_STEP = 0.25


@dataclass(frozen=True)
class CellReading:
    """One cell's reported outcome of its last selection round."""

    cell_id: str
    num_cameras: int
    achieved_objects: float
    desired_objects: float

    @property
    def headroom(self) -> float:
        """Achieved over desired object count (>= 1 means met)."""
        if self.desired_objects <= 0:
            return 1.0
        return self.achieved_objects / self.desired_objects


class BudgetCoordinator:
    """Allocates per-cell budget scales and folds cell decisions."""

    def __init__(self) -> None:
        #: cell id -> latest reading; empty before the first round.
        self.readings: dict[str, CellReading] = {}
        #: cell id -> scale applied to the cell's budget this round.
        self.scales: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Budget allocation
    # ------------------------------------------------------------------
    def allocate(
        self, cell_ids: list[str], cameras_per_cell: dict[str, int]
    ) -> dict[str, float]:
        """Per-cell budget scales for the coming interval.

        Without readings (the first round, or a single cell) every
        scale is exactly ``1.0``.  Otherwise raw scales are the
        inverse of each cell's accuracy headroom, clamped to
        ``1 ± MAX_SCALE_STEP``, then renormalised so the
        camera-weighted mean is 1: the global envelope is conserved.
        """
        if len(cell_ids) == 1 or not self.readings:
            self.scales = {cell_id: 1.0 for cell_id in cell_ids}
            return dict(self.scales)
        raw: dict[str, float] = {}
        for cell_id in cell_ids:
            reading = self.readings.get(cell_id)
            if reading is None:
                raw[cell_id] = 1.0
                continue
            scale = 1.0 / reading.headroom if reading.headroom > 0 else 1.0
            raw[cell_id] = min(
                1.0 + MAX_SCALE_STEP, max(1.0 - MAX_SCALE_STEP, scale)
            )
        total_cameras = sum(cameras_per_cell[c] for c in cell_ids)
        weighted = sum(
            raw[c] * cameras_per_cell[c] for c in cell_ids
        )
        mean = weighted / total_cameras if total_cameras else 1.0
        self.scales = {c: raw[c] / mean for c in cell_ids}
        return dict(self.scales)

    def observe(
        self, cell_id: str, num_cameras: int, decision: SelectionDecision
    ) -> None:
        """Record one cell's selection outcome for the next allocation."""
        self.readings[cell_id] = CellReading(
            cell_id=cell_id,
            num_cameras=num_cameras,
            achieved_objects=decision.achieved.num_objects,
            desired_objects=decision.desired.min_objects,
        )

    # ------------------------------------------------------------------
    # Decision folding
    # ------------------------------------------------------------------
    @staticmethod
    def fold(decisions: list[SelectionDecision]) -> SelectionDecision:
        """Merge per-cell decisions into one global decision.

        A single decision is returned unchanged — the one-cell
        hierarchy is exactly the flat protocol.  Multi-cell folds sum
        the object counts and weight the probabilities by them.
        """
        if not decisions:
            raise ValueError("cannot fold zero cell decisions")
        if len(decisions) == 1:
            return decisions[0]

        def fold_accuracy(parts: list[GlobalAccuracy]) -> GlobalAccuracy:
            total = sum(p.num_objects for p in parts)
            if total > 0:
                mean_p = (
                    sum(p.num_objects * p.mean_probability for p in parts)
                    / total
                )
            else:
                mean_p = 0.0
            return GlobalAccuracy(
                num_objects=total, mean_probability=mean_p
            )

        assignment: dict[str, str] = {}
        ranked: list[str] = []
        for decision in decisions:
            assignment.update(decision.assignment)
            ranked.extend(decision.ranked_camera_ids)
        desired_objects = sum(d.desired.min_objects for d in decisions)
        if desired_objects > 0:
            desired_probability = (
                sum(
                    d.desired.min_objects * d.desired.min_probability
                    for d in decisions
                )
                / desired_objects
            )
        else:
            desired_probability = 0.0
        return SelectionDecision(
            assignment=assignment,
            baseline=fold_accuracy([d.baseline for d in decisions]),
            desired=DesiredAccuracy(
                min_objects=desired_objects,
                min_probability=desired_probability,
            ),
            achieved=fold_accuracy([d.achieved for d in decisions]),
            ranked_camera_ids=ranked,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "scales": dict(self.scales),
            "readings": {
                cell_id: {
                    "num_cameras": r.num_cameras,
                    "achieved_objects": r.achieved_objects,
                    "desired_objects": r.desired_objects,
                }
                for cell_id, r in self.readings.items()
            },
        }

    def restore(self, state: dict) -> None:
        self.scales = {
            cell_id: float(scale)
            for cell_id, scale in state["scales"].items()
        }
        self.readings = {
            cell_id: CellReading(
                cell_id=cell_id,
                num_cameras=int(fields["num_cameras"]),
                achieved_objects=float(fields["achieved_objects"]),
                desired_objects=float(fields["desired_objects"]),
            )
            for cell_id, fields in state["readings"].items()
        }

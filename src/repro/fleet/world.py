"""Synthetic fleet worlds: the 4-camera scene tiled to 50/200/1000.

A fleet world replicates a base dataset's scene across a grid of
*tiles*.  Each tile is a physically separate copy of the scene —
its cameras get namespaced ids, its pedestrians get offset person
ids, and its ground plane is translated far beyond the re-id gating
radius, so cross-tile detections can never fuse.  Frame images and
training profiles are shared with the base dataset (a tile's camera
sees exactly what its base counterpart sees), which is what makes a
1000-camera world cost the same offline training as a 4-camera one.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.core.calibration import TrainingItem, TrainingLibrary
from repro.datasets.base import FrameRecord
from repro.datasets.synthetic import DatasetSpec, SyntheticDataset
from repro.geometry.homography import Homography
from repro.world.renderer import FrameObservation

#: Ground-plane spacing between tiles.  The re-id matcher gates at
#: under a metre; 50 m guarantees no cross-tile grouping even for
#: detections at opposite scene edges.
TILE_PITCH_M = 50.0

#: Person-id namespace stride per tile (far above any scene's
#: pedestrian count, so identities never collide across tiles).
PERSON_ID_STRIDE = 10_000


def tile_offsets(num_tiles: int) -> list[tuple[float, float]]:
    """Ground-plane offsets of each tile on a near-square grid."""
    cols = max(1, math.ceil(math.sqrt(num_tiles)))
    return [
        (
            (index % cols) * TILE_PITCH_M,
            (index // cols) * TILE_PITCH_M,
        )
        for index in range(num_tiles)
    ]


def tiled_camera_id(tile: int, base_camera_id: str) -> str:
    return f"t{tile:03d}.{base_camera_id}"


class TiledFleetDataset:
    """A fleet-scale dataset tiled from a base 4-camera dataset.

    Presents the same surface the engine reads from
    :class:`~repro.datasets.synthetic.SyntheticDataset` — ``spec``,
    ``camera_ids``, ``environment``, ``frames()``,
    ``ground_homographies()`` — over ``num_cameras`` cameras drawn
    tile by tile from the base placements.
    """

    def __init__(self, base: SyntheticDataset, num_cameras: int) -> None:
        if num_cameras < 1:
            raise ValueError("need at least one camera")
        self.base = base
        base_ids = base.camera_ids
        per_tile = len(base_ids)
        num_tiles = math.ceil(num_cameras / per_tile)
        self._offsets = tile_offsets(num_tiles)
        #: (tiled id, tile index, base camera id), fleet order.
        self._cameras: list[tuple[str, int, str]] = []
        for tile in range(num_tiles):
            for base_id in base_ids:
                if len(self._cameras) == num_cameras:
                    break
                self._cameras.append(
                    (tiled_camera_id(tile, base_id), tile, base_id)
                )
        self.spec = DatasetSpec(
            name=f"{base.spec.name}-fleet{num_cameras}",
            environment=base.spec.environment,
            num_people=base.spec.num_people,
            num_cameras=num_cameras,
            total_frames=base.spec.total_frames,
            gt_every=base.spec.gt_every,
            train_end=base.spec.train_end,
            bounds=base.spec.bounds,
        )
        self._frame_cache: dict[int, FrameRecord] = {}

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def environment(self):
        return self.spec.environment

    @property
    def camera_ids(self) -> list[str]:
        return [tiled_id for tiled_id, _, _ in self._cameras]

    @property
    def num_tiles(self) -> int:
        return len(self._offsets)

    def base_camera_of(self, camera_id: str) -> str:
        for tiled_id, _, base_id in self._cameras:
            if tiled_id == camera_id:
                return base_id
        raise KeyError(f"unknown fleet camera {camera_id!r}")

    def has_ground_truth(self, frame_index: int) -> bool:
        return self.base.has_ground_truth(frame_index)

    def _tile_observation(
        self, base_obs: FrameObservation, tiled_id: str, tile: int
    ) -> FrameObservation:
        dx, dy = self._offsets[tile]
        person_offset = tile * PERSON_ID_STRIDE
        objects = [
            replace(
                view,
                person_id=view.person_id + person_offset,
                ground_xy=(
                    view.ground_xy[0] + dx,
                    view.ground_xy[1] + dy,
                ),
            )
            for view in base_obs.objects
        ]
        return FrameObservation(
            camera_id=tiled_id,
            frame_index=base_obs.frame_index,
            objects=objects,
            clutter_regions=base_obs.clutter_regions,
            image=base_obs.image,  # shared: the view is identical
            image_scale=base_obs.image_scale,
        )

    def _wrap(self, record: FrameRecord) -> FrameRecord:
        cached = self._frame_cache.get(record.frame_index)
        if cached is not None:
            return cached
        observations = {
            tiled_id: self._tile_observation(
                record.observations[base_id], tiled_id, tile
            )
            for tiled_id, tile, base_id in self._cameras
        }
        wrapped = FrameRecord(
            frame_index=record.frame_index,
            observations=observations,
            has_ground_truth=record.has_ground_truth,
        )
        self._frame_cache[record.frame_index] = wrapped
        return wrapped

    def frames(
        self,
        start: int,
        end: int,
        step: int = 1,
        only_ground_truth: bool = False,
    ) -> list[FrameRecord]:
        return [
            self._wrap(record)
            for record in self.base.frames(
                start, end, step=step, only_ground_truth=only_ground_truth
            )
        ]

    def ground_homographies(self) -> dict[str, Homography]:
        """Per-camera image -> fleet-ground homographies: the base
        mapping composed with the camera's tile translation."""
        base_homographies = self.base.ground_homographies()
        out: dict[str, Homography] = {}
        for tiled_id, tile, base_id in self._cameras:
            dx, dy = self._offsets[tile]
            translation = Homography(
                np.array(
                    [[1.0, 0.0, dx], [0.0, 1.0, dy], [0.0, 0.0, 1.0]]
                )
            )
            out[tiled_id] = translation.compose(base_homographies[base_id])
        return out

    def clear_cache(self) -> None:
        self._frame_cache.clear()
        self.base.clear_cache()


def tile_training_library(
    base_library: TrainingLibrary,
    camera_items: dict[str, str],
) -> TrainingLibrary:
    """A fleet training library aliasing base per-camera profiles.

    ``camera_items`` maps each fleet camera id to the *base* training
    item its tile replicates (``"t007.lab-cam2" -> "T-lab-cam2"``).
    Profiles are shared objects — a tile's camera was trained by its
    base counterpart — so tiling adds no training cost; the calibration
    memo cache is shared with the base library for the same reason.
    """
    library = TrainingLibrary(cache=base_library.cache)
    for fleet_camera_id, base_item_name in camera_items.items():
        base_item = base_library.get(base_item_name)
        library.add(
            TrainingItem(
                name=f"T-{fleet_camera_id}",
                profiles=base_item.profiles,
                features=base_item.features,
            )
        )
    return library


def make_fleet_dataset(
    num_cameras: int, base: SyntheticDataset
) -> TiledFleetDataset:
    """A fleet world of ``num_cameras`` cameras tiled from ``base``."""
    return TiledFleetDataset(base, num_cameras)

"""The fleet runtime: cell controllers under one budget coordinator.

One :class:`FleetRuntime` lives for the duration of a ``cell``-policy
run.  It owns the per-cell :class:`~repro.core.controller.EECSController`
instances (built by an injected factory so this layer never imports
the engine), the per-cell leader bookkeeping, and the
:class:`~repro.fleet.coordinator.BudgetCoordinator` above them.

Each selection round it:

1. re-elects any cell leader that is no longer serviceable (dead or
   quarantined — the resilience ladder's transitions are mirrored in
   via :meth:`set_camera_mode`, so a cell losing its local controller
   re-elects over the survivors with no new machinery);
2. exchanges budget state with the coordinator over the network layer
   (:class:`~repro.network.messages.CellReport` up,
   :class:`~repro.network.messages.BudgetGrant` down, riding a
   :class:`~repro.network.reliability.ReliableTransport` per leader so
   coordination costs Joules — charged to the leaders' radios);
3. runs the existing greedy selection/downgrade once per cell on the
   cell's slice of the assessment, under the granted budget scale;
4. folds the cell decisions into the one global decision the engine
   loop records.

With a single cell, steps 2–4 are exact identities: no messages, a
scale of exactly 1.0, and the lone decision returned unchanged — the
hierarchy collapses to the flat protocol bit for bit.
"""

from __future__ import annotations

from typing import Callable

from repro.checkpoint.codec import (
    controller_state_to_dict,
    restore_controller_state,
)
from repro.core.controller import (
    CAMERA_QUARANTINED,
    EECSController,
    SelectionDecision,
)
from repro.core.selection import AssessmentData
from repro.energy.meter import EnergyMeter
from repro.fleet.cells import CellLayout
from repro.fleet.coordinator import BudgetCoordinator
from repro.network.messages import Ack, BudgetGrant, CellReport, Message
from repro.network.reliability import ReliableTransport
from repro.network.simulator import EventSimulator, Node

#: Node id of the top-level coordinator on the coordination plane.
COORDINATOR_NODE_ID = "fleet-coordinator"


class _LeaderNode(Node):
    """A cell leader's radio on the coordination plane."""

    def __init__(self, node_id: str, cell_id: str) -> None:
        super().__init__(node_id)
        self.cell_id = cell_id
        self.energy_joules = 0.0
        self.granted_scale: float | None = None
        self.transport = ReliableTransport(self)

    def on_transmit(self, num_bytes: int, energy_joules: float) -> None:
        self.energy_joules += energy_joules

    def receive(self, message: Message) -> None:
        if isinstance(message, Ack):
            self.transport.handle_ack(message)
            return
        if not self.transport.accept(message):
            return
        if isinstance(message, BudgetGrant):
            self.granted_scale = message.scale


class _CoordinatorNode(Node):
    """The mains-powered coordinator: answers reports with grants."""

    def __init__(self, scales: dict[str, float]) -> None:
        super().__init__(COORDINATOR_NODE_ID)
        self.scales = scales
        self.reports: dict[str, CellReport] = {}
        self.transport = ReliableTransport(self)

    def receive(self, message: Message) -> None:
        if isinstance(message, Ack):
            self.transport.handle_ack(message)
            return
        if not self.transport.accept(message):
            return
        if isinstance(message, CellReport):
            self.reports[message.cell_id] = message
            self.transport.send(
                BudgetGrant(
                    sender=self.node_id,
                    recipient=message.sender,
                    cell_id=message.cell_id,
                    scale=self.scales.get(message.cell_id, 1.0),
                )
            )


class FleetRuntime:
    """Per-run fleet state: cell controllers, leaders, coordinator."""

    def __init__(
        self,
        layout: CellLayout,
        controller_factory: Callable[[list[str]], EECSController],
        enable_downgrade: bool = False,
        telemetry=None,
        now_fn: Callable[[], float] | None = None,
    ) -> None:
        self.layout = layout
        self.enable_downgrade = enable_downgrade
        self.telemetry = telemetry
        self.now_fn = now_fn or (lambda: 0.0)
        self.coordinator = BudgetCoordinator()
        self.controllers: dict[str, EECSController] = {
            cell_id: controller_factory(list(members))
            for cell_id, members in zip(layout.cell_ids, layout.cells)
        }
        #: cell id -> camera currently hosting the cell controller.
        self.leaders: dict[str, str] = {
            cell_id: members[0]
            for cell_id, members in zip(layout.cell_ids, layout.cells)
        }
        self.coordination_joules = 0.0
        self.coordination_messages = 0

    # ------------------------------------------------------------------
    # Camera-state mirroring (resilience ladder, liveness)
    # ------------------------------------------------------------------
    def set_camera_mode(self, camera_id: str, mode: str) -> None:
        """Mirror an engine-side ladder transition into the owning
        cell's controller (so degraded/quarantined semantics apply to
        the local selection too)."""
        cell_id = self.layout.cell_of(camera_id)
        self.controllers[cell_id].set_camera_mode(camera_id, mode)

    def _serviceable(self, cell_id: str, camera_id: str) -> bool:
        state = self.controllers[cell_id].camera(camera_id)
        return state.alive and state.mode != CAMERA_QUARANTINED

    def ensure_leaders(self) -> list[tuple[str, str, str]]:
        """Re-elect leaders for cells whose leader is unserviceable.

        Election is deterministic — the first serviceable camera in
        cell order wins — and returns the ``(cell, old, new)``
        transitions (also emitted as ``cell_leader_elected`` events).
        """
        transitions: list[tuple[str, str, str]] = []
        for cell_id, members in zip(
            self.layout.cell_ids, self.layout.cells
        ):
            current = self.leaders[cell_id]
            if self._serviceable(cell_id, current):
                continue
            survivors = [
                camera_id
                for camera_id in members
                if self._serviceable(cell_id, camera_id)
            ]
            if not survivors:
                # A fully lost cell keeps its leader on record; the
                # cell controller will raise if asked to select with
                # every camera quarantined, which is the right failure.
                continue
            new_leader = survivors[0]
            self.leaders[cell_id] = new_leader
            transitions.append((cell_id, current, new_leader))
            if self.telemetry is not None:
                self.telemetry.event(
                    "cell_leader_elected",
                    time_s=self.now_fn(),
                    node_id=new_leader,
                    cell=cell_id,
                    previous_leader=current,
                )
        return transitions

    # ------------------------------------------------------------------
    # Coordinator <-> cell-controller messaging
    # ------------------------------------------------------------------
    def _exchange_budgets(
        self, scales: dict[str, float], meter: EnergyMeter
    ) -> None:
        """One report/grant round trip per cell over the network.

        Leaders upload their cell's last reading as a
        :class:`CellReport`; the coordinator answers each with a
        :class:`BudgetGrant`.  Every byte rides a reliable transport
        over simulated links, and the leaders' radio energy lands in
        the run's meter as communication Joules.
        """
        simulator = EventSimulator(telemetry=self.telemetry)
        coordinator_node = _CoordinatorNode(scales)
        simulator.register_node(coordinator_node)
        leader_nodes: dict[str, _LeaderNode] = {}
        for cell_id in self.layout.cell_ids:
            leader = self.leaders[cell_id]
            node = _LeaderNode(leader, cell_id)
            leader_nodes[cell_id] = node
            simulator.register_node(node)
            simulator.connect(leader, COORDINATOR_NODE_ID)
        for cell_id, members in zip(
            self.layout.cell_ids, self.layout.cells
        ):
            node = leader_nodes[cell_id]
            reading = self.coordinator.readings.get(cell_id)
            node.transport.send(
                CellReport(
                    sender=node.node_id,
                    recipient=COORDINATOR_NODE_ID,
                    cell_id=cell_id,
                    num_cameras=len(members),
                    achieved_objects=(
                        reading.achieved_objects if reading else 0.0
                    ),
                    desired_objects=(
                        reading.desired_objects if reading else 0.0
                    ),
                )
            )
        simulator.run()
        messages = simulator.delivered_messages
        self.coordination_messages += messages
        for cell_id, node in leader_nodes.items():
            meter.record_communication(node.node_id, node.energy_joules)
            self.coordination_joules += node.energy_joules
        if self.telemetry is not None:
            registry = self.telemetry.registry
            registry.counter(
                "fleet_coordination_messages_total",
                "Coordinator/cell-leader messages delivered.",
            ).inc(messages)
            registry.counter(
                "fleet_coordination_joules_total",
                "Radio Joules spent on coordinator/cell messaging.",
            ).inc(sum(n.energy_joules for n in leader_nodes.values()))

    # ------------------------------------------------------------------
    # The hierarchical selection round
    # ------------------------------------------------------------------
    @staticmethod
    def _cell_assessment(
        assessment: AssessmentData, members: tuple[str, ...]
    ) -> AssessmentData:
        member_set = set(members)
        return AssessmentData(
            frames=[
                {
                    camera_id: algorithms
                    for camera_id, algorithms in frame.items()
                    if camera_id in member_set
                }
                for frame in assessment.frames
            ]
        )

    def select_round(
        self,
        assessment: AssessmentData,
        budget_overrides: dict[str, float] | None,
        meter: EnergyMeter,
    ) -> SelectionDecision:
        """Allocate budgets, select per cell, fold to one decision."""
        cell_ids = self.layout.cell_ids
        self.ensure_leaders()
        scales = self.coordinator.allocate(
            cell_ids,
            {
                cell_id: len(members)
                for cell_id, members in zip(cell_ids, self.layout.cells)
            },
        )
        single_cell = len(cell_ids) == 1
        if not single_cell:
            self._exchange_budgets(scales, meter)

        decisions: list[SelectionDecision] = []
        for cell_id, members in zip(cell_ids, self.layout.cells):
            sub_assessment = (
                assessment
                if single_cell
                else self._cell_assessment(assessment, members)
            )
            overrides = None
            if budget_overrides is not None:
                scale = scales[cell_id]
                overrides = {
                    camera_id: budget_overrides[camera_id] * scale
                    for camera_id in members
                    if camera_id in budget_overrides
                }
            span = None
            if self.telemetry is not None:
                span = self.telemetry.tracer.begin(
                    "cell_select", cell=cell_id, scale=scales[cell_id]
                )
            try:
                decision = self.controllers[cell_id].select(
                    sub_assessment,
                    enable_subset=True,
                    enable_downgrade=self.enable_downgrade,
                    budget_overrides=overrides,
                )
            finally:
                if span is not None:
                    self.telemetry.tracer.end(span)
            self.coordinator.observe(cell_id, len(members), decision)
            decisions.append(decision)
            if self.telemetry is not None:
                registry = self.telemetry.registry
                registry.counter(
                    "fleet_cell_selections_total",
                    "Selection rounds run by cell controllers.",
                    labels=("cell",),
                ).inc(cell=cell_id)
                registry.gauge(
                    "fleet_cell_cameras_selected",
                    "Cameras activated by each cell's latest selection.",
                    labels=("cell",),
                ).set(decision.num_active, cell=cell_id)
                registry.gauge(
                    "fleet_cell_budget_scale",
                    "Budget scale granted to each cell this interval.",
                    labels=("cell",),
                ).set(scales[cell_id], cell=cell_id)
        return self.coordinator.fold(decisions)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Per-cell controller state plus coordinator state, as exact
        JSON values (folded into the engine's run checkpoint)."""
        return {
            "layout": self.layout.to_dict(),
            "coordinator": self.coordinator.snapshot(),
            "leaders": dict(self.leaders),
            "coordination_joules": self.coordination_joules,
            "coordination_messages": self.coordination_messages,
            "cells": {
                cell_id: controller_state_to_dict(controller)
                for cell_id, controller in self.controllers.items()
            },
        }

    def restore(self, state: dict) -> None:
        self.coordinator.restore(state["coordinator"])
        self.leaders = dict(state["leaders"])
        self.coordination_joules = float(state["coordination_joules"])
        self.coordination_messages = int(state["coordination_messages"])
        for cell_id, controller_state in state["cells"].items():
            restore_controller_state(
                self.controllers[cell_id], controller_state
            )

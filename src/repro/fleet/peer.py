"""Decentralised peer negotiation: activation without a controller.

The ``peer`` policy's mechanism, after the N-queens distributed-WSN
formulation: each camera knows only its own assessed utility and what
its ring neighbours claim, and the fleet settles activation by local
conflict resolution — a camera backs off when an active neighbour
advertises a strictly better claim, and re-activates when every
neighbour has backed off.  The fixed point is a maximal independent
set by decreasing utility: every standby camera has an active
neighbour covering its area, and the globally best camera is always
active.

Negotiation runs over the real network layer —
:class:`~repro.network.simulator.EventSimulator` links and a
:class:`~repro.network.reliability.ReliableTransport` per camera — so
every claim and ack costs radio Joules, which the caller charges to
the run's energy meter.  The exchange is lossless here (no fault
injector), so the transports never draw their backoff rng and the
outcome is a pure function of the utilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.messages import Ack, Message, PeerClaim
from repro.network.reliability import ReliableTransport
from repro.network.simulator import EventSimulator, Node

#: Negotiation rounds before the protocol takes its state as final.
#: A ring converges in a handful of rounds; the cap bounds the radio
#: spend on adversarial utility orderings.
MAX_NEGOTIATION_ROUNDS = 6


@dataclass
class NegotiationOutcome:
    """Result of one fleet-wide activation negotiation."""

    active: dict[str, bool]
    energy_by_camera: dict[str, float]
    claims_sent: int
    rounds: int
    utilities: dict[str, float] = field(default_factory=dict)


class PeerCameraNode(Node):
    """One camera in the negotiation: a claim state machine."""

    def __init__(
        self, node_id: str, utility: float, neighbors: list[str]
    ) -> None:
        super().__init__(node_id)
        self.utility = utility
        self.neighbors = list(neighbors)
        self.active = True
        #: neighbour id -> (utility, active) from its latest claim.
        self.claims: dict[str, tuple[float, bool]] = {}
        self.energy_joules = 0.0
        self.claims_sent = 0
        self.transport = ReliableTransport(self)

    def on_transmit(self, num_bytes: int, energy_joules: float) -> None:
        self.energy_joules += energy_joules

    def receive(self, message: Message) -> None:
        if isinstance(message, Ack):
            self.transport.handle_ack(message)
            return
        if not self.transport.accept(message):
            return
        if isinstance(message, PeerClaim):
            self.claims[message.sender] = (message.utility, message.active)

    def broadcast(self, negotiation_round: int) -> None:
        for neighbor in self.neighbors:
            self.transport.send(
                PeerClaim(
                    sender=self.node_id,
                    recipient=neighbor,
                    negotiation_round=negotiation_round,
                    utility=self.utility,
                    active=self.active,
                )
            )
            self.claims_sent += 1

    def _key(self) -> tuple[float, str]:
        # Total order over claims: utility first, camera id breaking
        # ties, so negotiation is deterministic for equal utilities.
        return (self.utility, self.node_id)

    def resolve(self) -> bool:
        """One local conflict-resolution step; True when state flips."""
        dominated = any(
            active and (utility, neighbor) > self._key()
            for neighbor, (utility, active) in self.claims.items()
        )
        new_active = not dominated
        changed = new_active != self.active
        self.active = new_active
        return changed


def ring_neighbors(camera_ids: list[str]) -> dict[str, list[str]]:
    """Each camera's ring adjacency (its physical neighbours in the
    fleet ordering); degenerate fleets get fewer neighbours."""
    n = len(camera_ids)
    if n <= 1:
        return {camera_id: [] for camera_id in camera_ids}
    if n == 2:
        return {
            camera_ids[0]: [camera_ids[1]],
            camera_ids[1]: [camera_ids[0]],
        }
    neighbors: dict[str, list[str]] = {}
    for index, camera_id in enumerate(camera_ids):
        neighbors[camera_id] = [
            camera_ids[(index - 1) % n],
            camera_ids[(index + 1) % n],
        ]
    return neighbors


def negotiate_activation(
    camera_ids: list[str],
    utilities: dict[str, float],
    max_rounds: int = MAX_NEGOTIATION_ROUNDS,
    telemetry=None,
) -> NegotiationOutcome:
    """Run the decentralised activation protocol to (near) fixed point.

    Returns which cameras stay active, plus the radio energy each
    camera spent negotiating (claims, retransmissions and acks alike —
    whatever its transport put on the air).
    """
    if not camera_ids:
        raise ValueError("cannot negotiate over an empty fleet")
    if len(camera_ids) == 1:
        only = camera_ids[0]
        return NegotiationOutcome(
            active={only: True},
            energy_by_camera={only: 0.0},
            claims_sent=0,
            rounds=0,
            utilities=dict(utilities),
        )
    simulator = EventSimulator(telemetry=telemetry)
    neighbors = ring_neighbors(camera_ids)
    nodes = {
        camera_id: PeerCameraNode(
            camera_id, utilities[camera_id], neighbors[camera_id]
        )
        for camera_id in camera_ids
    }
    for node in nodes.values():
        simulator.register_node(node)
    linked: set[frozenset[str]] = set()
    for camera_id in camera_ids:
        for neighbor in neighbors[camera_id]:
            pair = frozenset((camera_id, neighbor))
            if pair not in linked:
                simulator.connect(camera_id, neighbor)
                linked.add(pair)

    rounds_run = 0
    for negotiation_round in range(max_rounds):
        for camera_id in camera_ids:
            nodes[camera_id].broadcast(negotiation_round)
        simulator.run()
        rounds_run += 1
        changed = [nodes[c].resolve() for c in camera_ids]
        if negotiation_round > 0 and not any(changed):
            break

    return NegotiationOutcome(
        active={c: nodes[c].active for c in camera_ids},
        energy_by_camera={c: nodes[c].energy_joules for c in camera_ids},
        claims_sent=sum(nodes[c].claims_sent for c in camera_ids),
        rounds=rounds_run,
        utilities=dict(utilities),
    )

"""Cell partitioning: sharding a camera fleet for local control.

A *cell* is a group of cameras run by one local controller; the
hierarchical ``cell`` policy gives every cell its own
:class:`~repro.core.controller.EECSController` beneath a top-level
budget coordinator.  This module owns the layout description and its
validation — every error names the offending field so a bad spec
fails at construction, not minutes into a fleet run.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Camera ids per cell when a layout is derived from a bare count.
DEFAULT_CELL_SIZE = 4


def validate_cells_value(
    cells: "int | tuple[tuple[str, ...], ...]",
    field: str = "cells",
    num_cameras: int | None = None,
) -> None:
    """Structural validation of a cells request.

    Accepts either a cell count or explicit camera-id groups, and
    raises ``ValueError`` naming ``field`` for: a non-positive count,
    a count exceeding the fleet size, an empty cell, or a camera id
    appearing in more than one cell.  Coverage against the actual
    fleet membership needs the dataset and happens in
    :func:`normalize_cells`.
    """
    if isinstance(cells, bool) or not isinstance(cells, (int, tuple, list)):
        raise ValueError(
            f"{field} must be a cell count or groups of camera ids, "
            f"got {type(cells).__name__}"
        )
    if isinstance(cells, int):
        if cells < 1:
            raise ValueError(f"{field} must be >= 1, got {cells}")
        if num_cameras is not None and cells > num_cameras:
            raise ValueError(
                f"{field}: cell count {cells} exceeds the fleet's "
                f"{num_cameras} cameras"
            )
        return
    if not cells:
        raise ValueError(f"{field} must contain at least one cell")
    if num_cameras is not None and len(cells) > num_cameras:
        raise ValueError(
            f"{field}: cell count {len(cells)} exceeds the fleet's "
            f"{num_cameras} cameras"
        )
    seen: set[str] = set()
    for index, cell in enumerate(cells):
        if not isinstance(cell, (tuple, list)):
            raise ValueError(
                f"{field}[{index}] must be a group of camera ids, "
                f"got {type(cell).__name__}"
            )
        if not cell:
            raise ValueError(f"{field}[{index}] is empty")
        for camera_id in cell:
            if not isinstance(camera_id, str):
                raise ValueError(
                    f"{field}[{index}] holds a non-string camera id: "
                    f"{camera_id!r}"
                )
            if camera_id in seen:
                raise ValueError(
                    f"{field}: camera {camera_id!r} appears in more "
                    "than one cell"
                )
            seen.add(camera_id)


def partition_cameras(
    camera_ids: list[str], num_cells: int
) -> tuple[tuple[str, ...], ...]:
    """Split a fleet into ``num_cells`` contiguous, near-even cells.

    Contiguity matters: the tiled fleet worlds emit cameras tile by
    tile, so contiguous cells align with physical neighbourhoods.
    """
    validate_cells_value(num_cells, num_cameras=len(camera_ids))
    base, extra = divmod(len(camera_ids), num_cells)
    cells: list[tuple[str, ...]] = []
    cursor = 0
    for index in range(num_cells):
        size = base + (1 if index < extra else 0)
        cells.append(tuple(camera_ids[cursor : cursor + size]))
        cursor += size
    return tuple(cells)


@dataclass(frozen=True)
class CellLayout:
    """An immutable fleet partition: every camera in exactly one cell."""

    cells: tuple[tuple[str, ...], ...]

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def cell_ids(self) -> list[str]:
        """Stable cell identifiers, used as telemetry labels."""
        return [f"cell{index:03d}" for index in range(len(self.cells))]

    @property
    def camera_ids(self) -> list[str]:
        return [camera_id for cell in self.cells for camera_id in cell]

    def cell_of(self, camera_id: str) -> str:
        for index, cell in enumerate(self.cells):
            if camera_id in cell:
                return f"cell{index:03d}"
        raise KeyError(f"camera {camera_id!r} is in no cell")

    def members(self, cell_id: str) -> tuple[str, ...]:
        try:
            index = self.cell_ids.index(cell_id)
        except ValueError:
            raise KeyError(
                f"unknown cell {cell_id!r}; known: {self.cell_ids}"
            ) from None
        return self.cells[index]

    def to_dict(self) -> dict:
        return {"cells": [list(cell) for cell in self.cells]}

    @classmethod
    def from_dict(cls, data: dict) -> "CellLayout":
        return cls(
            cells=tuple(tuple(cell) for cell in data["cells"])
        )


def normalize_cells(
    cells: "int | tuple[tuple[str, ...], ...] | CellLayout | None",
    camera_ids: list[str],
    field: str = "cells",
) -> CellLayout:
    """A validated :class:`CellLayout` over exactly ``camera_ids``.

    ``None`` means the degenerate hierarchy: one cell holding the
    whole fleet (a single local controller under a coordinator with
    nothing to arbitrate — bit-identical to the flat protocol).  An
    int partitions the fleet contiguously; explicit groups must cover
    every fleet camera exactly once.
    """
    if cells is None:
        return CellLayout(cells=(tuple(camera_ids),))
    if isinstance(cells, CellLayout):
        cells = cells.cells
    validate_cells_value(cells, field=field, num_cameras=len(camera_ids))
    if isinstance(cells, int):
        return CellLayout(cells=partition_cameras(camera_ids, cells))
    known = set(camera_ids)
    assigned: set[str] = set()
    for index, cell in enumerate(cells):
        for camera_id in cell:
            if camera_id not in known:
                raise ValueError(
                    f"{field}[{index}] names unknown camera "
                    f"{camera_id!r}"
                )
            assigned.add(camera_id)
    missing = [c for c in camera_ids if c not in assigned]
    if missing:
        raise ValueError(
            f"{field} leaves cameras unassigned: {missing[:8]}"
            + ("..." if len(missing) > 8 else "")
        )
    return CellLayout(cells=tuple(tuple(cell) for cell in cells))

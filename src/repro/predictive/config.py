"""Configuration for the predictive wake-up policy."""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class PredictiveConfig:
    """Tunables of the ``predictive`` coordination policy.

    Attributes:
        wake_threshold: Predicted activity (expected detections per
            assessment frame) below which a ready camera's assessment
            is skipped for the round.
        predictor_warmup: Assessed rounds a camera must be observed
            before the policy may skip it.  A warmup larger than the
            run's round count never skips, which is the configuration
            that reproduces ``subset`` bit for bit.
        probe_every: A sleeping camera is woken for a probe assessment
            at least every this many rounds, bounding how stale its
            regressor can get (and hence the detection-rate loss a
            wrong prediction can cost).
        max_sleepers: Sleep rationing: at most this many cameras may
            sleep in any one round (the lowest-predicted ones win the
            slots; the rest are woken with reason ``rationed``).
            Dense scenes lose detections roughly linearly in the
            number of simultaneously dark views, so capping
            concurrent sleepers — and letting the probe cycle rotate
            who sleeps — converts the same energy saving into far
            less detection loss than an uncapped threshold.  ``None``
            disables rationing (pure threshold semantics).
        low_energy_below: Predicted activity below which a *woken*
            selected camera is downgraded to its cheapest affordable
            detector profile (the PCA-RECT-style low-energy
            companion); ``None`` disables the downgrade.
        forgetting: RLS forgetting factor in (0, 1]; smaller tracks
            non-stationary scenes faster.
        seed: Seeds the per-camera regressors' symmetry-breaking
            priors (the CLI ties it to the run seed).
    """

    wake_threshold: float = 0.45
    predictor_warmup: int = 2
    probe_every: int = 4
    max_sleepers: int | None = 1
    low_energy_below: float | None = None
    forgetting: float = 0.9
    seed: int = 2017

    def __post_init__(self) -> None:
        if self.wake_threshold < 0.0:
            raise ValueError(
                f"wake_threshold must be >= 0, got {self.wake_threshold}"
            )
        if self.predictor_warmup < 1:
            raise ValueError(
                f"predictor_warmup must be >= 1, got "
                f"{self.predictor_warmup}"
            )
        if self.probe_every < 1:
            raise ValueError(
                f"probe_every must be >= 1, got {self.probe_every}"
            )
        if self.max_sleepers is not None and self.max_sleepers < 1:
            raise ValueError(
                f"max_sleepers must be >= 1 (or None for uncapped), "
                f"got {self.max_sleepers}"
            )
        if self.low_energy_below is not None and self.low_energy_below <= 0:
            raise ValueError(
                f"low_energy_below must be > 0, got "
                f"{self.low_energy_below}"
            )
        if not 0.0 < self.forgetting <= 1.0:
            raise ValueError(
                f"forgetting must be in (0, 1], got {self.forgetting}"
            )

    @classmethod
    def from_overrides(
        cls,
        wake_threshold: float | None = None,
        predictor_warmup: int | None = None,
        probe_every: int | None = None,
        max_sleepers: int | None = None,
        low_energy_below: float | None = None,
        forgetting: float | None = None,
        seed: int | None = None,
    ) -> "PredictiveConfig":
        """Defaults with any subset overridden (``None`` = keep the
        default) — the CLI/spec construction path.  ``max_sleepers=0``
        means uncapped (the CLI's spelling of ``None``, which here
        already means "keep the default")."""
        base = cls()
        return cls(
            wake_threshold=(
                base.wake_threshold
                if wake_threshold is None
                else wake_threshold
            ),
            predictor_warmup=(
                base.predictor_warmup
                if predictor_warmup is None
                else predictor_warmup
            ),
            probe_every=(
                base.probe_every if probe_every is None else probe_every
            ),
            max_sleepers=(
                base.max_sleepers
                if max_sleepers is None
                else (None if max_sleepers == 0 else max_sleepers)
            ),
            low_energy_below=low_energy_below,
            forgetting=(
                base.forgetting if forgetting is None else forgetting
            ),
            seed=base.seed if seed is None else seed,
        )

    def to_dict(self) -> dict:
        """Plain JSON values — the checkpoint fingerprint payload, so
        a resume under a different wake configuration is refused."""
        return asdict(self)

"""Activity observations from assessment metadata.

The predictors learn from telemetry the EECS protocol already
collects: during an assessment period every woken camera runs all
affordable algorithms and uploads detection metadata.  This module
reduces one camera's slice of that metadata to the two scalars the
regressor consumes — measured activity (detections per assessment
frame) and the mean calibrated detection score.

The functions are duck-typed against
:class:`~repro.core.selection.AssessmentData`'s read API (``frames``,
``algorithms_for``, ``detections``) so this layer depends only on
:mod:`repro.core`'s value shapes, not the selection machinery.
"""

from __future__ import annotations

import math


def clip01(value: float) -> float:
    return 0.0 if value < 0.0 else (1.0 if value > 1.0 else value)


def camera_activity(
    assessment, camera_id: str
) -> tuple[float, float] | None:
    """One camera's ``(activity, mean_score)`` over an assessment.

    Activity is the per-frame detection count under the camera's most
    sensitive assessed algorithm (max across algorithms, so a cheap
    detector's misses don't mask a scene the good detector sees),
    averaged over the assessment frames.  The score is the mean
    calibrated probability across every assessed detection, with the
    same NaN fallback the ranking step uses.

    Returns ``None`` when the camera was not assessed this round
    (skipped, quarantined or out of budget) — a sleeping camera
    produces no observation, only probes refresh its regressor.
    """
    algorithms = assessment.algorithms_for(camera_id)
    if not algorithms or assessment.num_frames == 0:
        return None
    activity = 0.0
    score_sum = 0.0
    score_n = 0
    for frame_idx in range(assessment.num_frames):
        per_frame = 0
        for algorithm in algorithms:
            detections = assessment.detections(
                frame_idx, camera_id, algorithm
            )
            per_frame = max(per_frame, len(detections))
            for det in detections:
                p = det.probability
                if math.isnan(p):
                    p = clip01(det.score)
                score_sum += p
                score_n += 1
        activity += per_frame
    activity /= assessment.num_frames
    mean_score = score_sum / score_n if score_n else 0.0
    return activity, mean_score

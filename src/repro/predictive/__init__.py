"""Predictive camera wake-up: online regressors over free telemetry.

The layer between :mod:`repro.resilience` and :mod:`repro.engine` in
the layer contract: it owns the per-camera activity regressors
(:mod:`repro.predictive.regressor`), their observation pipeline
(:mod:`repro.predictive.observations`), the low-energy companion
profile rule (:mod:`repro.predictive.profile`) and the policy
configuration (:mod:`repro.predictive.config`).  The engine's
``predictive`` :class:`~repro.engine.policy.CoordinationPolicy`
imports this package — never the reverse (enforced by
``tests/test_layer_contract.py``).
"""

from repro.predictive.config import PredictiveConfig
from repro.predictive.observations import camera_activity
from repro.predictive.profile import low_energy_algorithm
from repro.predictive.regressor import (
    ActivityPredictor,
    PredictorBank,
    RecursiveLeastSquares,
)

__all__ = [
    "ActivityPredictor",
    "PredictiveConfig",
    "PredictorBank",
    "RecursiveLeastSquares",
    "camera_activity",
    "low_energy_algorithm",
]

"""The PCA-RECT-style low-energy detector profile.

PCA-RECT (PAPERS.md, arXiv:1904.12665) pairs an event-style,
sparse-feature detector with a conventional pipeline: most frames run
the cheap path, the expensive detector only fires when the scene
warrants it.  The reproduction's detector suite already spans that
energy range (ACF's fitted power-law costs roughly a fifteenth of
HOG's per frame at the synthetic resolutions), so the low-energy
profile is a *selection* rule rather than a new detector: a woken
camera whose predicted activity sits in the marginal band is pinned to
its cheapest affordable algorithm — it keeps contributing coverage,
but stops paying flagship-detector energy for frames the regressor
says are probably empty.

Mirrors the resilience ladder's ``CAMERA_DEGRADED`` pinning rule
(cheapest affordable profile, algorithm name as tie-break) so the two
degradation paths pick identically.
"""

from __future__ import annotations


def low_energy_algorithm(
    item,
    budget: float,
    communication_cost: float,
    available: set[str],
) -> str | None:
    """The cheapest affordable assessed algorithm, or ``None``.

    Args:
        item: The camera's matched
            :class:`~repro.core.calibration.TrainingItem` (profiles
            with fitted per-frame energy).
        budget: The camera's per-frame energy budget.
        communication_cost: Per-frame metadata upload cost.
        available: Algorithms with assessment metadata this round —
            only those can be evaluated and deployed.
    """
    candidates = [
        profile
        for profile in item.profiles.values()
        if profile.algorithm in available
        and profile.energy_per_frame + communication_cost <= budget
    ]
    if not candidates:
        return None
    cheapest = min(
        candidates, key=lambda p: (p.energy_per_frame, p.algorithm)
    )
    return cheapest.algorithm

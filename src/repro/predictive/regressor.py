"""Per-camera online activity regression (recursive least squares).

The RF-assisted wake-up paper (PAPERS.md, arXiv:2102.03350) replaces
always-on assessment with a self-supervised model that predicts when a
camera is worth waking.  This module is that model's lightweight
stand-in: one :class:`ActivityPredictor` per camera fits a recursive
least squares (RLS) regressor over the telemetry the protocol already
collects for free — per-assessment detection counts and calibrated
scores — and extrapolates the camera's next-round activity.  The
``predictive`` coordination policy skips assessment for cameras whose
predicted activity falls below its wake threshold.

Design constraints, in order:

* **Exactly serialisable.**  Every coefficient is a Python float
  (an IEEE double), and JSON round-trips doubles losslessly, so
  :meth:`snapshot`/:meth:`restore` reproduce the regressor bit for
  bit — the property the kill-and-resume checkpoint tests pin.
* **Seeded.**  The initial coefficient vector is drawn (at ~1e-9
  scale) from a generator seeded by the run configuration: it breaks
  ties deterministically without influencing converged predictions,
  and two runs with the same seed share byte-identical trajectories.
* **Cheap.**  The feature vector is three-dimensional, so one update
  is a handful of multiply-adds — negligible next to a single frame
  of detection.
"""

from __future__ import annotations

import numpy as np

#: Feature layout: bias, previous activity, previous mean score.
FEATURE_DIM = 3


class RecursiveLeastSquares:
    """Exponentially-forgetting RLS over a fixed feature vector.

    Attributes:
        dim: Feature dimension.
        forgetting: Forgetting factor ``lambda`` in (0, 1]; smaller
            values track non-stationary activity faster.
        theta: Coefficient vector (plain floats).
        updates: Observations folded in so far.
    """

    def __init__(
        self,
        dim: int = FEATURE_DIM,
        forgetting: float = 0.9,
        delta: float = 10.0,
        seed: int | None = None,
    ) -> None:
        if not 0.0 < forgetting <= 1.0:
            raise ValueError(
                f"forgetting must be in (0, 1], got {forgetting}"
            )
        if delta <= 0.0:
            raise ValueError(f"delta must be > 0, got {delta}")
        self.dim = dim
        self.forgetting = float(forgetting)
        if seed is None:
            theta = [0.0] * dim
        else:
            # Deterministic symmetry-breaking prior: small enough to be
            # forgotten after one real observation, large enough that
            # two identically-observed cameras never tie exactly.
            rng = np.random.default_rng(seed)
            theta = [float(v) for v in rng.standard_normal(dim) * 1e-9]
        self.theta: list[float] = theta
        # Inverse covariance, initialised to delta * I (weak prior).
        self.p: list[list[float]] = [
            [float(delta) if i == j else 0.0 for j in range(dim)]
            for i in range(dim)
        ]
        self.updates = 0

    def predict(self, features: list[float]) -> float:
        return sum(t * x for t, x in zip(self.theta, features))

    def update(self, features: list[float], target: float) -> None:
        """Fold one (features, target) observation into the fit."""
        lam = self.forgetting
        # k = P x / (lam + x' P x)
        px = [
            sum(self.p[i][j] * features[j] for j in range(self.dim))
            for i in range(self.dim)
        ]
        denom = lam + sum(features[i] * px[i] for i in range(self.dim))
        gain = [v / denom for v in px]
        error = target - self.predict(features)
        self.theta = [
            t + g * error for t, g in zip(self.theta, gain)
        ]
        # P = (P - k x' P) / lam
        xp = [
            sum(features[i] * self.p[i][j] for i in range(self.dim))
            for j in range(self.dim)
        ]
        self.p = [
            [
                (self.p[i][j] - gain[i] * xp[j]) / lam
                for j in range(self.dim)
            ]
            for i in range(self.dim)
        ]
        self.updates += 1

    def snapshot(self) -> dict:
        """Exact JSON state (floats survive the round-trip bit for
        bit)."""
        return {
            "dim": self.dim,
            "forgetting": self.forgetting,
            "theta": list(self.theta),
            "p": [list(row) for row in self.p],
            "updates": self.updates,
        }

    def restore(self, state: dict) -> None:
        self.dim = int(state["dim"])
        self.forgetting = float(state["forgetting"])
        self.theta = [float(v) for v in state["theta"]]
        self.p = [[float(v) for v in row] for row in state["p"]]
        self.updates = int(state["updates"])


class ActivityPredictor:
    """One camera's wake-up model: observe assessments, predict next.

    ``observe`` is called once per assessed round with the camera's
    measured activity (mean detections per assessment frame) and mean
    calibrated score; each call past the first also updates the RLS
    fit (features are the *previous* observation, the target is the
    current one — one-step-ahead self-supervision, no labels needed).
    """

    def __init__(self, forgetting: float = 0.9, seed: int | None = None):
        self.rls = RecursiveLeastSquares(
            FEATURE_DIM, forgetting=forgetting, seed=seed
        )
        self.observations = 0
        self._last: tuple[float, float] | None = None

    def observe(self, activity: float, mean_score: float) -> None:
        if self._last is not None:
            features = [1.0, self._last[0], self._last[1]]
            self.rls.update(features, float(activity))
        self._last = (float(activity), float(mean_score))
        self.observations += 1

    def predict_next(self) -> float | None:
        """Predicted next-round activity, or ``None`` before any
        observation."""
        if self._last is None:
            return None
        raw = self.rls.predict([1.0, self._last[0], self._last[1]])
        return max(0.0, raw)

    def ready(self, warmup: int) -> bool:
        """Whether the policy may act on this predictor's output."""
        return self.observations >= warmup and self.rls.updates >= 1

    def snapshot(self) -> dict:
        return {
            "rls": self.rls.snapshot(),
            "observations": self.observations,
            "last": list(self._last) if self._last is not None else None,
        }

    def restore(self, state: dict) -> None:
        self.rls.restore(state["rls"])
        self.observations = int(state["observations"])
        last = state.get("last")
        self._last = (
            (float(last[0]), float(last[1])) if last is not None else None
        )


class PredictorBank:
    """The fleet's predictors, one per camera, under one seed."""

    def __init__(
        self,
        camera_ids: list[str],
        forgetting: float = 0.9,
        seed: int = 2017,
    ) -> None:
        self.seed = seed
        self._predictors = {
            camera_id: ActivityPredictor(
                forgetting=forgetting, seed=(seed, index)
            )
            for index, camera_id in enumerate(camera_ids)
        }

    def predictor(self, camera_id: str) -> ActivityPredictor:
        return self._predictors[camera_id]

    @property
    def camera_ids(self) -> list[str]:
        return list(self._predictors)

    def snapshot(self) -> dict:
        """Exact JSON state of every predictor (regressor
        coefficients included), keyed by camera id."""
        return {
            camera_id: predictor.snapshot()
            for camera_id, predictor in self._predictors.items()
        }

    def restore(self, state: dict) -> None:
        for camera_id, predictor_state in state.items():
            self._predictors[camera_id].restore(predictor_state)

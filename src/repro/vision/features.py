"""Combined frame features for video comparison.

Section V-A: each frame is represented by its 3780-dim HOG descriptor
concatenated with its 400-bin bag-of-words histogram — a fixed
4180-dimensional vector (~16 KB) regardless of image size.  These per-
frame vectors are what the camera sensors upload to the controller
for the domain-adaptation similarity computation.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.vision.bow import BagOfWords
from repro.vision.hog import HOG_DIM, hog_descriptor
from repro.vision.keypoints import extract_descriptors

FRAME_FEATURE_DIM = HOG_DIM + 400

logger = logging.getLogger(__name__)


class FrameFeatureExtractor:
    """HOG ++ BoW frame features, sharing one visual vocabulary."""

    def __init__(self, bow: BagOfWords) -> None:
        self.bow = bow

    @property
    def dim(self) -> int:
        return HOG_DIM + self.bow.vocabulary_size

    def extract(self, image: np.ndarray) -> np.ndarray:
        """Feature vector of a single frame."""
        hog = hog_descriptor(image)
        words = self.bow.transform_image(image)
        return np.concatenate([hog, words])

    def extract_video(self, frames: list[np.ndarray]) -> np.ndarray:
        """Stack of per-frame features, shape ``(k, dim)``."""
        if not frames:
            raise ValueError("extract_video needs at least one frame")
        return np.stack([self.extract(frame) for frame in frames])


def build_vocabulary(
    training_frames: list[np.ndarray],
    vocabulary_size: int = 400,
    rng: np.random.Generator | None = None,
) -> BagOfWords:
    """Fit the shared visual vocabulary from training frames.

    Frames that yield no keypoint descriptors are skipped with a
    warning naming the frame index; if *every* frame comes back empty
    the vocabulary (and the PCA pipeline downstream) cannot be built,
    so that case raises immediately instead of failing later with an
    opaque shape error.
    """
    stacks = [extract_descriptors(frame) for frame in training_frames]
    kept = []
    for index, stack in enumerate(stacks):
        if len(stack) == 0:
            logger.warning(
                "vocabulary training frame %d yielded no keypoint "
                "descriptors; skipping it",
                index,
            )
        else:
            kept.append(stack)
    if not kept:
        raise ValueError(
            f"all {len(stacks)} vocabulary training frames yielded empty "
            "descriptor stacks; cannot build a visual vocabulary "
            "(frames may be blank or featureless)"
        )
    bow = BagOfWords(vocabulary_size=vocabulary_size, rng=rng)
    return bow.fit(np.vstack(kept))


def video_features(
    frames: list[np.ndarray], bow: BagOfWords
) -> np.ndarray:
    """Convenience wrapper: per-frame combined features of a clip."""
    return FrameFeatureExtractor(bow).extract_video(frames)

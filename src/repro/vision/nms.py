"""Non-maximum suppression for scored detection boxes."""

from __future__ import annotations

import numpy as np


def non_max_suppression(
    boxes: np.ndarray,
    scores: np.ndarray,
    iou_threshold: float = 0.4,
) -> list[int]:
    """Greedy NMS: keep the highest-scoring box, drop overlaps, repeat.

    Args:
        boxes: ``(n, 4)`` array of ``(x, y, w, h)`` boxes.
        scores: ``(n,)`` detection scores.
        iou_threshold: Boxes overlapping a kept box above this IoU are
            suppressed.

    Returns:
        Indices of the kept boxes, in decreasing score order.
    """
    boxes = np.asarray(boxes, dtype=float)
    scores = np.asarray(scores, dtype=float)
    if boxes.ndim != 2 or boxes.shape[1] != 4:
        raise ValueError(f"expected (n, 4) boxes, got {boxes.shape}")
    if len(boxes) != len(scores):
        raise ValueError("boxes and scores must have the same length")
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError("iou_threshold must lie in [0, 1]")
    if len(boxes) == 0:
        return []

    x1 = boxes[:, 0]
    y1 = boxes[:, 1]
    x2 = boxes[:, 0] + boxes[:, 2]
    y2 = boxes[:, 1] + boxes[:, 3]
    areas = boxes[:, 2] * boxes[:, 3]

    order = np.argsort(scores)[::-1]
    keep: list[int] = []
    while len(order) > 0:
        best = int(order[0])
        keep.append(best)
        rest = order[1:]
        ix1 = np.maximum(x1[best], x1[rest])
        iy1 = np.maximum(y1[best], y1[rest])
        ix2 = np.minimum(x2[best], x2[rest])
        iy2 = np.minimum(y2[best], y2[rest])
        inter = np.maximum(0.0, ix2 - ix1) * np.maximum(0.0, iy2 - iy1)
        union = areas[best] + areas[rest] - inter
        with np.errstate(divide="ignore", invalid="ignore"):
            iou = np.where(union > 0, inter / union, 0.0)
        order = rest[iou <= iou_threshold]
    return keep

"""Vision feature substrate.

From-scratch numpy implementations of the feature pipeline the paper
builds with OpenCV (Section V-A): histogram-of-oriented-gradients
frame descriptors (3780-dim, the standard 64x128 person window
layout), a Hessian-based keypoint detector with SURF-style 64-dim
descriptors, Lloyd k-means for the 400-word visual vocabulary, and the
bag-of-words frame histogram.  A combined frame feature is the paper's
4180-dimensional vector (HOG ++ BoW).
"""

from repro.vision.bow import BagOfWords
from repro.vision.color import mean_color_feature
from repro.vision.features import FrameFeatureExtractor, video_features
from repro.vision.hog import hog_descriptor
from repro.vision.image import integral_image, resize_bilinear
from repro.vision.keypoints import Keypoint, detect_keypoints
from repro.vision.kmeans import KMeans

__all__ = [
    "BagOfWords",
    "mean_color_feature",
    "FrameFeatureExtractor",
    "video_features",
    "hog_descriptor",
    "integral_image",
    "resize_bilinear",
    "Keypoint",
    "detect_keypoints",
    "KMeans",
]

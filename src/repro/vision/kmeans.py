"""Lloyd's k-means with k-means++ seeding.

Used to cluster keypoint descriptors into the 400-word visual
vocabulary of Section V-A.

The Lloyd update is vectorised (a label sort plus one grouped
``np.add.reduceat`` pass instead of a per-centroid mask-and-mean
loop); the loop version is kept as
:meth:`KMeans._update_centroids_reference` for the equivalence tests.
"""

from __future__ import annotations

import numpy as np

_ASSIGN_CHUNK = 4096


class KMeans:
    """Plain k-means clustering.

    Attributes:
        k: Number of clusters.
        max_iterations: Cap on Lloyd iterations.
        tol: Convergence threshold on total centroid movement.
        centroids: ``(k, d)`` array after :meth:`fit`.
    """

    def __init__(
        self,
        k: int,
        max_iterations: int = 50,
        tol: float = 1e-4,
        rng: np.random.Generator | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.max_iterations = max_iterations
        self.tol = tol
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.centroids: np.ndarray | None = None
        self.iterations_run = 0

    def _init_centroids(self, data: np.ndarray) -> np.ndarray:
        """k-means++ seeding."""
        n = len(data)
        centroids = np.empty((self.k, data.shape[1]))
        first = self._rng.integers(n)
        centroids[0] = data[first]
        closest_sq = np.full(n, np.inf)
        for idx in range(1, self.k):
            dist_sq = np.sum((data - centroids[idx - 1]) ** 2, axis=1)
            closest_sq = np.minimum(closest_sq, dist_sq)
            total = closest_sq.sum()
            if total <= 1e-12:
                # All points coincide with chosen centroids; reuse any.
                centroids[idx:] = data[self._rng.integers(n, size=self.k - idx)]
                break
            probs = closest_sq / total
            centroids[idx] = data[self._rng.choice(n, p=probs)]
        return centroids

    def _update_centroids(
        self, data: np.ndarray, labels: np.ndarray, centroids: np.ndarray
    ) -> np.ndarray:
        """One Lloyd update: member means, empty clusters unchanged.

        Members are grouped by a stable sort on their labels and summed
        per group in a single ``np.add.reduceat`` pass — one gather and
        one reduction instead of ``k`` boolean mask scans.
        """
        counts = np.bincount(labels, minlength=self.k)
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        boundaries = np.flatnonzero(np.r_[True, np.diff(sorted_labels) > 0])
        sums = np.add.reduceat(data[order], boundaries, axis=0)
        present = sorted_labels[boundaries]
        new_centroids = np.array(centroids)
        new_centroids[present] = sums / counts[present, None]
        return new_centroids

    def _update_centroids_reference(
        self, data: np.ndarray, labels: np.ndarray, centroids: np.ndarray
    ) -> np.ndarray:
        """Original per-centroid loop update (equivalence baseline)."""
        new_centroids = np.array(centroids)
        for idx in range(self.k):
            members = data[labels == idx]
            if len(members) > 0:
                new_centroids[idx] = members.mean(axis=0)
        return new_centroids

    def fit(self, data: np.ndarray) -> "KMeans":
        """Cluster ``(n, d)`` data; n may be smaller than k."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or len(data) == 0:
            raise ValueError(f"expected non-empty (n, d) data, got {data.shape}")
        if len(data) <= self.k:
            # Degenerate: every point is its own centroid; pad by repeats.
            reps = int(np.ceil(self.k / len(data)))
            self.centroids = np.tile(data, (reps, 1))[: self.k]
            self.iterations_run = 0
            return self

        centroids = self._init_centroids(data)
        for iteration in range(self.max_iterations):
            labels = self._assign(data, centroids)
            new_centroids = self._update_centroids(data, labels, centroids)
            movement = float(np.linalg.norm(new_centroids - centroids))
            centroids = new_centroids
            self.iterations_run = iteration + 1
            if movement < self.tol:
                break
        self.centroids = centroids
        return self

    @staticmethod
    def _assign(
        data: np.ndarray, centroids: np.ndarray, chunk: int = _ASSIGN_CHUNK
    ) -> np.ndarray:
        """Nearest-centroid labels, chunked to bound memory.

        One ``(chunk, k)`` distance buffer is allocated up front and
        reused across chunks (the cross-term is written into it via
        ``matmul(..., out=...)``), so assignment allocates O(chunk * k)
        once instead of three temporaries per chunk.
        """
        n = len(data)
        labels = np.empty(n, dtype=int)
        centroid_sq = np.sum(centroids**2, axis=1)
        buffer = np.empty((min(chunk, n), len(centroids)))
        for start in range(0, n, chunk):
            block = data[start : start + chunk]
            dists = buffer[: len(block)]
            np.matmul(block, centroids.T, out=dists)
            dists *= -2.0
            dists += np.sum(block**2, axis=1)[:, None]
            dists += centroid_sq[None, :]
            labels[start : start + len(block)] = np.argmin(dists, axis=1)
        return labels

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Nearest-centroid labels for ``(n, d)`` data."""
        if self.centroids is None:
            raise RuntimeError("KMeans.predict called before fit")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        return self._assign(data, self.centroids)

    def inertia(self, data: np.ndarray) -> float:
        """Sum of squared distances to assigned centroids."""
        if self.centroids is None:
            raise RuntimeError("KMeans.inertia called before fit")
        data = np.asarray(data, dtype=float)
        labels = self.predict(data)
        return float(np.sum((data - self.centroids[labels]) ** 2))

"""Hessian-based keypoint detection with SURF-style descriptors.

A stand-in for OpenCV's SURF (Section V-A of the paper): interest
points are local maxima of the determinant of the Hessian computed at
a small Gaussian scale; each keypoint carries a 64-dimensional
descriptor built, as in SURF, from a 4x4 grid of sub-regions around
the point with ``(sum dx, sum |dx|, sum dy, sum |dy|)`` per sub-region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.vision.image import image_gradients

DESCRIPTOR_DIM = 64
_GRID = 4  # 4x4 sub-regions
_SUBREGION = 3  # pixels per sub-region side


@dataclass(frozen=True)
class Keypoint:
    """An interest point with its response strength."""

    x: float
    y: float
    response: float


def hessian_response(image: np.ndarray, sigma: float = 1.6) -> np.ndarray:
    """Determinant-of-Hessian response map at scale ``sigma``."""
    image = np.asarray(image, dtype=float)
    lxx = ndimage.gaussian_filter(image, sigma, order=(0, 2))
    lyy = ndimage.gaussian_filter(image, sigma, order=(2, 0))
    lxy = ndimage.gaussian_filter(image, sigma, order=(1, 1))
    return lxx * lyy - (0.9 * lxy) ** 2


def detect_keypoints(
    image: np.ndarray,
    max_keypoints: int = 200,
    sigma: float = 1.6,
    threshold_rel: float = 0.05,
) -> list[Keypoint]:
    """Find local maxima of the Hessian response.

    Args:
        image: Grayscale float image.
        max_keypoints: Keep at most this many, strongest first.
        sigma: Gaussian scale of the Hessian.
        threshold_rel: Responses below ``threshold_rel * max_response``
            are discarded.

    Returns:
        Keypoints sorted by decreasing response.
    """
    response = np.abs(hessian_response(image, sigma))
    if response.size == 0:
        return []
    # The absolute floor rejects numerical noise on near-constant
    # images, where the relative threshold alone would admit peaks.
    floor = max(threshold_rel * response.max(), 1e-7)
    local_max = ndimage.maximum_filter(response, size=3)
    peak_mask = (response == local_max) & (response > floor)
    # Keep a border so descriptors fit.
    margin = _GRID * _SUBREGION // 2 + 1
    peak_mask[:margin, :] = False
    peak_mask[-margin:, :] = False
    peak_mask[:, :margin] = False
    peak_mask[:, -margin:] = False
    ys, xs = np.nonzero(peak_mask)
    points = [
        Keypoint(x=float(x), y=float(y), response=float(response[y, x]))
        for y, x in zip(ys, xs)
    ]
    points.sort(key=lambda kp: -kp.response)
    return points[:max_keypoints]


def describe_keypoint(
    gx: np.ndarray, gy: np.ndarray, keypoint: Keypoint
) -> np.ndarray:
    """SURF-style 64-dim descriptor from precomputed gradients."""
    half = _GRID * _SUBREGION // 2
    cy, cx = int(keypoint.y), int(keypoint.x)
    patch_gx = gx[cy - half : cy + half, cx - half : cx + half]
    patch_gy = gy[cy - half : cy + half, cx - half : cx + half]
    desc = np.zeros((_GRID, _GRID, 4))
    for sy in range(_GRID):
        for sx in range(_GRID):
            rows = slice(sy * _SUBREGION, (sy + 1) * _SUBREGION)
            cols = slice(sx * _SUBREGION, (sx + 1) * _SUBREGION)
            dx = patch_gx[rows, cols]
            dy = patch_gy[rows, cols]
            desc[sy, sx] = [
                dx.sum(),
                np.abs(dx).sum(),
                dy.sum(),
                np.abs(dy).sum(),
            ]
    vec = desc.ravel()
    norm = np.linalg.norm(vec)
    if norm > 1e-12:
        vec = vec / norm
    return vec


def _sum9_pairwise(blocks: np.ndarray) -> np.ndarray:
    """Numpy's unrolled pairwise sum over the last axis (9 elements).

    Matches ``.sum()`` over a 3x3 sub-region in
    :func:`describe_keypoint` — both the strided gradient slice and
    the contiguous ``np.abs`` temporary reduce through numpy's
    8-accumulator base case:
    ``(((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7))) + a8``.
    """
    b = blocks
    return (
        ((b[..., 0] + b[..., 1]) + (b[..., 2] + b[..., 3]))
        + ((b[..., 4] + b[..., 5]) + (b[..., 6] + b[..., 7]))
    ) + b[..., 8]


def describe_keypoints(
    gx: np.ndarray, gy: np.ndarray, keypoints: list[Keypoint]
) -> np.ndarray:
    """Vectorised :func:`describe_keypoint` over many keypoints.

    Gathers every keypoint's patch with one sliding-window view and
    computes all sub-region sums as elementwise passes, replicating
    the scalar path's reduction orders exactly — each row is
    bit-identical to ``describe_keypoint(gx, gy, kp)``.
    """
    if not keypoints:
        return np.zeros((0, DESCRIPTOR_DIM))
    half = _GRID * _SUBREGION // 2
    size = _GRID * _SUBREGION
    ys = np.array([int(kp.y) for kp in keypoints]) - half
    xs = np.array([int(kp.x) for kp in keypoints]) - half
    windows_x = np.lib.stride_tricks.sliding_window_view(gx, (size, size))
    windows_y = np.lib.stride_tricks.sliding_window_view(gy, (size, size))
    patches_x = windows_x[ys, xs]
    patches_y = windows_y[ys, xs]

    def blocks_of(patches: np.ndarray) -> np.ndarray:
        """(n, 12, 12) patches -> (n, 16, 9) sub-region elements in
        the row-major order the scalar loop reads them."""
        b = patches.reshape(-1, _GRID, _SUBREGION, _GRID, _SUBREGION)
        b = b.transpose(0, 1, 3, 2, 4)
        return b.reshape(-1, _GRID * _GRID, _SUBREGION * _SUBREGION)

    bx = blocks_of(patches_x)
    by = blocks_of(patches_y)
    desc = np.stack(
        [
            _sum9_pairwise(bx),
            _sum9_pairwise(np.abs(bx)),
            _sum9_pairwise(by),
            _sum9_pairwise(np.abs(by)),
        ],
        axis=-1,
    ).reshape(-1, DESCRIPTOR_DIM)
    for i in range(len(desc)):
        # Per-row scalar norms: np.linalg.norm(vec) and the axis=1
        # variant differ in the last ulp, and the scalar one is pinned.
        norm = np.linalg.norm(desc[i])
        if norm > 1e-12:
            desc[i] = desc[i] / norm
    return desc


def extract_descriptors(
    image: np.ndarray, max_keypoints: int = 200
) -> np.ndarray:
    """Detect keypoints and return an ``(n, 64)`` descriptor matrix."""
    image = np.asarray(image, dtype=float)
    keypoints = detect_keypoints(image, max_keypoints=max_keypoints)
    if not keypoints:
        return np.zeros((0, DESCRIPTOR_DIM))
    gx, gy = image_gradients(image)
    return describe_keypoints(gx, gy, keypoints)

"""Colour features of detected areas.

The paper extracts the Mean Color feature [26] of each detected area,
PCA-reduces it, and ships 40 dimensions (160 bytes) per object to the
controller for cross-camera re-identification.  Our synthetic frames
are grayscale, so the equivalent is a 40-dimensional grid of block
means over the detected area (a 5x8 layout mirroring a person's aspect
ratio), which captures the clothing-shade layout the renderer paints.
"""

from __future__ import annotations

import numpy as np

from repro.vision.image import crop, resize_bilinear

COLOR_FEATURE_DIM = 40
_GRID_COLS = 5
_GRID_ROWS = 8


def mean_color_feature(
    image: np.ndarray, bbox: tuple[float, float, float, float]
) -> np.ndarray:
    """Compute the 40-dim mean-colour descriptor of a detected area.

    Args:
        image: Full frame (grayscale float).
        bbox: ``(x, y, w, h)`` in the same pixel coordinates as the
            image.

    Returns:
        Length-40 vector of block means; zeros when the crop is empty.
    """
    patch = crop(image, bbox)
    if patch.size == 0:
        return np.zeros(COLOR_FEATURE_DIM)
    # Normalise to a fixed grid so the feature is size-invariant.
    canon = resize_bilinear(patch, _GRID_COLS * 4, _GRID_ROWS * 4)
    feature = np.empty(COLOR_FEATURE_DIM)
    idx = 0
    for row in range(_GRID_ROWS):
        for col in range(_GRID_COLS):
            block = canon[row * 4 : (row + 1) * 4, col * 4 : (col + 1) * 4]
            feature[idx] = block.mean()
            idx += 1
    return feature


def synthetic_color_base(shade: float) -> np.ndarray:
    """The noise-free synthetic colour feature of a shade: body blocks
    carry the clothing shade, the top row the lighter head band."""
    feature = np.full(COLOR_FEATURE_DIM, shade)
    feature[:_GRID_COLS] = min(1.0, shade + 0.25)
    return feature


def synthetic_color_feature(
    shade: float,
    rng: np.random.Generator,
    noise: float = 0.03,
) -> np.ndarray:
    """Colour feature derived directly from a pedestrian's shade.

    Used on the fast path where detections are generated from object
    views without re-cropping the rendered frame: the same structure
    :func:`mean_color_feature` recovers from painted frames, plus
    per-view noise.
    """
    # minimum(maximum(...)) is np.clip's own elementwise arithmetic
    # without the dispatch overhead of the fromnumeric wrapper.
    return np.minimum(
        1.0,
        np.maximum(
            0.0,
            synthetic_color_base(shade)
            + rng.normal(scale=noise, size=COLOR_FEATURE_DIM),
        ),
    )


def synthetic_color_from_gauss(
    shade: float, gauss: np.ndarray, noise: float = 0.03
) -> np.ndarray:
    """:func:`synthetic_color_feature` from pre-drawn standard normals.

    ``noise * gauss`` consumes exactly the values a
    ``rng.normal(scale=noise, size=40)`` fill would draw, element for
    element, so callers that batch their generator reads (one
    ``standard_normal`` block per detection) reproduce the unbatched
    feature bit for bit.
    """
    return np.minimum(
        1.0, np.maximum(0.0, synthetic_color_base(shade) + noise * gauss)
    )

"""Basic image operations on float grayscale arrays."""

from __future__ import annotations

import numpy as np


def resize_bilinear(image: np.ndarray, width: int, height: int) -> np.ndarray:
    """Resize a 2-D float image with bilinear interpolation.

    Args:
        image: ``(h, w)`` array.
        width: Target width.
        height: Target height.

    Returns:
        ``(height, width)`` array.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected 2-D image, got shape {image.shape}")
    if width < 1 or height < 1:
        raise ValueError("target size must be positive")
    src_h, src_w = image.shape
    if (src_h, src_w) == (height, width):
        return np.array(image)

    # Sample positions in source coordinates (pixel-centre aligned).
    ys = (np.arange(height) + 0.5) * src_h / height - 0.5
    xs = (np.arange(width) + 0.5) * src_w / width - 0.5
    ys = np.clip(ys, 0, src_h - 1)
    xs = np.clip(xs, 0, src_w - 1)

    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, src_h - 1)
    x1 = np.minimum(x0 + 1, src_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]

    top = image[np.ix_(y0, x0)] * (1 - wx) + image[np.ix_(y0, x1)] * wx
    bottom = image[np.ix_(y1, x0)] * (1 - wx) + image[np.ix_(y1, x1)] * wx
    return top * (1 - wy) + bottom * wy


def image_gradients(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Central-difference gradients ``(gx, gy)`` with replicated borders."""
    image = np.asarray(image, dtype=float)
    gx = np.empty_like(image)
    gy = np.empty_like(image)
    gx[:, 1:-1] = (image[:, 2:] - image[:, :-2]) / 2.0
    gx[:, 0] = image[:, 1] - image[:, 0]
    gx[:, -1] = image[:, -1] - image[:, -2]
    gy[1:-1, :] = (image[2:, :] - image[:-2, :]) / 2.0
    gy[0, :] = image[1, :] - image[0, :]
    gy[-1, :] = image[-1, :] - image[-2, :]
    return gx, gy


def integral_image(image: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero top row/left column.

    ``ii[y, x]`` is the sum of ``image[:y, :x]``, so box sums are
    ``ii[y1, x1] - ii[y0, x1] - ii[y1, x0] + ii[y0, x0]``.
    """
    image = np.asarray(image, dtype=float)
    ii = np.zeros((image.shape[0] + 1, image.shape[1] + 1))
    ii[1:, 1:] = image.cumsum(axis=0).cumsum(axis=1)
    return ii


def box_sum(ii: np.ndarray, y0: int, x0: int, y1: int, x1: int) -> float:
    """Sum of the rectangle ``[y0:y1, x0:x1]`` given an integral image."""
    return float(ii[y1, x1] - ii[y0, x1] - ii[y1, x0] + ii[y0, x0])


def crop(
    image: np.ndarray, bbox: tuple[float, float, float, float]
) -> np.ndarray:
    """Crop ``(x, y, w, h)`` from an image, clamped to bounds.

    Returns an empty ``(0, 0)`` array when the box lies fully outside.
    """
    h, w = image.shape
    x, y, bw, bh = bbox
    x0 = int(np.clip(np.floor(x), 0, w))
    y0 = int(np.clip(np.floor(y), 0, h))
    x1 = int(np.clip(np.ceil(x + bw), x0, w))
    y1 = int(np.clip(np.ceil(y + bh), y0, h))
    return image[y0:y1, x0:x1]

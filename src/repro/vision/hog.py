"""Histogram of oriented gradients (Dalal & Triggs, CVPR 2005).

The paper represents each frame by a 3780-dimensional HOG vector —
exactly the standard 64x128 person-window layout: 8x8-pixel cells,
9 unsigned orientation bins, 2x2-cell blocks with stride one cell
(7 x 15 blocks x 36 values = 3780), block-wise L2-Hys normalisation.

Two implementations live here.  The vectorised one (default) bins all
gradients in a single scatter-add over flattened (cell, bin) indices
and normalises every block at once through a sliding-window view; the
original per-cell / per-block Python loops are kept as
``*_reference`` functions for the equivalence tests
(``tests/test_hog_equivalence.py`` holds them to 1e-9).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.vision.image import image_gradients, resize_bilinear

HOG_WINDOW = (64, 128)  # (width, height)
CELL_SIZE = 8
BLOCK_CELLS = 2
NUM_BINS = 9
HOG_DIM = 3780


def _binned_gradients(
    image: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-pixel magnitude, lower/upper bin and interpolation weight."""
    gx, gy = image_gradients(image)
    magnitude = np.hypot(gx, gy)
    # Unsigned orientation in [0, pi).
    orientation = np.mod(np.arctan2(gy, gx), np.pi)
    bin_width = np.pi / NUM_BINS
    bin_pos = orientation / bin_width - 0.5
    lower = np.floor(bin_pos).astype(int)
    frac = bin_pos - lower
    lower_bin = np.mod(lower, NUM_BINS)
    upper_bin = np.mod(lower + 1, NUM_BINS)
    return magnitude, lower_bin, upper_bin, frac


def cell_histograms(image: np.ndarray) -> np.ndarray:
    """Per-cell orientation histograms with bilinear bin interpolation.

    Vectorised: every pixel's two weighted votes are accumulated in
    one pass via ``bincount`` over flattened ``cell * NUM_BINS + bin``
    indices (the unbuffered-scatter semantics of ``np.add.at``, minus
    its per-element overhead).

    Returns an array of shape ``(cells_y, cells_x, NUM_BINS)``.
    """
    magnitude, lower_bin, upper_bin, frac = _binned_gradients(image)
    h, w = image.shape
    cells_y, cells_x = h // CELL_SIZE, w // CELL_SIZE
    valid_h = cells_y * CELL_SIZE
    valid_w = cells_x * CELL_SIZE

    mag = magnitude[:valid_h, :valid_w]
    lo = lower_bin[:valid_h, :valid_w]
    hi = upper_bin[:valid_h, :valid_w]
    fr = frac[:valid_h, :valid_w]

    cell_index = (
        (np.arange(valid_h) // CELL_SIZE)[:, None] * cells_x
        + (np.arange(valid_w) // CELL_SIZE)[None, :]
    )
    base = cell_index * NUM_BINS
    size = cells_y * cells_x * NUM_BINS
    hist = np.bincount(
        (base + lo).ravel(), weights=(mag * (1 - fr)).ravel(), minlength=size
    )
    hist += np.bincount(
        (base + hi).ravel(), weights=(mag * fr).ravel(), minlength=size
    )
    return hist.reshape(cells_y, cells_x, NUM_BINS)


def cell_histograms_reference(image: np.ndarray) -> np.ndarray:
    """Original per-cell loop implementation (equivalence baseline)."""
    magnitude, lower_bin, upper_bin, frac = _binned_gradients(image)
    h, w = image.shape
    cells_y, cells_x = h // CELL_SIZE, w // CELL_SIZE
    hist = np.zeros((cells_y, cells_x, NUM_BINS))
    for cy in range(cells_y):
        row = slice(cy * CELL_SIZE, (cy + 1) * CELL_SIZE)
        for cx in range(cells_x):
            col = slice(cx * CELL_SIZE, (cx + 1) * CELL_SIZE)
            mag = magnitude[row, col].ravel()
            lo = lower_bin[row, col].ravel()
            hi = upper_bin[row, col].ravel()
            fr = frac[row, col].ravel()
            np.add.at(hist[cy, cx], lo, mag * (1 - fr))
            np.add.at(hist[cy, cx], hi, mag * fr)
    return hist


def _normalise_blocks(hist: np.ndarray) -> np.ndarray:
    """L2-Hys normalisation over 2x2-cell blocks, stride one cell.

    All blocks are normalised at once: a sliding-window view exposes
    every ``(BLOCK_CELLS, BLOCK_CELLS, NUM_BINS)`` block without
    copying, then both L2 passes run along the last axis.
    """
    windows = sliding_window_view(
        hist, (BLOCK_CELLS, BLOCK_CELLS), axis=(0, 1)
    )
    # windows: (blocks_y, blocks_x, NUM_BINS, BLOCK_CELLS, BLOCK_CELLS);
    # reorder to (..., cy, cx, bin) so each block ravels exactly like
    # hist[by:by+2, bx:bx+2].ravel() in the reference.
    blocks_y, blocks_x = windows.shape[:2]
    blocks = windows.transpose(0, 1, 3, 4, 2).reshape(
        blocks_y, blocks_x, BLOCK_CELLS * BLOCK_CELLS * NUM_BINS
    )
    norms = np.linalg.norm(blocks, axis=2, keepdims=True) + 1e-6
    blocks = blocks / norms
    blocks = np.minimum(blocks, 0.2)
    norms = np.linalg.norm(blocks, axis=2, keepdims=True) + 1e-6
    return (blocks / norms).ravel()


def _normalise_blocks_reference(hist: np.ndarray) -> np.ndarray:
    """Original per-block loop implementation (equivalence baseline)."""
    cells_y, cells_x, _ = hist.shape
    blocks_y = cells_y - BLOCK_CELLS + 1
    blocks_x = cells_x - BLOCK_CELLS + 1
    out = []
    for by in range(blocks_y):
        for bx in range(blocks_x):
            block = hist[by : by + BLOCK_CELLS, bx : bx + BLOCK_CELLS].ravel()
            norm = np.linalg.norm(block) + 1e-6
            block = block / norm
            block = np.minimum(block, 0.2)
            norm = np.linalg.norm(block) + 1e-6
            out.append(block / norm)
    return np.concatenate(out)


def _prepare_window(image: np.ndarray, resize: bool) -> np.ndarray:
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected 2-D image, got shape {image.shape}")
    if resize:
        image = resize_bilinear(image, HOG_WINDOW[0], HOG_WINDOW[1])
    if image.shape[0] < CELL_SIZE * BLOCK_CELLS or image.shape[1] < CELL_SIZE * BLOCK_CELLS:
        raise ValueError(f"image too small for HOG: {image.shape}")
    return image


def hog_descriptor(image: np.ndarray, resize: bool = True) -> np.ndarray:
    """Compute the 3780-dim HOG descriptor of a grayscale frame.

    Args:
        image: ``(h, w)`` float image.
        resize: When True (default), the frame is first resampled to
            the canonical 64x128 window; pass False only for images
            already at a cell-aligned size.

    Returns:
        1-D float descriptor; 3780 values for the canonical window.
    """
    image = _prepare_window(image, resize)
    return _normalise_blocks(cell_histograms(image))


def hog_descriptor_reference(
    image: np.ndarray, resize: bool = True
) -> np.ndarray:
    """The pre-vectorisation HOG pipeline, kept for equivalence tests."""
    image = _prepare_window(image, resize)
    return _normalise_blocks_reference(cell_histograms_reference(image))

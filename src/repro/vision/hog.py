"""Histogram of oriented gradients (Dalal & Triggs, CVPR 2005).

The paper represents each frame by a 3780-dimensional HOG vector —
exactly the standard 64x128 person-window layout: 8x8-pixel cells,
9 unsigned orientation bins, 2x2-cell blocks with stride one cell
(7 x 15 blocks x 36 values = 3780), block-wise L2-Hys normalisation.
"""

from __future__ import annotations

import numpy as np

from repro.vision.image import image_gradients, resize_bilinear

HOG_WINDOW = (64, 128)  # (width, height)
CELL_SIZE = 8
BLOCK_CELLS = 2
NUM_BINS = 9
HOG_DIM = 3780


def cell_histograms(image: np.ndarray) -> np.ndarray:
    """Per-cell orientation histograms with bilinear bin interpolation.

    Returns an array of shape ``(cells_y, cells_x, NUM_BINS)``.
    """
    gx, gy = image_gradients(image)
    magnitude = np.hypot(gx, gy)
    # Unsigned orientation in [0, pi).
    orientation = np.mod(np.arctan2(gy, gx), np.pi)

    h, w = image.shape
    cells_y, cells_x = h // CELL_SIZE, w // CELL_SIZE
    bin_width = np.pi / NUM_BINS
    bin_pos = orientation / bin_width - 0.5
    lower = np.floor(bin_pos).astype(int)
    frac = bin_pos - lower
    lower_bin = np.mod(lower, NUM_BINS)
    upper_bin = np.mod(lower + 1, NUM_BINS)

    hist = np.zeros((cells_y, cells_x, NUM_BINS))
    ys = np.arange(h) // CELL_SIZE
    xs = np.arange(w) // CELL_SIZE
    valid_h = cells_y * CELL_SIZE
    valid_w = cells_x * CELL_SIZE
    for cy in range(cells_y):
        row = slice(cy * CELL_SIZE, (cy + 1) * CELL_SIZE)
        for cx in range(cells_x):
            col = slice(cx * CELL_SIZE, (cx + 1) * CELL_SIZE)
            mag = magnitude[row, col].ravel()
            lo = lower_bin[row, col].ravel()
            hi = upper_bin[row, col].ravel()
            fr = frac[row, col].ravel()
            np.add.at(hist[cy, cx], lo, mag * (1 - fr))
            np.add.at(hist[cy, cx], hi, mag * fr)
    del ys, xs, valid_h, valid_w
    return hist


def _normalise_blocks(hist: np.ndarray) -> np.ndarray:
    """L2-Hys normalisation over 2x2-cell blocks, stride one cell."""
    cells_y, cells_x, _ = hist.shape
    blocks_y = cells_y - BLOCK_CELLS + 1
    blocks_x = cells_x - BLOCK_CELLS + 1
    out = []
    for by in range(blocks_y):
        for bx in range(blocks_x):
            block = hist[by : by + BLOCK_CELLS, bx : bx + BLOCK_CELLS].ravel()
            norm = np.linalg.norm(block) + 1e-6
            block = block / norm
            block = np.minimum(block, 0.2)
            norm = np.linalg.norm(block) + 1e-6
            out.append(block / norm)
    return np.concatenate(out)


def hog_descriptor(image: np.ndarray, resize: bool = True) -> np.ndarray:
    """Compute the 3780-dim HOG descriptor of a grayscale frame.

    Args:
        image: ``(h, w)`` float image.
        resize: When True (default), the frame is first resampled to
            the canonical 64x128 window; pass False only for images
            already at a cell-aligned size.

    Returns:
        1-D float descriptor; 3780 values for the canonical window.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected 2-D image, got shape {image.shape}")
    if resize:
        image = resize_bilinear(image, HOG_WINDOW[0], HOG_WINDOW[1])
    if image.shape[0] < CELL_SIZE * BLOCK_CELLS or image.shape[1] < CELL_SIZE * BLOCK_CELLS:
        raise ValueError(f"image too small for HOG: {image.shape}")
    hist = cell_histograms(image)
    return _normalise_blocks(hist)

"""Bag-of-visual-words frame representation.

As in Section V-A: keypoint descriptors from a set of training videos
are clustered into ``k`` visual words (the paper uses 400, built from
images of the 12 training feeds); any frame is then represented by the
k-bin histogram of its descriptors' nearest words.
"""

from __future__ import annotations

import numpy as np

from repro.vision.keypoints import DESCRIPTOR_DIM, extract_descriptors
from repro.vision.kmeans import KMeans

DEFAULT_VOCABULARY_SIZE = 400


class BagOfWords:
    """A visual vocabulary plus the histogram transform."""

    def __init__(
        self,
        vocabulary_size: int = DEFAULT_VOCABULARY_SIZE,
        rng: np.random.Generator | None = None,
    ) -> None:
        if vocabulary_size < 1:
            raise ValueError("vocabulary_size must be positive")
        self.vocabulary_size = vocabulary_size
        self._kmeans = KMeans(vocabulary_size, rng=rng)
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def vocabulary(self) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("vocabulary accessed before fit")
        return self._kmeans.centroids

    def fit(self, descriptors: np.ndarray) -> "BagOfWords":
        """Build the vocabulary from an ``(n, 64)`` descriptor stack."""
        descriptors = np.asarray(descriptors, dtype=float)
        if descriptors.ndim != 2 or descriptors.shape[1] != DESCRIPTOR_DIM:
            raise ValueError(
                f"expected (n, {DESCRIPTOR_DIM}) descriptors, "
                f"got {descriptors.shape}"
            )
        if len(descriptors) == 0:
            raise ValueError("cannot fit a vocabulary on zero descriptors")
        self._kmeans.fit(descriptors)
        self._fitted = True
        return self

    def fit_images(self, images: list[np.ndarray]) -> "BagOfWords":
        """Extract descriptors from training images and fit."""
        stacks = [extract_descriptors(img) for img in images]
        stacks = [s for s in stacks if len(s) > 0]
        if not stacks:
            raise ValueError("no keypoints found in any training image")
        return self.fit(np.vstack(stacks))

    def histogram(self, descriptors: np.ndarray) -> np.ndarray:
        """L1-normalised word histogram of a descriptor set."""
        if not self._fitted:
            raise RuntimeError("histogram requested before fit")
        hist = np.zeros(self.vocabulary_size)
        descriptors = np.asarray(descriptors, dtype=float)
        if descriptors.size == 0:
            return hist
        labels = self._kmeans.predict(descriptors)
        np.add.at(hist, labels, 1.0)
        total = hist.sum()
        if total > 0:
            hist = hist / total
        return hist

    def transform_image(self, image: np.ndarray) -> np.ndarray:
        """Keypoints -> descriptors -> word histogram for one frame."""
        return self.histogram(extract_descriptors(image))

"""Table III: algorithm accuracy/cost on dataset #2 (chap), camera 1,
training segment.

Paper's measured operating points:

    HOG   0.6   0.80  0.42  0.55   9.86  3.4
    ACF   20    0.83  0.89  0.86   0.315 0.4
    C4    0.5   0.70  0.70  0.70   5.56  6.8
    LSVM  -0.2  0.84  0.83  0.84   25.06 32.2

Shape asserted: ACF wins on the cluttered high-resolution scene (both
most accurate AND cheapest); HOG's precision collapses with clutter;
every algorithm costs more than at 360x288.
"""

from repro.experiments.table2_3_4 import algorithm_table, render_table

PAPER_F_SCORES = {"HOG": 0.55, "ACF": 0.86, "C4": 0.70, "LSVM": 0.84}


def test_bench_table3(benchmark, runner_ds2):
    rows = benchmark.pedantic(
        algorithm_table,
        kwargs=dict(
            dataset_number=2,
            camera_index=0,
            segment="train",
            dataset=runner_ds2.dataset,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="Table III (dataset #2, cam 1, train)"))

    by_name = {r.algorithm: r for r in rows}
    # ACF is both most accurate and cheapest on chap.
    assert by_name["ACF"].f_score == max(r.f_score for r in rows)
    assert by_name["ACF"].energy_per_frame == min(
        r.energy_per_frame for r in rows
    )
    # HOG's precision collapses with furniture clutter (paper: 0.42).
    assert by_name["HOG"].precision < 0.7
    # Energy matches the fitted figures at 1024x768.
    assert abs(by_name["HOG"].energy_per_frame - 9.86) < 0.3
    assert abs(by_name["LSVM"].energy_per_frame - 25.06) < 0.8
    for name, f_paper in PAPER_F_SCORES.items():
        assert abs(by_name[name].f_score - f_paper) < 0.15, (
            name, by_name[name].f_score, f_paper,
        )

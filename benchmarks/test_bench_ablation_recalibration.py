"""Ablation: assessment period and re-calibration interval.

The paper sets the assessment period to 100 frames and the
re-calibration interval to 500 frames (Section VI-E).  Assessment
frames are expensive — every affordable algorithm runs on them — so
more frequent re-calibration trades energy for adaptivity.
"""

import numpy as np

from repro.core.config import EECSConfig
from repro.core.runner import SimulationRunner
from repro.experiments.tables import format_table

INTERVALS = [250, 500, 1000]


def sweep_intervals(base_runner):
    rows = []
    for interval in INTERVALS:
        config = EECSConfig(
            assessment_period=100, recalibration_interval=interval
        )
        runner = SimulationRunner(
            base_runner.dataset,
            config=config,
            detectors=base_runner.detectors,
            library=base_runner.library,
            rng=np.random.default_rng(78),
        )
        result = runner.run(mode="full", budget=2.0)
        rows.append((interval, result))
    return rows


def test_bench_ablation_recalibration(benchmark, runner_ds1):
    rows = benchmark.pedantic(
        sweep_intervals, args=(runner_ds1,), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["recalibration interval", "rounds", "detected", "energy (J)"],
        [
            [interval, len(r.decisions), r.humans_detected,
             r.energy_joules]
            for interval, r in rows
        ],
    ))

    by_interval = {interval: r for interval, r in rows}

    # More frequent re-calibration means more assessment rounds.
    assert (
        len(by_interval[250].decisions)
        > len(by_interval[1000].decisions)
    )

    # Assessment overhead: frequent re-calibration pays for more
    # all-algorithm assessment frames.  Faster adaptation can claw
    # part of it back by shrinking the operating set sooner, so the
    # comparison carries a tolerance band.
    assert (
        by_interval[250].energy_joules
        > 0.85 * by_interval[1000].energy_joules
    )

    # Accuracy stays in a similar band across cadences.
    counts = [r.humans_detected for _, r in rows]
    assert max(counts) - min(counts) < 0.3 * max(counts)

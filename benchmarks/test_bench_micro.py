"""Micro-benchmarks of the computational kernels.

These quantify the per-call costs that the paper's system-level
numbers are built from: frame feature extraction (what a camera
computes before an upload), the GFK similarity (what the controller
computes per training-item comparison), detector scoring, and
cross-camera grouping.
"""

import numpy as np
import pytest

from benchmarks._bench_util import (
    assert_overhead_within,
    interleaved_best,
    timed,
)
from repro.detection.detectors import make_detector
from repro.domain_adaptation.similarity import video_similarity
from repro.reid.matcher import CrossCameraMatcher
from repro.vision.bow import BagOfWords
from repro.vision.hog import hog_descriptor
from repro.vision.keypoints import extract_descriptors


@pytest.fixture(scope="module")
def frame(runner_ds1):
    record = runner_ds1.dataset.frames(1000, 1001)[0]
    return record.observation(runner_ds1.dataset.camera_ids[0])


def test_bench_hog_descriptor(benchmark, frame):
    result = benchmark(hog_descriptor, frame.image)
    assert result.shape == (3780,)


def test_bench_keypoint_descriptors(benchmark, frame):
    result = benchmark(extract_descriptors, frame.image)
    assert result.shape[1] == 64


def test_bench_gfk_similarity(benchmark):
    rng = np.random.default_rng(0)
    mean_a, mean_b = rng.normal(size=4180), rng.normal(size=4180)
    t = mean_a + 0.3 * rng.normal(size=(20, 4180))
    v = mean_b + 0.3 * rng.normal(size=(20, 4180))
    sim = benchmark(video_similarity, t, v, 10)
    assert 0.0 < sim <= 1.0


def test_bench_detector_detect(benchmark, runner_ds1, frame):
    detector = make_detector("HOG", runner_ds1.dataset.environment)
    rng = np.random.default_rng(1)
    detections = benchmark(detector.detect, frame, rng, 0.5)
    assert isinstance(detections, list)


def test_bench_matcher_group(benchmark, runner_ds1):
    dataset = runner_ds1.dataset
    record = dataset.frames(1000, 1001)[0]
    detector = make_detector("LSVM", dataset.environment)
    rng = np.random.default_rng(2)
    detections = []
    for camera_id in dataset.camera_ids:
        detections.extend(
            detector.detect(record.observation(camera_id), rng, -1.2)
        )
    groups = benchmark(runner_ds1.matcher.group, detections)
    assert len(groups) >= 1


def test_bench_bow_histogram(benchmark, frame, rng):
    descriptors = [
        d for d in (extract_descriptors(frame.image),) if len(d)
    ]
    bow = BagOfWords(vocabulary_size=400, rng=rng)
    bow.fit(np.vstack(descriptors * 4))
    hist = benchmark(bow.transform_image, frame.image)
    assert hist.shape == (400,)


def test_bench_metrics_hot_path(benchmark):
    """One labelled counter increment — the telemetry cost paid per
    message send / energy draw in instrumented runs."""
    from repro.telemetry import Telemetry

    telemetry = Telemetry(run_id="bench")
    counter = telemetry.energy_counter()
    benchmark(counter.inc, 0.001, node="cam1", category="processing")
    assert telemetry.registry.series_count() == 1


def test_telemetry_overhead_under_five_percent(runner_ds1):
    """Always-on budget: a fully instrumented run must stay within 5%
    of the uninstrumented wall-clock.

    Interleaved min-of-N: the minimum is the least-noisy estimator of
    the true cost on a shared machine, and alternating the two
    variants exposes both to the same thermal/cache conditions.
    """
    from repro.core.runner import SimulationRunner
    from repro.telemetry import Telemetry

    dataset = runner_ds1.dataset

    def timed_run(telemetry):
        runner = SimulationRunner(
            dataset,
            rng=np.random.default_rng(2017),
            telemetry=telemetry,
        )
        runner.library = runner_ds1.library
        elapsed, _ = timed(
            runner.run, mode="full", budget=2.0, start=1000, end=2000
        )
        return elapsed

    timed_run(None)  # warm caches before measuring
    # One run is ~40ms, timer-noise scale, so min-of-15 (still <1.5s
    # total) rather than the min-of-5 the longer benchmarks use.
    best_plain, best_instrumented = interleaved_best(
        15,
        lambda: timed_run(None),
        lambda: timed_run(Telemetry(run_id="bench")),
    )
    assert_overhead_within(
        best_instrumented, best_plain, 0.05, "telemetry instrumentation"
    )

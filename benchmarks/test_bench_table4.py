"""Table IV: test-segment accuracy on dataset #1, camera 1, with
thresholds carried over from the training segment.

Paper (thresholds learned on frames 0-1000, applied to 1001-2950):

    HOG   0.5   0.60   0.99   0.74
    ACF   2     0.52   0.91   0.66
    C4    0     0.534  0.974  0.69
    LSVM  -1.2  0.975  0.892  0.93

Shape asserted: the *ordering* of algorithms transfers from train to
test — the core premise behind matching a test feed to its training
item (Section VI-B).
"""

from repro.experiments.table2_3_4 import algorithm_table, render_table


def test_bench_table4(benchmark, runner_ds1):
    dataset = runner_ds1.dataset
    train_rows = algorithm_table(1, 0, "train", dataset=dataset)
    thresholds = {r.algorithm: r.threshold for r in train_rows}

    rows = benchmark.pedantic(
        algorithm_table,
        kwargs=dict(
            dataset_number=1,
            camera_index=0,
            segment="test",
            dataset=dataset,
            train_thresholds=thresholds,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table(rows, title="Table IV (dataset #1, cam 1, test)"))

    by_name = {r.algorithm: r for r in rows}
    train_by_name = {r.algorithm: r for r in train_rows}

    # Thresholds carried over verbatim.
    for row in rows:
        assert row.threshold == thresholds[row.algorithm]

    # The train-derived ranking holds on the test segment:
    # LSVM > HOG > ACF (the paper's deployable ordering).
    assert by_name["LSVM"].f_score > by_name["HOG"].f_score
    assert by_name["HOG"].f_score > by_name["ACF"].f_score

    # Same most-accurate algorithm on both segments.
    train_best = max(train_rows, key=lambda r: r.f_score).algorithm
    test_best = max(rows, key=lambda r: r.f_score).algorithm
    assert train_best == test_best

    # Test accuracy stays in the neighbourhood of the training value
    # (the paper's Table IV is within ~0.1 of Table II per algorithm).
    for name in by_name:
        assert abs(by_name[name].f_score - train_by_name[name].f_score) < 0.2

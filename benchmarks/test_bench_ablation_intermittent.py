"""Ablation: intermittent high-accuracy rounds (Section VII).

The discussion section proposes running the expensive best algorithms
only in some rounds to catch objects missed during energy-saving
rounds, "at slightly increased energy costs".  This bench alternates
all-best and full-EECS rounds over the test segment and compares the
three policies.
"""

from repro.experiments.tables import format_table


def run_policies(runner):
    spec = runner.dataset.spec
    start, end = spec.train_end, spec.total_frames
    policies = {}

    policies["all_best"] = [runner.run(
        mode="all_best", budget=2.0, start=start, end=end
    )]
    policies["eecs"] = [runner.run(
        mode="full", budget=2.0, start=start, end=end
    )]

    # Intermittent: alternate 500-frame windows between policies.
    window = 500
    segments = []
    mode_cycle = ["all_best", "full"]
    for i, seg_start in enumerate(range(start, end, window)):
        mode = mode_cycle[i % 2]
        segments.append(runner.run(
            mode=mode,
            budget=2.0,
            start=seg_start,
            end=min(seg_start + window, end),
        ))
    policies["intermittent"] = segments
    return policies


def _totals(results):
    return (
        sum(r.humans_detected for r in results),
        sum(r.humans_present for r in results),
        sum(r.energy_joules for r in results),
    )


def test_bench_ablation_intermittent(benchmark, runner_ds1):
    policies = benchmark.pedantic(
        run_policies, args=(runner_ds1,), rounds=1, iterations=1
    )
    rows = []
    totals = {}
    for name, results in policies.items():
        detected, present, energy = _totals(results)
        totals[name] = (detected, energy)
        rows.append([name, detected, present, energy])
    print()
    print(format_table(
        ["policy", "detected", "present", "energy (J)"], rows
    ))

    det_best, e_best = totals["all_best"]
    det_eecs, e_eecs = totals["eecs"]
    det_mix, e_mix = totals["intermittent"]

    # The intermittent policy sits between the extremes on energy
    # (with tolerance for detection-noise between runs).
    assert e_mix >= 0.9 * e_eecs
    assert e_mix <= e_best + 1e-9

    # ... and recovers accuracy relative to pure EECS ("only results
    # in slightly increased energy costs").
    assert det_mix >= det_eecs - 15

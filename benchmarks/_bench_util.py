"""Shared benchmark plumbing: timing and threshold helpers.

Every throughput/overhead benchmark in this directory follows the same
shape — env-overridable thresholds, min-of-N wall-clock timing (the
minimum is the least-noisy estimator on a shared machine), and
interleaved variants so both sides of a comparison see the same
background load.  The helpers live here once instead of being
re-implemented per ``test_bench_*`` file.
"""

from __future__ import annotations

import os
import time
from typing import Callable


def env_float(name: str, default: float) -> float:
    """An env-overridable benchmark threshold (floors, budgets)."""
    return float(os.environ.get(name, str(default)))


def timed(fn: Callable, *args, **kwargs) -> tuple[float, object]:
    """One wall-clock measurement: ``(elapsed_seconds, result)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def best_of(n: int, fn: Callable, *args, **kwargs) -> tuple[float, object]:
    """Min-of-N timing: ``(best_seconds, last_result)``."""
    best = float("inf")
    result = None
    for _ in range(n):
        elapsed, result = timed(fn, *args, **kwargs)
        best = min(best, elapsed)
    return best, result


def interleaved_best(n: int, *thunks: Callable[[], float]) -> list[float]:
    """Min-of-N over several variants, alternating them on every
    iteration so all are exposed to the same thermal/cache/load
    conditions.  Each thunk performs and times one run itself (so
    setup it wants excluded stays excluded) and returns seconds;
    returns each variant's best, in order."""
    times: list[list[float]] = [[] for _ in thunks]
    for _ in range(n):
        for index, thunk in enumerate(thunks):
            times[index].append(thunk())
    return [min(variant) for variant in times]


def assert_floor(value: float, floor: float, label: str) -> None:
    """Uniform absolute-floor check with an explanatory failure."""
    assert value >= floor, (
        f"{label}: measured {value:.3f}, below the floor {floor} "
        "(override via the documented environment variable for "
        "slower machines)"
    )


def assert_overhead_within(
    candidate: float, baseline: float, budget: float, label: str
) -> None:
    """Uniform relative-overhead check: candidate vs baseline."""
    overhead = candidate / baseline - 1.0
    assert candidate <= baseline * (1.0 + budget), (
        f"{label}: overhead {overhead:.1%} exceeds the {budget:.0%} budget "
        f"(baseline {baseline:.3f}s, candidate {candidate:.3f}s)"
    )
